#include "db/database.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

#include "db/session.h"
#include "db/sql.h"
#include "expr/parser.h"
#include "sma/parser.h"
#include "storage/file_disk.h"
#include "util/crc32c.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace smadb::db {

using storage::BackendKind;
using storage::Rid;
using storage::Table;
using storage::WalPayloadReader;
using storage::WalRecordType;
using util::Result;
using util::Status;

namespace {

Result<util::TypeId> TypeIdFromString(const std::string& s) {
  if (s == "int32") return util::TypeId::kInt32;
  if (s == "int64") return util::TypeId::kInt64;
  if (s == "double") return util::TypeId::kDouble;
  if (s == "decimal") return util::TypeId::kDecimal;
  if (s == "date") return util::TypeId::kDate;
  if (s == "string") return util::TypeId::kString;
  return Status::Corruption("unknown field type '" + s + "'");
}

Result<sma::AggFunc> AggFuncFromString(const std::string& s) {
  if (s == "min") return sma::AggFunc::kMin;
  if (s == "max") return sma::AggFunc::kMax;
  if (s == "sum") return sma::AggFunc::kSum;
  if (s == "count") return sma::AggFunc::kCount;
  return Status::Corruption("unknown aggregate function '" + s + "'");
}

Result<storage::Schema> SchemaFromManifest(const ManifestTable& mt) {
  std::vector<storage::Field> fields;
  fields.reserve(mt.fields.size());
  for (const ManifestField& f : mt.fields) {
    SMADB_ASSIGN_OR_RETURN(util::TypeId t, TypeIdFromString(f.type));
    fields.push_back(storage::Field{f.name, t, f.capacity});
  }
  return storage::Schema(std::move(fields));
}

std::string WalPath(const std::string& dir) { return dir + "/wal.smadb"; }

}  // namespace

Database::Database(DatabaseOptions options)
    : Database(std::move(options), std::make_unique<storage::SimulatedDisk>(),
               nullptr) {}

Database::Database(DatabaseOptions options,
                   std::unique_ptr<storage::DiskBackend> disk,
                   std::unique_ptr<storage::Wal> wal)
    : options_(std::move(options)),
      global_memory_("global", options_.global_memory_limit),
      admission_(AdmissionController::Options{
          .max_concurrent = options_.max_concurrent_queries,
          .max_queued = options_.admission_max_queued,
          .max_wait =
              std::chrono::milliseconds(options_.admission_max_wait_ms)}),
      disk_(std::move(disk)),
      wal_(std::move(wal)),
      pool_(std::make_unique<storage::BufferPool>(
          disk_.get(),
          storage::BufferPoolOptions{
              .capacity_pages = options_.pool_pages,
              .verify_checksums = options_.verify_checksums,
              // Pin charging only when a global budget exists: the tracker
              // mutex would otherwise tax every Fetch for nothing.
              .pin_tracker = options_.global_memory_limit > 0 ? &global_memory_
                                                              : nullptr,
              // WAL-before-data: no dirty page reaches the backend before
              // every record logged so far is durable (DESIGN.md §12).
              .pre_writeback = [this] { return SyncWal(); }})),
      catalog_(std::make_unique<storage::Catalog>(pool_.get())),
      registry_(options_.metrics_registry),
      trace_(options_.trace_capacity),
      logger_(options_.log) {
  // The option mirrors whatever backend the instance actually got (the
  // plain constructor always builds the simulated one).
  options_.storage_backend = disk_->kind();
  if (registry_ == nullptr) {
    own_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry_ = own_registry_.get();
  }
  if (options_.enable_metrics) InitMetrics();
}

Result<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  if (options.storage_backend == BackendKind::kSimulated) {
    return std::unique_ptr<Database>(new Database(std::move(options)));
  }
  if (options.storage_path.empty()) {
    return Status::InvalidArgument(
        "storage_backend = file requires a storage_path");
  }
  SMADB_ASSIGN_OR_RETURN(std::unique_ptr<storage::FileDiskManager> disk,
                         storage::FileDiskManager::Open(options.storage_path));
  SMADB_ASSIGN_OR_RETURN(std::unique_ptr<storage::Wal> wal,
                         storage::Wal::Open(WalPath(options.storage_path)));
  std::unique_ptr<Database> db(
      new Database(std::move(options), std::move(disk), std::move(wal)));
  SMADB_RETURN_NOT_OK(db->Recover());
  return db;
}

Database::~Database() {
  // Best-effort clean shutdown; failures are only observable through an
  // explicit Close(). A crashed instance writes nothing (see Close).
  (void)Close();
}

Status Database::Close() {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (closed_ || crashed_) return Status::OK();
  // Read-only means a durable barrier already failed; retrying it at close
  // (fsyncgate) could acknowledge data the kernel dropped. The recovered
  // state after reopen is exactly the acknowledged prefix.
  if (wal_ != nullptr && !read_only()) SMADB_RETURN_NOT_OK(CheckpointLocked());
  closed_ = true;
  return Status::OK();
}

Status Database::Checkpoint() {
  std::lock_guard<std::mutex> lock(write_mu_);
  return CheckpointLocked();
}

Status Database::CheckpointLocked() {
  if (crashed_) return Status::Internal("database crashed; reopen to recover");
  SMADB_RETURN_NOT_OK(CheckWritable());
  // FlushAll runs the WAL barrier before the first dirty write, so the
  // log-before-data ordering holds here too. Every step below is a durable
  // write; an environmental failure in any of them degrades to read-only.
  SMADB_RETURN_NOT_OK(NoteDurableFailure(pool_->FlushAll()));
  SMADB_RETURN_NOT_OK(NoteDurableFailure(disk_->Sync()));
  if (wal_ == nullptr) return Status::OK();
  SMADB_RETURN_NOT_OK(SyncWal());
  const uint64_t lsn = wal_->next_lsn();
  SMADB_RETURN_NOT_OK(NoteDurableFailure(
      WriteManifest(ManifestPath(), BuildManifest(lsn))));
  SMADB_RETURN_NOT_OK(NoteDurableFailure(wal_->Reset(lsn)));
  ++durability_.checkpoints;
  return Status::OK();
}

Status Database::CheckWritable() const {
  if (!read_only()) return Status::OK();
  return Status::Unavailable("database is in read-only degraded mode (" +
                             read_only_reason() +
                             "); reads keep serving, reopen to recover");
}

void Database::EnterReadOnly(std::string reason) {
  std::lock_guard<std::mutex> lock(read_only_mu_);
  // First failure wins; never un-degrade in place. The flag is published
  // after the reason so a reader that sees it set finds the reason written.
  if (read_only_.load(std::memory_order_relaxed)) return;
  read_only_reason_ = std::move(reason);
  read_only_.store(true, std::memory_order_release);
}

Status Database::NoteDurableFailure(Status st) {
  if (st.code() == util::StatusCode::kIOError ||
      st.code() == util::StatusCode::kDiskFull) {
    EnterReadOnly(st.message());
  }
  return st;
}

Status Database::NoteDiskFull(Status st) {
  if (st.code() == util::StatusCode::kDiskFull) EnterReadOnly(st.message());
  return st;
}

Status Database::SyncWal() {
  if (wal_ == nullptr) return Status::OK();
  // fsyncgate: after a failed fsync the kernel may have dropped the very
  // dirty pages the failure covered — a later "successful" retry would
  // acknowledge lost data. Refuse instead (this also blocks the buffer
  // pool's pre-writeback barrier, so no dirty page escapes either).
  SMADB_RETURN_NOT_OK(CheckWritable());
  SMADB_RETURN_NOT_OK(NoteDurableFailure(wal_->Sync()));
  ops_since_sync_.store(0, std::memory_order_relaxed);
  return Status::OK();
}

Status Database::MaybeSyncWal() {
  if (wal_ == nullptr) return Status::OK();
  const size_t interval = [&] {
    std::lock_guard<std::mutex> lock(knobs_mu_);
    return options_.wal_sync_interval;
  }();
  const size_t ops =
      ops_since_sync_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (interval == 0 || ops < interval) return Status::OK();
  return SyncWal();
}

Status Database::RollbackWalRecord(const storage::Wal::AppendMark& mark,
                                   Status cause) {
  if (wal_ == nullptr || wal_->TryRollback(mark)) return cause;
  // The record reached the file (a buffer-pool eviction ran the WAL barrier
  // mid-apply); stage an abort and make it durable before acknowledging the
  // failure, so a crash can never replay the failed mutation un-aborted.
  std::string payload;
  storage::WalPutU64(&payload, mark.lsn);
  SMADB_RETURN_NOT_OK(
      wal_->Append(WalRecordType::kAbort, payload).status());
  SMADB_RETURN_NOT_OK(SyncWal());
  return cause;
}

Status Database::CrashForTesting() {
  std::lock_guard<std::mutex> lock(write_mu_);
  crashed_ = true;
  if (wal_ != nullptr) wal_->DiscardUnflushed();
  return pool_->DiscardAll();
}

std::string Database::ManifestPath() const {
  return options_.storage_path + "/manifest.smadb";
}

void Database::InitMetrics() {
  m_.queries_total =
      registry_->GetCounter("smadb_queries_total", "Queries executed");
  m_.queries_failed = registry_->GetCounter("smadb_queries_failed_total",
                                            "Queries that returned an error");
  m_.queries_cancelled = registry_->GetCounter(
      "smadb_queries_cancelled_total", "Queries cancelled by their token");
  m_.queries_deadline =
      registry_->GetCounter("smadb_queries_deadline_total",
                            "Queries that exceeded their deadline");
  m_.queries_degraded = registry_->GetCounter(
      "smadb_queries_degraded_total",
      "Queries answered through the degradation ladder");
  m_.rows_returned = registry_->GetCounter("smadb_rows_returned_total",
                                           "Result rows returned");
  m_.appends = registry_->GetCounter("smadb_appends_total",
                                     "Tuples appended through Insert");
  m_.buckets_qualifying =
      registry_->GetCounter("smadb_buckets_qualifying_total",
                            "Buckets graded qualifying (paper Fig. 4)");
  m_.buckets_disqualifying =
      registry_->GetCounter("smadb_buckets_disqualifying_total",
                            "Buckets graded disqualifying");
  m_.buckets_ambivalent = registry_->GetCounter(
      "smadb_buckets_ambivalent_total", "Buckets graded ambivalent");
  m_.query_latency_us = registry_->GetHistogram(
      "smadb_query_latency_us", "End-to-end query latency (microseconds)");
  m_.latch_wait_ns = registry_->GetHistogram(
      "smadb_latch_wait_ns",
      "Nanoseconds blocked per contended bucket-latch acquire");
  registry_->RegisterCallback(
      "smadb_sessions_active", "Client sessions currently open",
      [this] { return static_cast<int64_t>(sessions_active()); });
  // Latch counters summed over every table: how often readers and the
  // writer actually collided on a bucket.
  registry_->RegisterCallback(
      "smadb_latch_shared_acquires", "Shared bucket-latch acquires", [this] {
        int64_t n = 0;
        for (Table* t : catalog_->Tables()) {
          n += static_cast<int64_t>(t->latches()->stats().shared_acquires);
        }
        return n;
      });
  registry_->RegisterCallback(
      "smadb_latch_exclusive_acquires", "Exclusive bucket-latch acquires",
      [this] {
        int64_t n = 0;
        for (Table* t : catalog_->Tables()) {
          n += static_cast<int64_t>(t->latches()->stats().exclusive_acquires);
        }
        return n;
      });
  registry_->RegisterCallback(
      "smadb_latch_contended", "Bucket-latch acquires that had to block",
      [this] {
        int64_t n = 0;
        for (Table* t : catalog_->Tables()) {
          n += static_cast<int64_t>(t->latches()->stats().contended);
        }
        return n;
      });
  // Existing stat structs fold in as callback gauges — sampled at snapshot
  // time, zero cost on the query path.
  registry_->RegisterCallback(
      "smadb_pool_hits", "Buffer pool hits",
      [this] { return static_cast<int64_t>(pool_->stats().hits); });
  registry_->RegisterCallback(
      "smadb_pool_misses", "Buffer pool misses",
      [this] { return static_cast<int64_t>(pool_->stats().misses); });
  registry_->RegisterCallback(
      "smadb_pool_evictions", "Buffer pool evictions",
      [this] { return static_cast<int64_t>(pool_->stats().evictions); });
  registry_->RegisterCallback(
      "smadb_pool_checksum_failures", "Pages failing checksum verification",
      [this] {
        return static_cast<int64_t>(pool_->stats().checksum_failures);
      });
  registry_->RegisterCallback(
      "smadb_disk_page_reads", "Pages read from the storage backend",
      [this] { return static_cast<int64_t>(disk_->stats().page_reads); });
  registry_->RegisterCallback(
      "smadb_disk_page_writes", "Pages written to the storage backend",
      [this] { return static_cast<int64_t>(disk_->stats().page_writes); });
  registry_->RegisterCallback(
      "smadb_disk_syncs", "Durability barriers honored by the backend",
      [this] { return static_cast<int64_t>(disk_->stats().syncs); });
  // WAL/recovery gauges read through null-tolerant lambdas: the backend can
  // be swapped at runtime (`set storage = ...`), the registration cannot.
  registry_->RegisterCallback(
      "smadb_wal_appends_total", "Records appended to the WAL", [this] {
        return wal_ ? static_cast<int64_t>(wal_->stats().appends) : 0;
      });
  registry_->RegisterCallback(
      "smadb_wal_appended_bytes", "Bytes appended to the WAL", [this] {
        return wal_ ? static_cast<int64_t>(wal_->stats().appended_bytes) : 0;
      });
  registry_->RegisterCallback(
      "smadb_wal_syncs_total", "WAL fdatasync barriers", [this] {
        return wal_ ? static_cast<int64_t>(wal_->stats().syncs) : 0;
      });
  registry_->RegisterCallback(
      "smadb_checkpoints_total", "Checkpoints completed",
      [this] { return static_cast<int64_t>(durability_.checkpoints); });
  registry_->RegisterCallback(
      "smadb_recovery_replayed_records", "WAL records replayed at open",
      [this] { return static_cast<int64_t>(durability_.replayed_records); });
  registry_->RegisterCallback(
      "smadb_recovery_stale_smas", "SMAs left stale by crash recovery",
      [this] { return static_cast<int64_t>(durability_.stale_smas); });
  registry_->RegisterCallback(
      "smadb_memory_used_bytes", "Bytes charged to the global budget",
      [this] { return static_cast<int64_t>(global_memory_.used()); });
  registry_->RegisterCallback(
      "smadb_memory_peak_bytes", "High-water mark of the global budget",
      [this] { return static_cast<int64_t>(global_memory_.peak()); });
  registry_->RegisterCallback(
      "smadb_storage_read_only",
      "1 while the database is in read-only degraded mode",
      [this] { return read_only() ? int64_t{1} : int64_t{0}; });
  registry_->RegisterCallback(
      "smadb_queries_inflight", "Queries currently executing",
      [this] { return static_cast<int64_t>(query_registry_.size()); });
  registry_->RegisterCallback(
      "smadb_log_lines_total", "Structured log lines emitted",
      [this] { return static_cast<int64_t>(logger_.emitted()); });
  registry_->RegisterCallback(
      "smadb_log_dropped_total", "Log lines dropped by the rate limiter",
      [this] { return static_cast<int64_t>(logger_.dropped()); });
  registry_->RegisterCallback(
      "smadb_uptime_seconds", "Seconds since this database was opened",
      [this] { return static_cast<int64_t>(uptime_us() / 1000000); });
  m_.scrub_runs =
      registry_->GetCounter("smadb_scrub_runs_total", "Scrub passes run");
  m_.scrub_pages_scanned = registry_->GetCounter(
      "smadb_scrub_pages_scanned_total", "Pages CRC-checked by scrubs");
  m_.scrub_corrupt_pages = registry_->GetCounter(
      "smadb_scrub_corrupt_pages_total", "Corrupt pages found by scrubs");
  m_.scrub_smas_repaired = registry_->GetCounter(
      "smadb_scrub_smas_repaired_total", "SMAs rebuilt by scrub repairs");
}

void Database::set_max_concurrent_queries(size_t n) {
  {
    std::lock_guard<std::mutex> lock(knobs_mu_);
    options_.max_concurrent_queries = n;
  }
  admission_.SetMaxConcurrent(n);
}

void Database::AttachLatchMetrics(storage::Table* table) {
  if (m_.latch_wait_ns != nullptr) {
    table->latches()->set_wait_histogram(m_.latch_wait_ns);
  }
}

Result<Table*> Database::CreateTable(std::string name, storage::Schema schema,
                                     storage::TableOptions options) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  SMADB_RETURN_NOT_OK(CheckWritable());
  storage::Wal::AppendMark mark;
  if (wal_ != nullptr) {
    // Validate before logging so failed statements never poison replay.
    if (catalog_->GetTable(name).ok()) {
      return Status::AlreadyExists("table '" + name + "' already exists");
    }
    std::string payload;
    storage::WalPutString(&payload, name);
    storage::WalPutU32(&payload, options.bucket_pages);
    storage::WalPutU32(&payload, static_cast<uint32_t>(schema.num_fields()));
    for (const storage::Field& f : schema.fields()) {
      storage::WalPutString(&payload, f.name);
      storage::WalPutString(&payload, util::TypeIdToString(f.type));
      storage::WalPutU32(&payload, f.capacity);
    }
    mark = wal_->Mark();
    SMADB_RETURN_NOT_OK(
        wal_->Append(WalRecordType::kCreateTable, payload).status());
  }
  Result<Table*> table_or =
      catalog_->CreateTable(name, std::move(schema), options);
  if (!table_or.ok()) return RollbackWalRecord(mark, table_or.status());
  Table* table = *table_or;
  AttachLatchMetrics(table);
  TableState state;
  state.smas = std::make_unique<sma::SmaSet>(table);
  state.maintainer =
      std::make_unique<sma::SmaMaintainer>(table, state.smas.get());
  {
    std::lock_guard<std::mutex> lock(states_mu_);
    states_.emplace(std::move(name), std::move(state));
  }
  SMADB_RETURN_NOT_OK(MaybeSyncWal());
  return table;
}

Result<Database::TableState*> Database::StateFor(std::string_view table) {
  std::lock_guard<std::mutex> lock(states_mu_);
  auto it = states_.find(std::string(table));
  if (it != states_.end()) return &it->second;
  // Tables loaded straight into the catalog (the tpch bulk loaders) get
  // their SMA state lazily on first reference, so they are queryable and
  // `define sma` works on them like on CreateTable'd ones. The returned
  // pointer stays valid without the lock: unordered_map values are stable.
  SMADB_ASSIGN_OR_RETURN(Table * t, catalog_->GetTable(table));
  AttachLatchMetrics(t);
  TableState state;
  state.smas = std::make_unique<sma::SmaSet>(t);
  state.maintainer =
      std::make_unique<sma::SmaMaintainer>(t, state.smas.get());
  auto [pos, inserted] = states_.emplace(std::string(table), std::move(state));
  (void)inserted;
  return &pos->second;
}

Status Database::Insert(std::string_view table,
                        const storage::TupleBuffer& tuple, Rid* rid) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  SMADB_RETURN_NOT_OK(CheckWritable());
  SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(table));
  storage::Wal::AppendMark mark;
  if (wal_ != nullptr) {
    SMADB_ASSIGN_OR_RETURN(Table * t, catalog_->GetTable(table));
    if (tuple.size() != t->schema().tuple_size()) {
      return Status::InvalidArgument("tuple size does not match the schema");
    }
    // Log the *predicted* position and epoch so replay re-applies the insert
    // at the same absolute Rid no matter when the crash hits.
    SMADB_ASSIGN_OR_RETURN(Rid next, t->NextRid());
    std::string payload;
    storage::WalPutString(&payload, table);
    storage::WalPutU32(&payload, next.page_no);
    storage::WalPutU32(&payload, next.slot);
    storage::WalPutU64(&payload, t->epoch() + 1);
    storage::WalPutString(
        &payload,
        std::string_view(reinterpret_cast<const char*>(tuple.data()),
                         tuple.size()));
    mark = wal_->Mark();
    SMADB_RETURN_NOT_OK(
        wal_->Append(WalRecordType::kInsert, payload).status());
  }
  if (Status st = state->maintainer->Insert(tuple, rid); !st.ok()) {
    return NoteDiskFull(RollbackWalRecord(mark, std::move(st)));
  }
  if (m_.appends != nullptr) m_.appends->Inc();
  return MaybeSyncWal();
}

Status Database::Update(std::string_view table, Rid rid, size_t col,
                        const util::Value& v) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  SMADB_RETURN_NOT_OK(CheckWritable());
  SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(table));
  storage::Wal::AppendMark mark;
  if (wal_ != nullptr) {
    SMADB_ASSIGN_OR_RETURN(Table * t, catalog_->GetTable(table));
    if (col >= t->schema().num_fields()) {
      return Status::InvalidArgument("update column out of range");
    }
    // The value token round-trips through the column's type at replay, so a
    // cross-family value must be rejected before it reaches the log.
    const util::TypeId ft = t->schema().field(col).type;
    if ((ft == util::TypeId::kString) != (v.type() == util::TypeId::kString) ||
        (ft == util::TypeId::kDouble) != (v.type() == util::TypeId::kDouble)) {
      return Status::InvalidArgument("update value type mismatch");
    }
    std::string payload;
    storage::WalPutString(&payload, table);
    storage::WalPutU32(&payload, rid.page_no);
    storage::WalPutU32(&payload, rid.slot);
    storage::WalPutU32(&payload, static_cast<uint32_t>(col));
    storage::WalPutU64(&payload, t->epoch() + 1);
    storage::WalPutString(&payload, EncodeManifestValue(v));
    mark = wal_->Mark();
    SMADB_RETURN_NOT_OK(
        wal_->Append(WalRecordType::kUpdate, payload).status());
  }
  if (Status st = state->maintainer->UpdateColumn(rid, col, v); !st.ok()) {
    return NoteDiskFull(RollbackWalRecord(mark, std::move(st)));
  }
  return MaybeSyncWal();
}

Status Database::Delete(std::string_view table, Rid rid) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  SMADB_RETURN_NOT_OK(CheckWritable());
  SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(table));
  storage::Wal::AppendMark mark;
  if (wal_ != nullptr) {
    SMADB_ASSIGN_OR_RETURN(Table * t, catalog_->GetTable(table));
    std::string payload;
    storage::WalPutString(&payload, table);
    storage::WalPutU32(&payload, rid.page_no);
    storage::WalPutU32(&payload, rid.slot);
    storage::WalPutU64(&payload, t->epoch() + 1);
    mark = wal_->Mark();
    SMADB_RETURN_NOT_OK(
        wal_->Append(WalRecordType::kDelete, payload).status());
  }
  if (Status st = state->maintainer->Delete(rid); !st.ok()) {
    return NoteDiskFull(RollbackWalRecord(mark, std::move(st)));
  }
  return MaybeSyncWal();
}

Result<sma::SmaSet*> Database::Smas(std::string_view table) {
  SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(table));
  return state->smas.get();
}

Result<sma::SmaMaintainer*> Database::Maintainer(std::string_view table) {
  SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(table));
  return state->maintainer.get();
}

Status Database::Execute(std::string_view statement) {
  // `kill query <id>` is intercepted BEFORE the writer lock: the whole
  // point of a kill switch is reaching a query while the writer (or the
  // query itself, holding write_mu_ through a scrub) is wedged.
  {
    SMADB_ASSIGN_OR_RETURN(auto kill_tokens,
                           expr::internal::Tokenize(statement));
    if (kill_tokens.size() >= 2 &&
        kill_tokens[0].kind == expr::internal::TokKind::kIdent &&
        kill_tokens[0].text == "kill") {
      const bool shape_ok =
          kill_tokens.size() == 4 &&  // kill query <id> + kEnd sentinel
          kill_tokens[1].kind == expr::internal::TokKind::kIdent &&
          kill_tokens[1].text == "query" &&
          kill_tokens[2].kind == expr::internal::TokKind::kInt &&
          kill_tokens[2].value >= 0;
      if (!shape_ok) {
        return Status::InvalidArgument(
            "malformed kill statement; expected 'kill query <id>'");
      }
      return KillQuery(static_cast<uint64_t>(kill_tokens[2].value));
    }
  }
  // Statements either mutate durable state (define sma, backend swap) or
  // the shared knob defaults — serialize them all with the writer lock.
  std::lock_guard<std::mutex> write_lock(write_mu_);
  // Dispatch on the first keyword.
  SMADB_ASSIGN_OR_RETURN(auto tokens,
                         expr::internal::Tokenize(statement));
  if (tokens.empty() || tokens[0].kind != expr::internal::TokKind::kIdent) {
    return Status::InvalidArgument("empty statement");
  }
  if (tokens[0].text == "define") {
    // `define sma ...` — find the from-table, then delegate.
    SMADB_RETURN_NOT_OK(CheckWritable());
    SMADB_ASSIGN_OR_RETURN(std::string table, ExtractTableName(statement));
    SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(table));
    storage::Wal::AppendMark mark;
    if (wal_ != nullptr) {
      // Parse first: a statement that cannot replay must not reach the log.
      SMADB_ASSIGN_OR_RETURN(Table * t, catalog_->GetTable(table));
      SMADB_RETURN_NOT_OK(
          sma::ParseSmaDefinition(&t->schema(), statement).status());
      std::string payload;
      storage::WalPutString(&payload, table);
      storage::WalPutString(&payload, statement);
      mark = wal_->Mark();
      SMADB_RETURN_NOT_OK(
          wal_->Append(WalRecordType::kDefineSma, payload).status());
    }
    if (Status st = sma::DefineSma(catalog_.get(), state->smas.get(),
                                   statement);
        !st.ok()) {
      return NoteDiskFull(RollbackWalRecord(mark, std::move(st)));
    }
    return MaybeSyncWal();
  }
  if (tokens[0].text == "set") {
    // `set <knob> = <value>`. Execution knobs: dop (0 = auto/hardware),
    // batch_size (0 = row mode). Governor knobs (DESIGN.md §10):
    // timeout_ms (0 = none), memory_limit (bytes, 0 = unbudgeted),
    // max_concurrent_queries (0 = admission off), allow_degraded (0/1).
    // Durability knobs (DESIGN.md §12): wal_sync_interval (0 = manual),
    // storage (sim|file), storage_path ('<dir>').
    const bool shape_ok =
        tokens.size() == 5 &&  // set <knob> = <value> + kEnd sentinel
        tokens[1].kind == expr::internal::TokKind::kIdent &&
        tokens[2].kind == expr::internal::TokKind::kCmp &&
        tokens[2].text == "=";
    if (shape_ok && tokens[1].text == "storage" &&
        tokens[3].kind == expr::internal::TokKind::kIdent) {
      if (tokens[3].text == "sim") {
        return SetStorageBackend(BackendKind::kSimulated);
      }
      if (tokens[3].text == "file") {
        return SetStorageBackend(BackendKind::kFile);
      }
      return Status::InvalidArgument("set storage expects 'sim' or 'file'");
    }
    if (shape_ok && tokens[1].text == "storage_path" &&
        tokens[3].kind == expr::internal::TokKind::kString) {
      if (disk_->kind() == BackendKind::kFile) {
        return Status::InvalidArgument(
            "storage_path is fixed while the file backend is active; "
            "`set storage = sim` first");
      }
      options_.storage_path = tokens[3].text;
      return Status::OK();
    }
    if (shape_ok && tokens[3].kind == expr::internal::TokKind::kInt &&
        tokens[3].value >= 0) {
      const int64_t n = tokens[3].value;
      if (tokens[1].text == "dop") {
        set_degree_of_parallelism(static_cast<size_t>(n));
        return Status::OK();
      }
      if (tokens[1].text == "batch_size") {
        set_batch_size(static_cast<size_t>(n));
        return Status::OK();
      }
      if (tokens[1].text == "timeout_ms") {
        set_timeout_ms(n);
        return Status::OK();
      }
      if (tokens[1].text == "memory_limit") {
        set_query_memory_limit(static_cast<size_t>(n));
        return Status::OK();
      }
      if (tokens[1].text == "max_concurrent_queries") {
        set_max_concurrent_queries(static_cast<size_t>(n));
        return Status::OK();
      }
      if (tokens[1].text == "allow_degraded") {
        std::lock_guard<std::mutex> lock(knobs_mu_);
        options_.planner.allow_degraded = n != 0;
        return Status::OK();
      }
      if (tokens[1].text == "wal_sync_interval") {
        std::lock_guard<std::mutex> lock(knobs_mu_);
        options_.wal_sync_interval = static_cast<size_t>(n);
        return Status::OK();
      }
      if (tokens[1].text == "slow_query_ms") {
        std::lock_guard<std::mutex> lock(knobs_mu_);
        options_.slow_query_ms = n;
        return Status::OK();
      }
      if (tokens[1].text == "log_level") {
        if (n > 3) {
          return Status::InvalidArgument(
              "log_level is 0..3 (debug/info/warn/error)");
        }
        logger_.set_min_level(static_cast<obs::LogLevel>(n));
        return Status::OK();
      }
    }
    return Status::InvalidArgument(
        "malformed set statement; expected 'set <knob> = <value>' with knob "
        "in {dop, batch_size, timeout_ms, memory_limit, "
        "max_concurrent_queries, allow_degraded, wal_sync_interval, "
        "slow_query_ms, log_level, storage, storage_path}");
  }
  return Status::NotSupported(
      "unknown statement; supported: 'define sma' and 'set <knob> = <value>'");
}

Result<plan::QueryResult> Database::Query(std::string_view sql) {
  return Query(sql, nullptr);
}

namespace {

// Strips a leading keyword (plus the following whitespace); empty view when
// `text` does not start with it.
std::string_view StripKeyword(std::string_view text, std::string_view kw) {
  if (text.size() <= kw.size() || text.substr(0, kw.size()) != kw) return {};
  std::string_view rest = text.substr(kw.size());
  if (!std::isspace(static_cast<unsigned char>(rest[0]))) return {};
  while (!rest.empty() &&
         std::isspace(static_cast<unsigned char>(rest[0]))) {
    rest.remove_prefix(1);
  }
  return rest;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

Result<plan::QueryResult> Database::Query(
    std::string_view sql, std::shared_ptr<util::CancelToken> cancel) {
  return QueryWithKnobs(sql, std::move(cancel), DefaultKnobs(), 0);
}

SessionKnobs Database::DefaultKnobs() const {
  std::lock_guard<std::mutex> lock(knobs_mu_);
  SessionKnobs k;
  k.dop = options_.planner.degree_of_parallelism;
  k.batch_size = options_.planner.batch_size;
  k.timeout_ms = options_.timeout_ms;
  k.query_memory_limit = options_.query_memory_limit;
  k.allow_degraded = options_.planner.allow_degraded;
  return k;
}

std::unique_ptr<Session> Database::CreateSession() {
  const uint64_t id =
      next_session_id_.fetch_add(1, std::memory_order_relaxed);
  sessions_active_.fetch_add(1, std::memory_order_acq_rel);
  return std::unique_ptr<Session>(new Session(this, id, DefaultKnobs()));
}

Result<plan::QueryResult> Database::QueryWithKnobs(
    std::string_view sql, std::shared_ptr<util::CancelToken> cancel,
    const SessionKnobs& knobs, uint64_t session_id) {
  std::string_view body = Trim(sql);

  // Optional request-scope prefix: `trace <hex> <statement>` (DESIGN.md
  // §16). net::Server prepends one per request (or forwards the client's),
  // so the id on the wire is the id on every span and profile line below.
  uint64_t trace_id = 0;
  if (std::string_view rest = StripKeyword(body, "trace"); !rest.empty()) {
    size_t i = 0;
    uint64_t id = 0;
    for (; i < rest.size() && i < 16; ++i) {
      const char c = rest[i];
      if (c >= '0' && c <= '9') {
        id = id * 16 + static_cast<uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        id = id * 16 + static_cast<uint64_t>(c - 'a' + 10);
      } else {
        break;
      }
    }
    if (i == 0 || i >= rest.size() ||
        !std::isspace(static_cast<unsigned char>(rest[i]))) {
      return Status::InvalidArgument(
          "malformed trace prefix; expected 'trace <hex id> <statement>'");
    }
    trace_id = id;
    body = Trim(rest.substr(i));
  }

  // `show metrics` / `show profile` / `show trace` / `show queries` —
  // read-only, ungoverned.
  if (std::string_view what = StripKeyword(body, "show"); !what.empty()) {
    return RunShow(what);
  }

  // `scrub` — one pass of the online scrubber, findings as a text column.
  if (body == "scrub") {
    SMADB_ASSIGN_OR_RETURN(ScrubReport report, Scrub());
    std::vector<std::string> lines;
    lines.push_back(util::Format(
        "scanned: files=%llu pages=%llu",
        static_cast<unsigned long long>(report.files_scanned),
        static_cast<unsigned long long>(report.pages_scanned)));
    lines.push_back(util::Format(
        "corrupt_pages: %llu",
        static_cast<unsigned long long>(report.corrupt_pages)));
    for (const auto& [fname, count] : report.corrupt_files) {
      lines.push_back(util::Format(
          "  %s: %llu corrupt page(s)", fname.c_str(),
          static_cast<unsigned long long>(count)));
    }
    lines.push_back(util::Format(
        "smas: verified=%llu distrusted=%llu repaired=%llu%s",
        static_cast<unsigned long long>(report.smas_verified),
        static_cast<unsigned long long>(report.smas_distrusted),
        static_cast<unsigned long long>(report.smas_repaired),
        report.repairs_skipped_read_only ? " (repairs skipped: read-only)"
                                         : ""));
    for (const std::string& note : report.notes) {
      lines.push_back("note: " + note);
    }
    const bool clean = report.corrupt_pages == 0 &&
                       report.smas_distrusted == 0 && report.notes.empty();
    lines.push_back(clean ? "result: clean" : "result: findings reported");
    return TextResult("scrub", lines);
  }

  // `explain select ...` runs the governed query and reports the plan;
  // `explain analyze select ...` additionally profiles the run.
  bool explain = false;
  bool analyze = false;
  if (std::string_view rest = StripKeyword(body, "explain"); !rest.empty()) {
    explain = true;
    body = rest;
    if (std::string_view deeper = StripKeyword(body, "analyze");
        !deeper.empty()) {
      analyze = true;
      body = deeper;
    }
  }

  const uint64_t query_id =
      next_query_id_.fetch_add(1, std::memory_order_relaxed);
  obs::TraceSink* sink = options_.enable_metrics ? &trace_ : nullptr;

  // One governor per query: caller's cancel token (if any), the session
  // deadline, and a memory budget that is a child of the global tracker.
  // Everything reads the caller's knob snapshot — a concurrent `set` on
  // another session cannot change this query mid-flight.
  util::QueryContext ctx(&global_memory_, knobs.query_memory_limit,
                         std::move(cancel));
  if (knobs.timeout_ms > 0) ctx.set_timeout_ms(knobs.timeout_ms);
  plan::PlannerOptions popts;
  {
    std::lock_guard<std::mutex> lock(knobs_mu_);
    popts = options_.planner;
  }
  popts.degree_of_parallelism = knobs.dop;
  popts.batch_size = knobs.batch_size;
  popts.allow_degraded = knobs.allow_degraded;

  ctx.set_trace_id(trace_id);

  // `explain analyze` hangs a profile off the context; operators see the
  // non-null pointer and start feeding their nodes. Plain queries keep a
  // null profile and the instrumentation costs one branch per feed site —
  // unless the slow-query log is armed, which profiles every query so a
  // slow one can be logged with its full report attached.
  const int64_t slow_ms = slow_query_ms();
  std::unique_ptr<obs::QueryProfile> profile;
  if (analyze || slow_ms > 0) {
    profile = std::make_unique<obs::QueryProfile>(query_id, trace_id);
    ctx.set_profile(profile.get());
  }

  // Live-query registration (declared after the profile so it unregisters
  // first — the registry may read the profile's row counts mid-run).
  obs::QueryRegistry::Guard live(
      options_.enable_metrics ? &query_registry_ : nullptr, query_id,
      trace_id, session_id, std::string(body), ctx.shared_cancel(),
      profile.get());

  // Storage deltas around the run make the profile's pool/disk figures
  // consistent with PoolStats (shared counters: concurrent queries overlap).
  const storage::PoolStats pool_before = pool_->stats();
  const storage::IoStats io_before = disk_->stats();

  util::Stopwatch latency_watch;
  Result<plan::QueryResult> result = [&]() -> Result<plan::QueryResult> {
    // Admission before any real work: run promptly or fail promptly.
    util::Stopwatch admit_watch;
    Result<AdmissionController::Slot> slot = [&] {
      obs::TraceSpan span(sink, query_id, "admission", trace_id);
      return admission_.Admit(session_id);
    }();
    SMADB_RETURN_NOT_OK(slot.status());
    obs::QueryProfile::Phase(
        profile.get(), "admission",
        static_cast<uint64_t>(admit_watch.ElapsedSeconds() * 1e9));
    return RunQuery(body, &ctx, popts, query_id, sink, trace_id, &live);
  }();

  // Per-query metrics; a disabled registry leaves every pointer null.
  if (m_.queries_total != nullptr) {
    m_.queries_total->Inc();
    m_.query_latency_us->Observe(
        static_cast<int64_t>(latency_watch.ElapsedMicros()));
    if (!result.ok()) {
      m_.queries_failed->Inc();
      if (result.status().code() == util::StatusCode::kCancelled) {
        m_.queries_cancelled->Inc();
      }
      if (result.status().code() == util::StatusCode::kDeadlineExceeded) {
        m_.queries_deadline->Inc();
      }
    } else {
      m_.rows_returned->Add(static_cast<int64_t>(result->rows.size()));
      m_.buckets_qualifying->Add(
          static_cast<int64_t>(result->plan.qualifying));
      m_.buckets_disqualifying->Add(
          static_cast<int64_t>(result->plan.disqualifying));
      m_.buckets_ambivalent->Add(
          static_cast<int64_t>(result->plan.ambivalent));
      if (result->plan.degraded || !ctx.DegradationNotes().empty()) {
        m_.queries_degraded->Inc();
      }
    }
  }
  if (sink != nullptr && !result.ok()) {
    const util::StatusCode code = result.status().code();
    if (code == util::StatusCode::kCancelled ||
        code == util::StatusCode::kDeadlineExceeded) {
      obs::TraceSpan span(sink, query_id,
                          code == util::StatusCode::kCancelled
                              ? "cancelled"
                              : "deadline_exceeded",
                          trace_id);
      span.set_note(std::string(result.status().message()));
    }
  }

  if (profile != nullptr) {
    profile->SetStorageDelta(pool_->stats().hits - pool_before.hits,
                             pool_->stats().misses - pool_before.misses,
                             disk_->stats().page_reads - io_before.page_reads);
    if (result.ok()) {
      profile->SetSummary(util::Format(
          "%s, dop=%zu%s",
          plan::PlanKindToString(result->plan.kind).data(),
          result->plan.dop,
          result->plan.degraded ? " (degraded: partial answer)" : ""));
    }
    // Slow-query log: WARN with the full report attached, so the 3 a.m.
    // grep lands on the plan and phase timings, not just "it was slow".
    const double elapsed_ms = latency_watch.ElapsedMicros() / 1000.0;
    if (slow_ms > 0 && elapsed_ms >= static_cast<double>(slow_ms)) {
      std::string report_text;
      for (const std::string& line : profile->Render()) {
        if (!report_text.empty()) report_text += '\n';
        report_text += line;
      }
      logger_.Warn(
          "slow_query",
          {{"query", query_id},
           {"trace", util::Format("%llx",
                                  static_cast<unsigned long long>(trace_id))},
           {"session", session_id},
           {"ms", elapsed_ms},
           {"threshold_ms", slow_ms},
           {"sql", std::string(body)},
           {"status", result.ok() ? std::string("ok")
                                  : std::string(result.status().message())},
           {"profile", report_text}});
    }
    if (analyze) {
      std::vector<std::string> report = profile->Render();
      {
        std::lock_guard<std::mutex> lock(profile_mu_);
        last_profile_ = std::move(profile);
      }
      if (!result.ok()) return result;  // report stays under `show profile`
      plan::QueryResult out = TextResult("explain analyze", report);
      out.plan = result->plan;
      return out;
    }
    // Profiled only for the slow-query log (plain statement): the profile
    // dies here; `show profile` keeps reporting the last explain analyze.
  }

  if (!result.ok() || !explain) return result;
  return ExplainResult(result->plan);
}

Status Database::KillQuery(uint64_t query_id) {
  if (!query_registry_.Kill(query_id)) {
    return Status::NotFound(
        util::Format("no in-flight query with id %llu",
                     static_cast<unsigned long long>(query_id)));
  }
  logger_.Info("kill_query",
               {{"query", query_id}, {"result", "cancel_requested"}});
  return Status::OK();
}

uint64_t Database::uptime_us() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count());
}

std::vector<std::string> Database::LastProfile() const {
  std::lock_guard<std::mutex> lock(profile_mu_);
  if (last_profile_ == nullptr) return {};
  return last_profile_->Render();
}

Result<plan::QueryResult> Database::RunShow(std::string_view what) {
  what = Trim(what);
  if (what == "metrics") {
    std::vector<std::string> lines;
    for (const obs::MetricSnapshot& s : registry_->Snapshot()) {
      const std::string name =
          s.labels.empty() ? s.name : s.name + "{" + s.labels + "}";
      if (s.kind == obs::MetricSnapshot::Kind::kHistogram) {
        lines.push_back(util::Format(
            "%s: count=%lld sum=%lld p50=%.0f p95=%.0f p99=%.0f",
            name.c_str(), static_cast<long long>(s.count),
            static_cast<long long>(s.sum), s.p50, s.p95, s.p99));
      } else {
        lines.push_back(util::Format("%s = %lld", name.c_str(),
                                     static_cast<long long>(s.value)));
      }
    }
    if (lines.empty()) lines.push_back("(no metrics registered)");
    return TextResult("metrics", lines);
  }
  if (what == "profile") {
    std::vector<std::string> lines = LastProfile();
    if (lines.empty()) {
      lines.push_back(
          "no profiled query yet; run `explain analyze select ...`");
    }
    return TextResult("profile", lines);
  }
  if (what == "trace") {
    std::vector<std::string> lines;
    for (const obs::TraceEvent& e : trace_.Events()) {
      lines.push_back(util::Format(
          "[q%llu t%llx] %s start=%lluus dur=%lluus%s%s",
          static_cast<unsigned long long>(e.query_id),
          static_cast<unsigned long long>(e.trace_id), e.name.c_str(),
          static_cast<unsigned long long>(e.start_us),
          static_cast<unsigned long long>(e.duration_us),
          e.note.empty() ? "" : " ", e.note.c_str()));
    }
    if (lines.empty()) lines.push_back("(trace ring empty)");
    return TextResult("trace", lines);
  }
  if (what == "queries") {
    std::vector<std::string> lines;
    for (const obs::QueryInfo& q : query_registry_.Snapshot()) {
      lines.push_back(util::Format(
          "[q%llu t%llx] session=%llu phase=%s elapsed=%lluus rows=%llu%s "
          "sql=%s",
          static_cast<unsigned long long>(q.query_id),
          static_cast<unsigned long long>(q.trace_id),
          static_cast<unsigned long long>(q.session_id), q.phase.c_str(),
          static_cast<unsigned long long>(q.elapsed_us),
          static_cast<unsigned long long>(q.rows),
          q.cancel_requested ? " CANCELLING" : "", q.sql.c_str()));
    }
    if (lines.empty()) lines.push_back("(no queries in flight)");
    return TextResult("queries", lines);
  }
  if (what == "storage") return ShowStorage();
  return Status::NotSupported(
      "unknown show statement; supported: 'show metrics', 'show profile', "
      "'show trace', 'show queries', 'show storage'");
}

Result<plan::QueryResult> Database::ShowStorage() const {
  std::vector<std::string> lines;
  lines.push_back(
      util::Format("backend: %s", std::string(disk_->kind_name()).c_str()));
  lines.push_back("path: " + (options_.storage_path.empty()
                                  ? std::string("(in-memory)")
                                  : options_.storage_path));
  lines.push_back(read_only()
                      ? "mode: read-only (" + read_only_reason() + ")"
                      : std::string("mode: read-write"));
  const storage::IoStats& io = disk_->stats();
  lines.push_back(util::Format(
      "pages: reads=%llu writes=%llu fsyncs=%llu",
      static_cast<unsigned long long>(io.page_reads),
      static_cast<unsigned long long>(io.page_writes),
      static_cast<unsigned long long>(io.syncs)));
  if (wal_ == nullptr) {
    lines.push_back("wal: (none; simulated backend is not durable)");
    return TextResult("storage", lines);
  }
  lines.push_back(util::Format(
      "wal: size_bytes=%llu appends=%llu fsyncs=%llu next_lsn=%llu "
      "synced_lsn=%llu",
      static_cast<unsigned long long>(wal_->size_bytes()),
      static_cast<unsigned long long>(wal_->stats().appends),
      static_cast<unsigned long long>(wal_->stats().syncs),
      static_cast<unsigned long long>(wal_->next_lsn()),
      static_cast<unsigned long long>(wal_->synced_lsn())));
  const size_t sync_interval = [&] {
    std::lock_guard<std::mutex> lock(knobs_mu_);
    return options_.wal_sync_interval;
  }();
  lines.push_back(util::Format(
      "sync_policy: %s",
      sync_interval == 0
          ? "manual (SyncWal/Checkpoint only)"
          : util::Format("every %zu mutation(s)", sync_interval).c_str()));
  lines.push_back(util::Format(
      "checkpoint: last_lsn=%llu checkpoints=%llu",
      static_cast<unsigned long long>(wal_->base_lsn()),
      static_cast<unsigned long long>(durability_.checkpoints)));
  lines.push_back(util::Format(
      "recovery: tables=%llu replayed_records=%llu stale_smas=%llu "
      "orphan_sma_files=%llu duration_us=%llu",
      static_cast<unsigned long long>(durability_.recovered_tables),
      static_cast<unsigned long long>(durability_.replayed_records),
      static_cast<unsigned long long>(durability_.stale_smas),
      static_cast<unsigned long long>(durability_.orphan_sma_files),
      static_cast<unsigned long long>(durability_.recovery_us)));
  return TextResult("storage", lines);
}

Result<Database::ScrubReport> Database::Scrub() {
  // The repair pass rebuilds SMAs — a write — and even the census must not
  // race mutations, so a scrub runs as "the writer" for its duration.
  // Concurrent queries keep streaming (they take bucket latches, not this).
  std::lock_guard<std::mutex> write_lock(write_mu_);
  if (crashed_) return Status::Internal("database crashed; reopen to recover");
  // Stable view of the table states: pointers survive map growth, and
  // lazy StateFor inserts from reader threads can't invalidate iteration.
  std::vector<std::pair<std::string, TableState*>> table_states;
  {
    std::lock_guard<std::mutex> lock(states_mu_);
    table_states.reserve(states_.size());
    for (auto& [tname, state] : states_) {
      table_states.emplace_back(tname, &state);
    }
  }
  ScrubReport report;
  // Pass 1: CRC-check the at-rest bytes of every backend file against the
  // out-of-band sidecar. Reads bypass the buffer pool on purpose: the
  // sidecar covers the *stored* bytes, so dirty pool pages cause no false
  // positives, and a clean cache cannot mask rotted media either.
  std::vector<uint64_t> corrupt_by_file(disk_->NumFiles(), 0);
  for (storage::FileId id = 0; id < disk_->NumFiles(); ++id) {
    const std::string& fname = disk_->FileName(id);
    if (fname.empty()) continue;  // tombstone of a removed file
    const Result<uint32_t> npages = disk_->NumPages(id);
    if (!npages.ok()) {
      report.notes.push_back("file '" + fname + "': " +
                             std::string(npages.status().message()));
      continue;
    }
    ++report.files_scanned;
    for (uint32_t p = 0; p < *npages; ++p) {
      ++report.pages_scanned;
      storage::Page page;
      if (Status st = disk_->ReadPage(id, p, &page); !st.ok()) {
        ++corrupt_by_file[id];
        report.notes.push_back(util::Format(
            "file '%s' page %u unreadable: %s", fname.c_str(), p,
            std::string(st.message()).c_str()));
        continue;
      }
      const Result<uint32_t> want = disk_->PageChecksum(id, p);
      if (!want.ok() ||
          util::Crc32c(page.data, storage::kPageSize) != *want) {
        ++corrupt_by_file[id];
      }
    }
    if (corrupt_by_file[id] > 0) {
      report.corrupt_pages += corrupt_by_file[id];
      report.corrupt_files.emplace_back(fname, corrupt_by_file[id]);
    }
  }
  // Pass 2: condemn SMAs whose backing files hold corrupt pages (their
  // pool-cached pages may still read clean — the media copy is what rots;
  // Verify never re-trusts, so the flag sticks), then run the maintainer's
  // sampled content verification on every table.
  for (auto& [tname, state] : table_states) {
    for (sma::Sma* s : state->smas->mutable_all()) {
      for (size_t g = 0; g < s->num_groups(); ++g) {
        const storage::FileId fid = s->group_file(g)->file();
        if (fid < corrupt_by_file.size() && corrupt_by_file[fid] > 0) {
          s->MarkDistrusted("scrub: corrupt page(s) in '" +
                            disk_->FileName(fid) + "'");
          break;
        }
      }
    }
    report.smas_verified += state->smas->all().size();
    if (Result<size_t> failed = state->maintainer->VerifyAll(); !failed.ok()) {
      report.notes.push_back("verify '" + tname + "': " +
                             std::string(failed.status().message()));
    }
  }
  // Pass 3: census + repair. Rebuild() re-materializes exactly the
  // distrusted/stale SMAs; repairs are writes, so read-only mode reports
  // the findings without touching anything.
  for (auto& [tname, state] : table_states) {
    size_t broken = 0;
    for (const sma::Sma* s : state->smas->all()) {
      if (!s->trusted() || s->stale()) ++broken;
    }
    report.smas_distrusted += broken;
    if (broken == 0) continue;
    if (read_only()) {
      report.repairs_skipped_read_only = true;
      continue;
    }
    if (Status st = state->maintainer->Rebuild(); !st.ok()) {
      report.notes.push_back("rebuild '" + tname + "': " +
                             std::string(st.message()));
      continue;
    }
    size_t still = 0;
    for (const sma::Sma* s : state->smas->all()) {
      if (!s->trusted() || s->stale()) ++still;
    }
    report.smas_repaired += broken - still;
  }
  // Mirror the findings into the registry: run counters plus one gauge per
  // corrupt file (existing gauges zeroed first, so a later clean pass
  // retires stale findings).
  if (m_.scrub_runs != nullptr) {
    m_.scrub_runs->Inc();
    m_.scrub_pages_scanned->Add(static_cast<int64_t>(report.pages_scanned));
    m_.scrub_corrupt_pages->Add(static_cast<int64_t>(report.corrupt_pages));
    m_.scrub_smas_repaired->Add(static_cast<int64_t>(report.smas_repaired));
    for (auto& [name, gauge] : scrub_gauges_) gauge->Set(0);
    for (const auto& [fname, count] : report.corrupt_files) {
      // Labeled registration: the registry escapes the file name, so paths
      // holding quotes or backslashes stay exposition-format-clean.
      obs::Gauge* g = registry_->GetLabeledGauge(
          "smadb_scrub_corrupt_pages", {{"file", fname}},
          "Corrupt pages the last scrub found, per file");
      g->Set(static_cast<int64_t>(count));
      scrub_gauges_[fname] = g;
    }
  }
  return report;
}

Result<plan::QueryResult> Database::RunQuery(std::string_view sql,
                                             util::QueryContext* ctx,
                                             const plan::PlannerOptions& popts,
                                             uint64_t query_id,
                                             obs::TraceSink* sink,
                                             uint64_t trace_id,
                                             obs::QueryRegistry::Guard* live) {
  util::Stopwatch parse_watch;
  if (live != nullptr) live->SetPhase("parse");
  Table* table = nullptr;
  Result<ParsedQuery> parsed_or = [&]() -> Result<ParsedQuery> {
    obs::TraceSpan span(sink, query_id, "parse", trace_id);
    SMADB_ASSIGN_OR_RETURN(std::string table_name, ExtractTableName(sql));
    SMADB_ASSIGN_OR_RETURN(table, catalog_->GetTable(table_name));
    return ParseQuery(&table->schema(), sql);
  }();
  SMADB_RETURN_NOT_OK(parsed_or.status());
  ParsedQuery& parsed = *parsed_or;
  obs::QueryProfile::Phase(
      ctx->profile(), "parse",
      static_cast<uint64_t>(parse_watch.ElapsedSeconds() * 1e9));
  SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(parsed.table));

  if (live != nullptr) live->SetPhase("execute");
  obs::TraceSpan run_span(sink, query_id, "execute", trace_id);
  plan::Planner planner(state->smas.get(), popts);
  Result<plan::QueryResult> run = [&] {
    if (parsed.select_star) {
      plan::SelectQuery query;
      query.table = table;
      query.pred = parsed.pred;
      return planner.ExecuteSelect(query, ctx);
    }
    plan::AggQuery query;
    query.table = table;
    query.pred = parsed.pred;
    query.group_by = parsed.group_by;
    query.aggs = parsed.aggs;
    return planner.Execute(query, ctx);
  }();
  // Degradation rungs leave their notes on the context; mirror them into
  // the trace so `show trace` tells the lifecycle story on its own.
  const std::string notes = ctx->DegradationNotes();
  if (!notes.empty() && sink != nullptr) {
    obs::TraceSpan span(sink, query_id, "degraded", trace_id);
    span.set_note(notes);
  }
  if (!run.ok()) run_span.set_note(std::string(run.status().message()));
  return run;
}

Manifest Database::BuildManifest(uint64_t checkpoint_lsn) const {
  Manifest m;
  m.checkpoint_lsn = checkpoint_lsn;
  for (Table* t : catalog_->Tables()) {
    ManifestTable mt;
    mt.name = t->name();
    mt.bucket_pages = t->bucket_pages();
    mt.num_tuples = t->num_tuples();
    mt.num_deleted = t->num_deleted();
    mt.num_pages = t->num_pages();
    mt.epoch = t->epoch();
    for (const storage::Field& f : t->schema().fields()) {
      mt.fields.push_back(ManifestField{
          f.name, std::string(util::TypeIdToString(f.type)), f.capacity});
    }
    std::lock_guard<std::mutex> lock(states_mu_);
    if (auto it = states_.find(t->name()); it != states_.end()) {
      for (const sma::Sma* s : it->second.smas->all()) {
        ManifestSma ms;
        ms.name = s->spec().name;
        ms.func = std::string(sma::AggFuncToString(s->spec().func));
        ms.arg = s->spec().arg != nullptr ? s->spec().arg->ToString() : "";
        for (size_t c : s->spec().group_by) {
          ms.group_by.push_back(static_cast<uint32_t>(c));
        }
        ms.num_buckets = s->num_buckets();
        ms.built_epoch = s->built_epoch();
        ms.trusted = s->trusted();
        ms.distrust_reason = s->distrust_reason();
        for (size_t g = 0; g < s->num_groups(); ++g) {
          std::vector<std::string> key;
          for (const util::Value& v : s->group_key(g)) {
            key.push_back(EncodeManifestValue(v));
          }
          ms.groups.push_back(std::move(key));
        }
        mt.smas.push_back(std::move(ms));
      }
    }
    m.tables.push_back(std::move(mt));
  }
  return m;
}

Status Database::Recover() {
  util::Stopwatch watch;
  Manifest manifest;
  if (Result<Manifest> m = ReadManifest(ManifestPath()); m.ok()) {
    manifest = std::move(*m);
  } else if (m.status().code() != util::StatusCode::kNotFound) {
    return m.status();  // a corrupt manifest is not silently ignorable
  }
  // Phase 1: rebuild tables and SMA registries from the checkpoint snapshot.
  for (const ManifestTable& mt : manifest.tables) {
    SMADB_ASSIGN_OR_RETURN(storage::Schema schema, SchemaFromManifest(mt));
    SMADB_ASSIGN_OR_RETURN(
        std::unique_ptr<Table> restored,
        Table::Restore(pool_.get(), mt.name, schema,
                       storage::TableOptions{mt.bucket_pages}, mt.num_tuples,
                       mt.num_deleted, mt.num_pages, mt.epoch));
    SMADB_ASSIGN_OR_RETURN(Table * table,
                           catalog_->AttachTable(std::move(restored)));
    AttachLatchMetrics(table);
    TableState state;
    state.smas = std::make_unique<sma::SmaSet>(table);
    state.maintainer =
        std::make_unique<sma::SmaMaintainer>(table, state.smas.get());
    for (const ManifestSma& ms : mt.smas) {
      SMADB_ASSIGN_OR_RETURN(sma::AggFunc func, AggFuncFromString(ms.func));
      sma::SmaSpec spec;
      spec.name = ms.name;
      spec.func = func;
      if (!ms.arg.empty()) {
        SMADB_ASSIGN_OR_RETURN(spec.arg,
                               expr::ParseExpr(&table->schema(), ms.arg));
      }
      for (uint32_t c : ms.group_by) spec.group_by.push_back(c);
      std::vector<std::vector<util::Value>> keys;
      for (const std::vector<std::string>& enc : ms.groups) {
        if (enc.size() != ms.group_by.size()) {
          return Status::Corruption("SMA '" + ms.name +
                                    "': group key arity mismatch in manifest");
        }
        std::vector<util::Value> key;
        for (size_t i = 0; i < enc.size(); ++i) {
          if (ms.group_by[i] >= table->schema().num_fields()) {
            return Status::Corruption("SMA '" + ms.name +
                                      "': group column out of range");
          }
          SMADB_ASSIGN_OR_RETURN(
              util::Value v,
              DecodeManifestValue(table->schema().field(ms.group_by[i]).type,
                                  enc[i]));
          key.push_back(std::move(v));
        }
        keys.push_back(std::move(key));
      }
      SMADB_ASSIGN_OR_RETURN(
          std::unique_ptr<sma::Sma> restored_sma,
          sma::Sma::Restore(pool_.get(), table, std::move(spec), keys,
                            ms.num_buckets, ms.built_epoch, ms.trusted,
                            ms.distrust_reason));
      SMADB_RETURN_NOT_OK(state.smas->Add(std::move(restored_sma)));
    }
    {
      std::lock_guard<std::mutex> lock(states_mu_);
      states_.emplace(mt.name, std::move(state));
    }
    ++durability_.recovered_tables;
  }
  // Phase 1.5: sweep orphan SMA-files. SMA contents are derived data owned
  // by the checkpoint manifest, never the WAL, so a crash after `define
  // sma` was logged but before the next checkpoint leaves its SMA-files on
  // disk with no manifest entry. Replaying the define would then collide on
  // CreateFile. Every file a manifest entry owns was re-attached above, so
  // any other "sma."-named file is an orphan — remove it (the replayed
  // define rebuilds it from base data).
  {
    std::vector<char> attached(disk_->NumFiles(), 0);
    for (const auto& [name, state] : states_) {
      for (const sma::Sma* s : state.smas->all()) {
        for (size_t g = 0; g < s->num_groups(); ++g) {
          attached[s->group_file(g)->file()] = 1;
        }
      }
    }
    for (storage::FileId id = 0; id < attached.size(); ++id) {
      if (attached[id]) continue;
      const std::string& fname = disk_->FileName(id);
      if (fname.rfind("sma.", 0) != 0) continue;
      SMADB_RETURN_NOT_OK(pool_->DiscardFile(id));
      SMADB_RETURN_NOT_OK(disk_->RemoveFile(id));
      ++durability_.orphan_sma_files;
    }
  }
  // Phase 2: redo the post-checkpoint WAL suffix. Records below the
  // checkpoint horizon can exist after a crash between manifest write and
  // WAL reset; their effects are already in the checkpoint, so skip them.
  const uint64_t horizon = manifest.checkpoint_lsn;
  // A crash inside Wal::Reset can tear the checkpoint truncation: the
  // ftruncate persisted but the new header did not, so Wal::Open laid down
  // a fresh header whose LSNs restart at 1 while the manifest horizon stays
  // at the old value. Whether the log is that torn remnant or the pre-Reset
  // original, if no record reaches the horizon it holds nothing the
  // checkpoint lacks — re-seat it at the horizon before accepting writes,
  // so post-recovery appends can never land below the horizon and be
  // silently skipped by the next Recover.
  if (wal_->base_lsn() < horizon && wal_->next_lsn() <= horizon) {
    SMADB_RETURN_NOT_OK(wal_->Reset(horizon));
  }
  // Abort pre-pass: a record can reach the file (an eviction barrier ran
  // mid-apply) even though its apply then failed and the live instance
  // reported the mutation as failed; it logged a kAbort for it. Collect the
  // aborted LSNs first so the redo pass skips them.
  std::unordered_set<uint64_t> aborted;
  SMADB_RETURN_NOT_OK(wal_->Replay(
      [&](uint64_t, WalRecordType type, std::string_view payload) -> Status {
        if (type != WalRecordType::kAbort) return Status::OK();
        WalPayloadReader r(payload);
        uint64_t target = 0;
        if (!r.GetU64(&target)) {
          return Status::Corruption("truncated WAL abort record payload");
        }
        aborted.insert(target);
        return Status::OK();
      }));
  SMADB_RETURN_NOT_OK(wal_->Replay(
      [&](uint64_t lsn, WalRecordType type,
          std::string_view payload) -> Status {
        if (lsn < horizon) return Status::OK();
        if (type == WalRecordType::kAbort || aborted.count(lsn) > 0) {
          return Status::OK();
        }
        ++durability_.replayed_records;
        return ApplyWalRecord(type, payload);
      }));
  // Phase 3: replay redoes base data only — it does not maintain SMA files.
  // Any replayed mutation therefore leaves built-epochs behind, which the
  // planner already treats as "demote to plain scan" (SmaSet::TrustIssue);
  // count them so `show storage` reports the Rebuild debt.
  for (const auto& [name, state] : states_) {
    for (const sma::Sma* s : state.smas->all()) {
      if (s->stale() || !s->trusted()) ++durability_.stale_smas;
    }
  }
  durability_.recovery_us =
      static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6);
  return Status::OK();
}

Status Database::ApplyWalRecord(WalRecordType type, std::string_view payload) {
  WalPayloadReader r(payload);
  const auto truncated = [] {
    return Status::Corruption("truncated WAL record payload");
  };
  switch (type) {
    case WalRecordType::kCreateTable: {
      std::string name;
      uint32_t bucket_pages = 0;
      uint32_t nfields = 0;
      if (!r.GetString(&name) || !r.GetU32(&bucket_pages) ||
          !r.GetU32(&nfields)) {
        return truncated();
      }
      std::vector<storage::Field> fields;
      fields.reserve(nfields);
      for (uint32_t i = 0; i < nfields; ++i) {
        std::string fname;
        std::string ftype;
        uint32_t cap = 0;
        if (!r.GetString(&fname) || !r.GetString(&ftype) || !r.GetU32(&cap)) {
          return truncated();
        }
        SMADB_ASSIGN_OR_RETURN(util::TypeId t, TypeIdFromString(ftype));
        fields.push_back(
            storage::Field{std::move(fname), t, static_cast<uint16_t>(cap)});
      }
      if (catalog_->GetTable(name).ok()) return Status::OK();  // idempotent
      storage::Schema schema{std::move(fields)};
      const storage::TableOptions topts{bucket_pages};
      // The segment file may survive the crash (pages flushed before it):
      // re-attach at zero counters and let the replayed inserts rebuild
      // them; otherwise create from scratch.
      if (disk_->FindFile("tbl." + name).ok()) {
        SMADB_ASSIGN_OR_RETURN(
            std::unique_ptr<Table> t,
            Table::Restore(pool_.get(), name, std::move(schema), topts, 0, 0,
                           0, 0));
        SMADB_RETURN_NOT_OK(catalog_->AttachTable(std::move(t)).status());
      } else {
        SMADB_RETURN_NOT_OK(
            catalog_->CreateTable(name, std::move(schema), topts).status());
      }
      return Status::OK();
    }
    case WalRecordType::kDefineSma: {
      std::string tname;
      std::string text;
      if (!r.GetString(&tname) || !r.GetString(&text)) return truncated();
      SMADB_ASSIGN_OR_RETURN(Table * t, catalog_->GetTable(tname));
      SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(tname));
      SMADB_ASSIGN_OR_RETURN(sma::ParsedSmaDefinition def,
                             sma::ParseSmaDefinition(&t->schema(), text));
      if (state->smas->Find(def.spec.name).ok()) return Status::OK();
      // Rebuilds the SMA from the base data as restored so far; later
      // replayed mutations will leave it stale, which phase 3 reports.
      return sma::DefineSma(catalog_.get(), state->smas.get(), text);
    }
    case WalRecordType::kInsert: {
      std::string tname;
      uint32_t page = 0;
      uint32_t slot = 0;
      uint64_t epoch = 0;
      std::string bytes;
      if (!r.GetString(&tname) || !r.GetU32(&page) || !r.GetU32(&slot) ||
          !r.GetU64(&epoch) || !r.GetString(&bytes)) {
        return truncated();
      }
      SMADB_ASSIGN_OR_RETURN(Table * t, catalog_->GetTable(tname));
      return t->ApplyInsert(Rid{page, static_cast<uint16_t>(slot)}, bytes,
                            epoch);
    }
    case WalRecordType::kUpdate: {
      std::string tname;
      uint32_t page = 0;
      uint32_t slot = 0;
      uint32_t col = 0;
      uint64_t epoch = 0;
      std::string token;
      if (!r.GetString(&tname) || !r.GetU32(&page) || !r.GetU32(&slot) ||
          !r.GetU32(&col) || !r.GetU64(&epoch) || !r.GetString(&token)) {
        return truncated();
      }
      SMADB_ASSIGN_OR_RETURN(Table * t, catalog_->GetTable(tname));
      if (col >= t->schema().num_fields()) {
        return Status::Corruption("WAL update column out of range");
      }
      SMADB_ASSIGN_OR_RETURN(
          util::Value v,
          DecodeManifestValue(t->schema().field(col).type, token));
      return t->ApplyUpdate(Rid{page, static_cast<uint16_t>(slot)}, col, v,
                            epoch);
    }
    case WalRecordType::kDelete: {
      std::string tname;
      uint32_t page = 0;
      uint32_t slot = 0;
      uint64_t epoch = 0;
      if (!r.GetString(&tname) || !r.GetU32(&page) || !r.GetU32(&slot) ||
          !r.GetU64(&epoch)) {
        return truncated();
      }
      SMADB_ASSIGN_OR_RETURN(Table * t, catalog_->GetTable(tname));
      return t->ApplyDelete(Rid{page, static_cast<uint16_t>(slot)}, epoch);
    }
    case WalRecordType::kAbort:
      // Replay filters abort records (and their targets) out before apply;
      // reaching here is harmless — the record carries no redo work.
      return Status::OK();
  }
  return Status::Corruption(
      util::Format("unknown WAL record type %u",
                   static_cast<unsigned>(type)));
}

Status Database::SetStorageBackend(BackendKind kind) {
  if (crashed_) return Status::Internal("database crashed; reopen to recover");
  SMADB_RETURN_NOT_OK(CheckWritable());
  if (kind == disk_->kind()) return Status::OK();
  if (!catalog_->Tables().empty()) {
    return Status::InvalidArgument(
        "set storage requires an empty database (tables exist; their pages "
        "live on the current backend)");
  }
  std::unique_ptr<storage::DiskBackend> disk;
  std::unique_ptr<storage::Wal> wal;
  if (kind == BackendKind::kFile) {
    if (options_.storage_path.empty()) {
      return Status::InvalidArgument(
          "set storage_path = '<dir>' before `set storage = file`");
    }
    SMADB_ASSIGN_OR_RETURN(std::unique_ptr<storage::FileDiskManager> fd,
                           storage::FileDiskManager::Open(
                               options_.storage_path));
    disk = std::move(fd);
    SMADB_ASSIGN_OR_RETURN(wal,
                           storage::Wal::Open(WalPath(options_.storage_path)));
  } else {
    disk = std::make_unique<storage::SimulatedDisk>();
  }
  // Tear down top-first (catalog holds pool pointers, pool holds the disk),
  // then rebuild over the new backend.
  {
    std::lock_guard<std::mutex> lock(states_mu_);
    states_.clear();
  }
  catalog_.reset();
  pool_.reset();
  wal_ = std::move(wal);
  disk_ = std::move(disk);
  storage::BufferPoolOptions pool_options{
      .capacity_pages = options_.pool_pages,
      .verify_checksums = options_.verify_checksums,
      .pin_tracker =
          options_.global_memory_limit > 0 ? &global_memory_ : nullptr,
      .pre_writeback = [this] { return SyncWal(); }};
  pool_ = std::make_unique<storage::BufferPool>(disk_.get(),
                                                std::move(pool_options));
  catalog_ = std::make_unique<storage::Catalog>(pool_.get());
  options_.storage_backend = kind;
  ops_since_sync_ = 0;
  // An existing directory recovers: the switch doubles as "attach".
  if (wal_ != nullptr) return Recover();
  return Status::OK();
}

plan::QueryResult TextResult(const std::string& column,
                             const std::vector<std::string>& lines) {
  // One wide text column; long lines are wrapped, never lost.
  constexpr uint16_t kWidth = 120;
  plan::QueryResult out;
  out.schema = std::make_shared<const storage::Schema>(
      std::vector<storage::Field>{storage::Field::String(column, kWidth)});
  for (const std::string& line : lines) {
    std::string_view rest = line;
    do {
      storage::TupleBuffer row(out.schema.get());
      row.SetString(0, rest.substr(0, kWidth));
      out.rows.push_back(std::move(row));
      rest = rest.size() > kWidth ? rest.substr(kWidth) : std::string_view();
    } while (!rest.empty());
  }
  return out;
}

plan::QueryResult ExplainResult(const plan::PlanChoice& plan) {
  std::vector<std::string> lines;
  lines.push_back(
      util::Format("plan: %s%s", plan::PlanKindToString(plan.kind).data(),
                   plan.degraded ? " (degraded: partial answer)" : ""));
  lines.push_back(util::Format(
      "buckets: qualifying=%llu disqualifying=%llu ambivalent=%llu "
      "fetch_fraction=%.3f",
      static_cast<unsigned long long>(plan.qualifying),
      static_cast<unsigned long long>(plan.disqualifying),
      static_cast<unsigned long long>(plan.ambivalent), plan.fetch_fraction));
  lines.push_back(util::Format("dop: %zu", plan.dop));
  // The explanation already carries the planner's reasoning plus the
  // governor annotations ("; governor: ...", degradation notes). Split the
  // "; "-joined clauses onto their own rows for readability (TextResult
  // wraps any still-long clause to the column width).
  std::string_view rest = plan.explanation;
  while (!rest.empty()) {
    const size_t cut = rest.find("; ");
    lines.emplace_back(cut == std::string_view::npos ? rest
                                                     : rest.substr(0, cut));
    rest = cut == std::string_view::npos ? std::string_view()
                                         : rest.substr(cut + 2);
  }

  plan::QueryResult out = TextResult("explain", lines);
  out.plan = plan;
  return out;
}

}  // namespace smadb::db
