#include "db/database.h"

#include <algorithm>
#include <cctype>

#include "db/sql.h"
#include "expr/parser.h"
#include "sma/parser.h"
#include "util/string_util.h"

namespace smadb::db {

using storage::Rid;
using storage::Table;
using util::Result;
using util::Status;

Database::Database(DatabaseOptions options)
    : options_(options),
      global_memory_("global", options.global_memory_limit),
      admission_(AdmissionController::Options{
          .max_concurrent = options.max_concurrent_queries,
          .max_queued = options.admission_max_queued,
          .max_wait =
              std::chrono::milliseconds(options.admission_max_wait_ms)}),
      pool_(std::make_unique<storage::BufferPool>(
          &disk_,
          storage::BufferPoolOptions{
              .capacity_pages = options.pool_pages,
              .verify_checksums = options.verify_checksums,
              // Pin charging only when a global budget exists: the tracker
              // mutex would otherwise tax every Fetch for nothing.
              .pin_tracker = options.global_memory_limit > 0 ? &global_memory_
                                                             : nullptr})),
      catalog_(std::make_unique<storage::Catalog>(pool_.get())) {}

void Database::set_max_concurrent_queries(size_t n) {
  options_.max_concurrent_queries = n;
  admission_.SetMaxConcurrent(n);
}

Result<Table*> Database::CreateTable(std::string name, storage::Schema schema,
                                     storage::TableOptions options) {
  SMADB_ASSIGN_OR_RETURN(
      Table * table,
      catalog_->CreateTable(name, std::move(schema), options));
  TableState state;
  state.smas = std::make_unique<sma::SmaSet>(table);
  state.maintainer =
      std::make_unique<sma::SmaMaintainer>(table, state.smas.get());
  states_.emplace(std::move(name), std::move(state));
  return table;
}

Result<Database::TableState*> Database::StateFor(std::string_view table) {
  auto it = states_.find(std::string(table));
  if (it == states_.end()) {
    return Status::NotFound("no table named '" + std::string(table) + "'");
  }
  return &it->second;
}

Status Database::Insert(std::string_view table,
                        const storage::TupleBuffer& tuple, Rid* rid) {
  SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(table));
  return state->maintainer->Insert(tuple, rid);
}

Status Database::Update(std::string_view table, Rid rid, size_t col,
                        const util::Value& v) {
  SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(table));
  return state->maintainer->UpdateColumn(rid, col, v);
}

Status Database::Delete(std::string_view table, Rid rid) {
  SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(table));
  return state->maintainer->Delete(rid);
}

Result<sma::SmaSet*> Database::Smas(std::string_view table) {
  SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(table));
  return state->smas.get();
}

Result<sma::SmaMaintainer*> Database::Maintainer(std::string_view table) {
  SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(table));
  return state->maintainer.get();
}

Status Database::Execute(std::string_view statement) {
  // Dispatch on the first keyword.
  SMADB_ASSIGN_OR_RETURN(auto tokens,
                         expr::internal::Tokenize(statement));
  if (tokens.empty() || tokens[0].kind != expr::internal::TokKind::kIdent) {
    return Status::InvalidArgument("empty statement");
  }
  if (tokens[0].text == "define") {
    // `define sma ...` — find the from-table, then delegate.
    SMADB_ASSIGN_OR_RETURN(std::string table, ExtractTableName(statement));
    SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(table));
    return sma::DefineSma(catalog_.get(), state->smas.get(), statement);
  }
  if (tokens[0].text == "set") {
    // `set <knob> = <n>`. Execution knobs: dop (0 = auto/hardware),
    // batch_size (0 = row mode). Governor knobs (DESIGN.md §10):
    // timeout_ms (0 = none), memory_limit (bytes, 0 = unbudgeted),
    // max_concurrent_queries (0 = admission off), allow_degraded (0/1).
    if (tokens.size() == 5 &&  // set <knob> = <n> + kEnd sentinel
        tokens[1].kind == expr::internal::TokKind::kIdent &&
        tokens[2].kind == expr::internal::TokKind::kCmp &&
        tokens[2].text == "=" &&
        tokens[3].kind == expr::internal::TokKind::kInt &&
        tokens[3].value >= 0) {
      const int64_t n = tokens[3].value;
      if (tokens[1].text == "dop") {
        set_degree_of_parallelism(static_cast<size_t>(n));
        return Status::OK();
      }
      if (tokens[1].text == "batch_size") {
        set_batch_size(static_cast<size_t>(n));
        return Status::OK();
      }
      if (tokens[1].text == "timeout_ms") {
        set_timeout_ms(n);
        return Status::OK();
      }
      if (tokens[1].text == "memory_limit") {
        set_query_memory_limit(static_cast<size_t>(n));
        return Status::OK();
      }
      if (tokens[1].text == "max_concurrent_queries") {
        set_max_concurrent_queries(static_cast<size_t>(n));
        return Status::OK();
      }
      if (tokens[1].text == "allow_degraded") {
        options_.planner.allow_degraded = n != 0;
        return Status::OK();
      }
    }
    return Status::InvalidArgument(
        "malformed set statement; expected 'set <knob> = <n>' with knob in "
        "{dop, batch_size, timeout_ms, memory_limit, max_concurrent_queries, "
        "allow_degraded}");
  }
  return Status::NotSupported(
      "unknown statement; supported: 'define sma' and 'set <knob> = <n>'");
}

Result<plan::QueryResult> Database::Query(std::string_view sql) {
  return Query(sql, nullptr);
}

Result<plan::QueryResult> Database::Query(
    std::string_view sql, std::shared_ptr<util::CancelToken> cancel) {
  // `explain select ...` runs the governed query and reports the plan.
  std::string_view body = sql;
  while (!body.empty() && std::isspace(static_cast<unsigned char>(body[0]))) {
    body.remove_prefix(1);
  }
  bool explain = false;
  constexpr std::string_view kExplain = "explain ";
  if (body.size() > kExplain.size() &&
      body.substr(0, kExplain.size()) == kExplain) {
    explain = true;
    body.remove_prefix(kExplain.size());
  }

  // One governor per query: caller's cancel token (if any), the session
  // deadline, and a memory budget that is a child of the global tracker.
  util::QueryContext ctx(&global_memory_, options_.query_memory_limit,
                         std::move(cancel));
  if (options_.timeout_ms > 0) ctx.set_timeout_ms(options_.timeout_ms);

  // Admission before any real work: either we run promptly or fail promptly.
  SMADB_ASSIGN_OR_RETURN(AdmissionController::Slot slot, admission_.Admit());

  Result<plan::QueryResult> result = RunQuery(body, &ctx);
  if (!result.ok() || !explain) return result;
  return ExplainResult(result->plan);
}

Result<plan::QueryResult> Database::RunQuery(std::string_view sql,
                                             util::QueryContext* ctx) {
  SMADB_ASSIGN_OR_RETURN(std::string table_name, ExtractTableName(sql));
  SMADB_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(table_name));
  SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(table_name));
  SMADB_ASSIGN_OR_RETURN(ParsedQuery parsed,
                         ParseQuery(&table->schema(), sql));

  plan::Planner planner(state->smas.get(), options_.planner);
  if (parsed.select_star) {
    plan::SelectQuery query;
    query.table = table;
    query.pred = parsed.pred;
    return planner.ExecuteSelect(query, ctx);
  }

  plan::AggQuery query;
  query.table = table;
  query.pred = parsed.pred;
  query.group_by = parsed.group_by;
  query.aggs = parsed.aggs;
  return planner.Execute(query, ctx);
}

plan::QueryResult ExplainResult(const plan::PlanChoice& plan) {
  // One wide text column; long explanation lines are wrapped, never lost.
  constexpr uint16_t kWidth = 120;
  plan::QueryResult out;
  out.schema = std::make_shared<const storage::Schema>(
      std::vector<storage::Field>{storage::Field::String("explain", kWidth)});
  out.plan = plan;

  std::vector<std::string> lines;
  lines.push_back(
      util::Format("plan: %s%s", plan::PlanKindToString(plan.kind).data(),
                   plan.degraded ? " (degraded: partial answer)" : ""));
  lines.push_back(util::Format(
      "buckets: qualifying=%llu disqualifying=%llu ambivalent=%llu "
      "fetch_fraction=%.3f",
      static_cast<unsigned long long>(plan.qualifying),
      static_cast<unsigned long long>(plan.disqualifying),
      static_cast<unsigned long long>(plan.ambivalent), plan.fetch_fraction));
  lines.push_back(util::Format("dop: %zu", plan.dop));
  // The explanation already carries the planner's reasoning plus the
  // governor annotations ("; governor: ...", degradation notes). Split the
  // "; "-joined clauses onto their own rows for readability.
  std::string_view rest = plan.explanation;
  while (!rest.empty()) {
    const size_t cut = rest.find("; ");
    std::string_view clause =
        cut == std::string_view::npos ? rest : rest.substr(0, cut);
    rest = cut == std::string_view::npos ? std::string_view()
                                         : rest.substr(cut + 2);
    while (!clause.empty()) {  // wrap to the column width
      lines.push_back(std::string(clause.substr(0, kWidth)));
      clause = clause.size() > kWidth ? clause.substr(kWidth)
                                      : std::string_view();
    }
  }

  for (const std::string& line : lines) {
    storage::TupleBuffer row(out.schema.get());
    row.SetString(0, std::string_view(line).substr(0, kWidth));
    out.rows.push_back(std::move(row));
  }
  return out;
}

}  // namespace smadb::db
