#include "db/database.h"

#include <algorithm>
#include <cctype>

#include "db/sql.h"
#include "expr/parser.h"
#include "sma/parser.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace smadb::db {

using storage::Rid;
using storage::Table;
using util::Result;
using util::Status;

Database::Database(DatabaseOptions options)
    : options_(options),
      global_memory_("global", options.global_memory_limit),
      admission_(AdmissionController::Options{
          .max_concurrent = options.max_concurrent_queries,
          .max_queued = options.admission_max_queued,
          .max_wait =
              std::chrono::milliseconds(options.admission_max_wait_ms)}),
      pool_(std::make_unique<storage::BufferPool>(
          &disk_,
          storage::BufferPoolOptions{
              .capacity_pages = options.pool_pages,
              .verify_checksums = options.verify_checksums,
              // Pin charging only when a global budget exists: the tracker
              // mutex would otherwise tax every Fetch for nothing.
              .pin_tracker = options.global_memory_limit > 0 ? &global_memory_
                                                             : nullptr})),
      catalog_(std::make_unique<storage::Catalog>(pool_.get())),
      registry_(options.metrics_registry),
      trace_(options.trace_capacity) {
  if (registry_ == nullptr) {
    own_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry_ = own_registry_.get();
  }
  if (options_.enable_metrics) InitMetrics();
}

void Database::InitMetrics() {
  m_.queries_total =
      registry_->GetCounter("smadb_queries_total", "Queries executed");
  m_.queries_failed = registry_->GetCounter("smadb_queries_failed_total",
                                            "Queries that returned an error");
  m_.queries_cancelled = registry_->GetCounter(
      "smadb_queries_cancelled_total", "Queries cancelled by their token");
  m_.queries_deadline =
      registry_->GetCounter("smadb_queries_deadline_total",
                            "Queries that exceeded their deadline");
  m_.queries_degraded = registry_->GetCounter(
      "smadb_queries_degraded_total",
      "Queries answered through the degradation ladder");
  m_.rows_returned = registry_->GetCounter("smadb_rows_returned_total",
                                           "Result rows returned");
  m_.buckets_qualifying =
      registry_->GetCounter("smadb_buckets_qualifying_total",
                            "Buckets graded qualifying (paper Fig. 4)");
  m_.buckets_disqualifying =
      registry_->GetCounter("smadb_buckets_disqualifying_total",
                            "Buckets graded disqualifying");
  m_.buckets_ambivalent = registry_->GetCounter(
      "smadb_buckets_ambivalent_total", "Buckets graded ambivalent");
  m_.query_latency_us = registry_->GetHistogram(
      "smadb_query_latency_us", "End-to-end query latency (microseconds)");
  // Existing stat structs fold in as callback gauges — sampled at snapshot
  // time, zero cost on the query path.
  registry_->RegisterCallback(
      "smadb_pool_hits", "Buffer pool hits",
      [this] { return static_cast<int64_t>(pool_->stats().hits); });
  registry_->RegisterCallback(
      "smadb_pool_misses", "Buffer pool misses",
      [this] { return static_cast<int64_t>(pool_->stats().misses); });
  registry_->RegisterCallback(
      "smadb_pool_evictions", "Buffer pool evictions",
      [this] { return static_cast<int64_t>(pool_->stats().evictions); });
  registry_->RegisterCallback(
      "smadb_pool_checksum_failures", "Pages failing checksum verification",
      [this] {
        return static_cast<int64_t>(pool_->stats().checksum_failures);
      });
  registry_->RegisterCallback(
      "smadb_disk_page_reads", "Pages read from the simulated disk",
      [this] { return static_cast<int64_t>(disk_.stats().page_reads); });
  registry_->RegisterCallback(
      "smadb_disk_page_writes", "Pages written to the simulated disk",
      [this] { return static_cast<int64_t>(disk_.stats().page_writes); });
  registry_->RegisterCallback(
      "smadb_memory_used_bytes", "Bytes charged to the global budget",
      [this] { return static_cast<int64_t>(global_memory_.used()); });
  registry_->RegisterCallback(
      "smadb_memory_peak_bytes", "High-water mark of the global budget",
      [this] { return static_cast<int64_t>(global_memory_.peak()); });
}

void Database::set_max_concurrent_queries(size_t n) {
  options_.max_concurrent_queries = n;
  admission_.SetMaxConcurrent(n);
}

Result<Table*> Database::CreateTable(std::string name, storage::Schema schema,
                                     storage::TableOptions options) {
  SMADB_ASSIGN_OR_RETURN(
      Table * table,
      catalog_->CreateTable(name, std::move(schema), options));
  TableState state;
  state.smas = std::make_unique<sma::SmaSet>(table);
  state.maintainer =
      std::make_unique<sma::SmaMaintainer>(table, state.smas.get());
  states_.emplace(std::move(name), std::move(state));
  return table;
}

Result<Database::TableState*> Database::StateFor(std::string_view table) {
  auto it = states_.find(std::string(table));
  if (it != states_.end()) return &it->second;
  // Tables loaded straight into the catalog (the tpch bulk loaders) get
  // their SMA state lazily on first reference, so they are queryable and
  // `define sma` works on them like on CreateTable'd ones.
  SMADB_ASSIGN_OR_RETURN(Table * t, catalog_->GetTable(table));
  TableState state;
  state.smas = std::make_unique<sma::SmaSet>(t);
  state.maintainer =
      std::make_unique<sma::SmaMaintainer>(t, state.smas.get());
  auto [pos, inserted] = states_.emplace(std::string(table), std::move(state));
  (void)inserted;
  return &pos->second;
}

Status Database::Insert(std::string_view table,
                        const storage::TupleBuffer& tuple, Rid* rid) {
  SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(table));
  return state->maintainer->Insert(tuple, rid);
}

Status Database::Update(std::string_view table, Rid rid, size_t col,
                        const util::Value& v) {
  SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(table));
  return state->maintainer->UpdateColumn(rid, col, v);
}

Status Database::Delete(std::string_view table, Rid rid) {
  SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(table));
  return state->maintainer->Delete(rid);
}

Result<sma::SmaSet*> Database::Smas(std::string_view table) {
  SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(table));
  return state->smas.get();
}

Result<sma::SmaMaintainer*> Database::Maintainer(std::string_view table) {
  SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(table));
  return state->maintainer.get();
}

Status Database::Execute(std::string_view statement) {
  // Dispatch on the first keyword.
  SMADB_ASSIGN_OR_RETURN(auto tokens,
                         expr::internal::Tokenize(statement));
  if (tokens.empty() || tokens[0].kind != expr::internal::TokKind::kIdent) {
    return Status::InvalidArgument("empty statement");
  }
  if (tokens[0].text == "define") {
    // `define sma ...` — find the from-table, then delegate.
    SMADB_ASSIGN_OR_RETURN(std::string table, ExtractTableName(statement));
    SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(table));
    return sma::DefineSma(catalog_.get(), state->smas.get(), statement);
  }
  if (tokens[0].text == "set") {
    // `set <knob> = <n>`. Execution knobs: dop (0 = auto/hardware),
    // batch_size (0 = row mode). Governor knobs (DESIGN.md §10):
    // timeout_ms (0 = none), memory_limit (bytes, 0 = unbudgeted),
    // max_concurrent_queries (0 = admission off), allow_degraded (0/1).
    if (tokens.size() == 5 &&  // set <knob> = <n> + kEnd sentinel
        tokens[1].kind == expr::internal::TokKind::kIdent &&
        tokens[2].kind == expr::internal::TokKind::kCmp &&
        tokens[2].text == "=" &&
        tokens[3].kind == expr::internal::TokKind::kInt &&
        tokens[3].value >= 0) {
      const int64_t n = tokens[3].value;
      if (tokens[1].text == "dop") {
        set_degree_of_parallelism(static_cast<size_t>(n));
        return Status::OK();
      }
      if (tokens[1].text == "batch_size") {
        set_batch_size(static_cast<size_t>(n));
        return Status::OK();
      }
      if (tokens[1].text == "timeout_ms") {
        set_timeout_ms(n);
        return Status::OK();
      }
      if (tokens[1].text == "memory_limit") {
        set_query_memory_limit(static_cast<size_t>(n));
        return Status::OK();
      }
      if (tokens[1].text == "max_concurrent_queries") {
        set_max_concurrent_queries(static_cast<size_t>(n));
        return Status::OK();
      }
      if (tokens[1].text == "allow_degraded") {
        options_.planner.allow_degraded = n != 0;
        return Status::OK();
      }
    }
    return Status::InvalidArgument(
        "malformed set statement; expected 'set <knob> = <n>' with knob in "
        "{dop, batch_size, timeout_ms, memory_limit, max_concurrent_queries, "
        "allow_degraded}");
  }
  return Status::NotSupported(
      "unknown statement; supported: 'define sma' and 'set <knob> = <n>'");
}

Result<plan::QueryResult> Database::Query(std::string_view sql) {
  return Query(sql, nullptr);
}

namespace {

// Strips a leading keyword (plus the following whitespace); empty view when
// `text` does not start with it.
std::string_view StripKeyword(std::string_view text, std::string_view kw) {
  if (text.size() <= kw.size() || text.substr(0, kw.size()) != kw) return {};
  std::string_view rest = text.substr(kw.size());
  if (!std::isspace(static_cast<unsigned char>(rest[0]))) return {};
  while (!rest.empty() &&
         std::isspace(static_cast<unsigned char>(rest[0]))) {
    rest.remove_prefix(1);
  }
  return rest;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

Result<plan::QueryResult> Database::Query(
    std::string_view sql, std::shared_ptr<util::CancelToken> cancel) {
  std::string_view body = Trim(sql);

  // `show metrics` / `show profile` / `show trace` — read-only, ungoverned.
  if (std::string_view what = StripKeyword(body, "show"); !what.empty()) {
    return RunShow(what);
  }

  // `explain select ...` runs the governed query and reports the plan;
  // `explain analyze select ...` additionally profiles the run.
  bool explain = false;
  bool analyze = false;
  if (std::string_view rest = StripKeyword(body, "explain"); !rest.empty()) {
    explain = true;
    body = rest;
    if (std::string_view deeper = StripKeyword(body, "analyze");
        !deeper.empty()) {
      analyze = true;
      body = deeper;
    }
  }

  const uint64_t query_id =
      next_query_id_.fetch_add(1, std::memory_order_relaxed);
  obs::TraceSink* sink = options_.enable_metrics ? &trace_ : nullptr;

  // One governor per query: caller's cancel token (if any), the session
  // deadline, and a memory budget that is a child of the global tracker.
  util::QueryContext ctx(&global_memory_, options_.query_memory_limit,
                         std::move(cancel));
  if (options_.timeout_ms > 0) ctx.set_timeout_ms(options_.timeout_ms);

  // `explain analyze` hangs a profile off the context; operators see the
  // non-null pointer and start feeding their nodes. Plain queries keep a
  // null profile and the instrumentation costs one branch per feed site.
  std::unique_ptr<obs::QueryProfile> profile;
  if (analyze) {
    profile = std::make_unique<obs::QueryProfile>(query_id);
    ctx.set_profile(profile.get());
  }

  // Storage deltas around the run make the profile's pool/disk figures
  // consistent with PoolStats (shared counters: concurrent queries overlap).
  const storage::PoolStats pool_before = pool_->stats();
  const storage::IoStats io_before = disk_.stats();

  util::Stopwatch latency_watch;
  Result<plan::QueryResult> result = [&]() -> Result<plan::QueryResult> {
    // Admission before any real work: run promptly or fail promptly.
    util::Stopwatch admit_watch;
    Result<AdmissionController::Slot> slot = [&] {
      obs::TraceSpan span(sink, query_id, "admission");
      return admission_.Admit();
    }();
    SMADB_RETURN_NOT_OK(slot.status());
    obs::QueryProfile::Phase(
        profile.get(), "admission",
        static_cast<uint64_t>(admit_watch.ElapsedSeconds() * 1e9));
    return RunQuery(body, &ctx, query_id, sink);
  }();

  // Per-query metrics; a disabled registry leaves every pointer null.
  if (m_.queries_total != nullptr) {
    m_.queries_total->Inc();
    m_.query_latency_us->Observe(
        static_cast<int64_t>(latency_watch.ElapsedMicros()));
    if (!result.ok()) {
      m_.queries_failed->Inc();
      if (result.status().code() == util::StatusCode::kCancelled) {
        m_.queries_cancelled->Inc();
      }
      if (result.status().code() == util::StatusCode::kDeadlineExceeded) {
        m_.queries_deadline->Inc();
      }
    } else {
      m_.rows_returned->Add(static_cast<int64_t>(result->rows.size()));
      m_.buckets_qualifying->Add(
          static_cast<int64_t>(result->plan.qualifying));
      m_.buckets_disqualifying->Add(
          static_cast<int64_t>(result->plan.disqualifying));
      m_.buckets_ambivalent->Add(
          static_cast<int64_t>(result->plan.ambivalent));
      if (result->plan.degraded || !ctx.DegradationNotes().empty()) {
        m_.queries_degraded->Inc();
      }
    }
  }
  if (sink != nullptr && !result.ok()) {
    const util::StatusCode code = result.status().code();
    if (code == util::StatusCode::kCancelled ||
        code == util::StatusCode::kDeadlineExceeded) {
      obs::TraceSpan span(sink, query_id,
                          code == util::StatusCode::kCancelled
                              ? "cancelled"
                              : "deadline_exceeded");
      span.set_note(std::string(result.status().message()));
    }
  }

  if (profile != nullptr) {
    profile->SetStorageDelta(pool_->stats().hits - pool_before.hits,
                             pool_->stats().misses - pool_before.misses,
                             disk_.stats().page_reads - io_before.page_reads);
    if (result.ok()) {
      profile->SetSummary(util::Format(
          "%s, dop=%zu%s",
          plan::PlanKindToString(result->plan.kind).data(),
          result->plan.dop,
          result->plan.degraded ? " (degraded: partial answer)" : ""));
    }
    std::vector<std::string> report = profile->Render();
    {
      std::lock_guard<std::mutex> lock(profile_mu_);
      last_profile_ = std::move(profile);
    }
    if (!result.ok()) return result;  // report stays under `show profile`
    plan::QueryResult out = TextResult("explain analyze", report);
    out.plan = result->plan;
    return out;
  }

  if (!result.ok() || !explain) return result;
  return ExplainResult(result->plan);
}

std::vector<std::string> Database::LastProfile() const {
  std::lock_guard<std::mutex> lock(profile_mu_);
  if (last_profile_ == nullptr) return {};
  return last_profile_->Render();
}

Result<plan::QueryResult> Database::RunShow(std::string_view what) {
  what = Trim(what);
  if (what == "metrics") {
    std::vector<std::string> lines;
    for (const obs::MetricSnapshot& s : registry_->Snapshot()) {
      if (s.kind == obs::MetricSnapshot::Kind::kHistogram) {
        lines.push_back(util::Format(
            "%s: count=%lld sum=%lld p50=%.0f p95=%.0f p99=%.0f",
            s.name.c_str(), static_cast<long long>(s.count),
            static_cast<long long>(s.sum), s.p50, s.p95, s.p99));
      } else {
        lines.push_back(util::Format("%s = %lld", s.name.c_str(),
                                     static_cast<long long>(s.value)));
      }
    }
    if (lines.empty()) lines.push_back("(no metrics registered)");
    return TextResult("metrics", lines);
  }
  if (what == "profile") {
    std::vector<std::string> lines = LastProfile();
    if (lines.empty()) {
      lines.push_back(
          "no profiled query yet; run `explain analyze select ...`");
    }
    return TextResult("profile", lines);
  }
  if (what == "trace") {
    std::vector<std::string> lines;
    for (const obs::TraceEvent& e : trace_.Events()) {
      lines.push_back(util::Format(
          "[q%llu] %s start=%lluus dur=%lluus%s%s",
          static_cast<unsigned long long>(e.query_id), e.name.c_str(),
          static_cast<unsigned long long>(e.start_us),
          static_cast<unsigned long long>(e.duration_us),
          e.note.empty() ? "" : " ", e.note.c_str()));
    }
    if (lines.empty()) lines.push_back("(trace ring empty)");
    return TextResult("trace", lines);
  }
  return Status::NotSupported(
      "unknown show statement; supported: 'show metrics', 'show profile', "
      "'show trace'");
}

Result<plan::QueryResult> Database::RunQuery(std::string_view sql,
                                             util::QueryContext* ctx,
                                             uint64_t query_id,
                                             obs::TraceSink* sink) {
  util::Stopwatch parse_watch;
  Table* table = nullptr;
  Result<ParsedQuery> parsed_or = [&]() -> Result<ParsedQuery> {
    obs::TraceSpan span(sink, query_id, "parse");
    SMADB_ASSIGN_OR_RETURN(std::string table_name, ExtractTableName(sql));
    SMADB_ASSIGN_OR_RETURN(table, catalog_->GetTable(table_name));
    return ParseQuery(&table->schema(), sql);
  }();
  SMADB_RETURN_NOT_OK(parsed_or.status());
  ParsedQuery& parsed = *parsed_or;
  obs::QueryProfile::Phase(
      ctx->profile(), "parse",
      static_cast<uint64_t>(parse_watch.ElapsedSeconds() * 1e9));
  SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(parsed.table));

  obs::TraceSpan run_span(sink, query_id, "execute");
  plan::Planner planner(state->smas.get(), options_.planner);
  Result<plan::QueryResult> run = [&] {
    if (parsed.select_star) {
      plan::SelectQuery query;
      query.table = table;
      query.pred = parsed.pred;
      return planner.ExecuteSelect(query, ctx);
    }
    plan::AggQuery query;
    query.table = table;
    query.pred = parsed.pred;
    query.group_by = parsed.group_by;
    query.aggs = parsed.aggs;
    return planner.Execute(query, ctx);
  }();
  // Degradation rungs leave their notes on the context; mirror them into
  // the trace so `show trace` tells the lifecycle story on its own.
  const std::string notes = ctx->DegradationNotes();
  if (!notes.empty() && sink != nullptr) {
    obs::TraceSpan span(sink, query_id, "degraded");
    span.set_note(notes);
  }
  if (!run.ok()) run_span.set_note(std::string(run.status().message()));
  return run;
}

plan::QueryResult TextResult(const std::string& column,
                             const std::vector<std::string>& lines) {
  // One wide text column; long lines are wrapped, never lost.
  constexpr uint16_t kWidth = 120;
  plan::QueryResult out;
  out.schema = std::make_shared<const storage::Schema>(
      std::vector<storage::Field>{storage::Field::String(column, kWidth)});
  for (const std::string& line : lines) {
    std::string_view rest = line;
    do {
      storage::TupleBuffer row(out.schema.get());
      row.SetString(0, rest.substr(0, kWidth));
      out.rows.push_back(std::move(row));
      rest = rest.size() > kWidth ? rest.substr(kWidth) : std::string_view();
    } while (!rest.empty());
  }
  return out;
}

plan::QueryResult ExplainResult(const plan::PlanChoice& plan) {
  std::vector<std::string> lines;
  lines.push_back(
      util::Format("plan: %s%s", plan::PlanKindToString(plan.kind).data(),
                   plan.degraded ? " (degraded: partial answer)" : ""));
  lines.push_back(util::Format(
      "buckets: qualifying=%llu disqualifying=%llu ambivalent=%llu "
      "fetch_fraction=%.3f",
      static_cast<unsigned long long>(plan.qualifying),
      static_cast<unsigned long long>(plan.disqualifying),
      static_cast<unsigned long long>(plan.ambivalent), plan.fetch_fraction));
  lines.push_back(util::Format("dop: %zu", plan.dop));
  // The explanation already carries the planner's reasoning plus the
  // governor annotations ("; governor: ...", degradation notes). Split the
  // "; "-joined clauses onto their own rows for readability (TextResult
  // wraps any still-long clause to the column width).
  std::string_view rest = plan.explanation;
  while (!rest.empty()) {
    const size_t cut = rest.find("; ");
    lines.emplace_back(cut == std::string_view::npos ? rest
                                                     : rest.substr(0, cut));
    rest = cut == std::string_view::npos ? std::string_view()
                                         : rest.substr(cut + 2);
  }

  plan::QueryResult out = TextResult("explain", lines);
  out.plan = plan;
  return out;
}

}  // namespace smadb::db
