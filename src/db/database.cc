#include "db/database.h"

#include "db/sql.h"
#include "expr/parser.h"
#include "sma/parser.h"

namespace smadb::db {

using storage::Rid;
using storage::Table;
using util::Result;
using util::Status;

Database::Database(DatabaseOptions options)
    : options_(options),
      pool_(std::make_unique<storage::BufferPool>(
          &disk_,
          storage::BufferPoolOptions{
              .capacity_pages = options.pool_pages,
              .verify_checksums = options.verify_checksums})),
      catalog_(std::make_unique<storage::Catalog>(pool_.get())) {}

Result<Table*> Database::CreateTable(std::string name, storage::Schema schema,
                                     storage::TableOptions options) {
  SMADB_ASSIGN_OR_RETURN(
      Table * table,
      catalog_->CreateTable(name, std::move(schema), options));
  TableState state;
  state.smas = std::make_unique<sma::SmaSet>(table);
  state.maintainer =
      std::make_unique<sma::SmaMaintainer>(table, state.smas.get());
  states_.emplace(std::move(name), std::move(state));
  return table;
}

Result<Database::TableState*> Database::StateFor(std::string_view table) {
  auto it = states_.find(std::string(table));
  if (it == states_.end()) {
    return Status::NotFound("no table named '" + std::string(table) + "'");
  }
  return &it->second;
}

Status Database::Insert(std::string_view table,
                        const storage::TupleBuffer& tuple, Rid* rid) {
  SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(table));
  return state->maintainer->Insert(tuple, rid);
}

Status Database::Update(std::string_view table, Rid rid, size_t col,
                        const util::Value& v) {
  SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(table));
  return state->maintainer->UpdateColumn(rid, col, v);
}

Status Database::Delete(std::string_view table, Rid rid) {
  SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(table));
  return state->maintainer->Delete(rid);
}

Result<sma::SmaSet*> Database::Smas(std::string_view table) {
  SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(table));
  return state->smas.get();
}

Result<sma::SmaMaintainer*> Database::Maintainer(std::string_view table) {
  SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(table));
  return state->maintainer.get();
}

Status Database::Execute(std::string_view statement) {
  // Dispatch on the first keyword.
  SMADB_ASSIGN_OR_RETURN(auto tokens,
                         expr::internal::Tokenize(statement));
  if (tokens.empty() || tokens[0].kind != expr::internal::TokKind::kIdent) {
    return Status::InvalidArgument("empty statement");
  }
  if (tokens[0].text == "define") {
    // `define sma ...` — find the from-table, then delegate.
    SMADB_ASSIGN_OR_RETURN(std::string table, ExtractTableName(statement));
    SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(table));
    return sma::DefineSma(catalog_.get(), state->smas.get(), statement);
  }
  if (tokens[0].text == "set") {
    // `set <knob> = <n>`: dop (0 = auto/hardware) or batch_size (0 = row
    // mode, tuple-at-a-time).
    if (tokens.size() == 5 &&  // set <knob> = <n> + kEnd sentinel
        tokens[1].kind == expr::internal::TokKind::kIdent &&
        tokens[2].kind == expr::internal::TokKind::kCmp &&
        tokens[2].text == "=" &&
        tokens[3].kind == expr::internal::TokKind::kInt &&
        tokens[3].value >= 0) {
      if (tokens[1].text == "dop") {
        set_degree_of_parallelism(static_cast<size_t>(tokens[3].value));
        return Status::OK();
      }
      if (tokens[1].text == "batch_size") {
        set_batch_size(static_cast<size_t>(tokens[3].value));
        return Status::OK();
      }
    }
    return Status::InvalidArgument(
        "malformed set statement; expected 'set dop = <n>' or "
        "'set batch_size = <n>'");
  }
  return Status::NotSupported(
      "unknown statement; supported: 'define sma', 'set dop = <n>', "
      "'set batch_size = <n>'");
}

Result<plan::QueryResult> Database::Query(std::string_view sql) {
  SMADB_ASSIGN_OR_RETURN(std::string table_name, ExtractTableName(sql));
  SMADB_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(table_name));
  SMADB_ASSIGN_OR_RETURN(TableState * state, StateFor(table_name));
  SMADB_ASSIGN_OR_RETURN(ParsedQuery parsed,
                         ParseQuery(&table->schema(), sql));

  plan::Planner planner(state->smas.get(), options_.planner);
  if (parsed.select_star) {
    plan::SelectQuery query;
    query.table = table;
    query.pred = parsed.pred;
    return planner.ExecuteSelect(query);
  }

  plan::AggQuery query;
  query.table = table;
  query.pred = parsed.pred;
  query.group_by = parsed.group_by;
  query.aggs = parsed.aggs;
  return planner.Execute(query);
}

}  // namespace smadb::db
