// Deterministic fault injection for the storage stack.
//
// A *failpoint* is a named site in production code (e.g. "disk.read") that
// asks the global FaultInjector whether a fault should fire before doing its
// real work. Tests arm failpoints with a FaultSpec:
//
//   util::fault::Arm("disk.read", {.probability = 1.0, .count = 2,
//                                  .kind = util::FaultKind::kTransient});
//
// and the next two disk reads fail with a transient I/O error. Everything is
// deterministic: the injector's RNG is seedable (and only consulted when
// probability < 1), counts are exact, and `skip` lets a test pass the first
// N hits through before faulting — which is how "fail mid-scan" scenarios
// are scripted. When no failpoint is armed the per-hit cost is one relaxed
// atomic load, so shipping the hooks in production code is free.
//
// Failpoint families by prefix:
//   * "disk." / "wal." / "manifest." — the durable path (DESIGN.md §12/§13).
//     These are the points the sticky kCrash kill-switch poisons.
//   * "governor." — cancellation/budget delivery at exact sites (§10).
//   * "net." — the serving layer's socket syscalls (§15): "net.accept"
//     kills a connection at accept, "net.recv" kills a read (kBitFlip
//     instead corrupts the received bytes), "net.send" fails a response
//     send. Socket chaos, not durability: a crash never poisons them.
//
// Thread safety: all state is behind one mutex; Hit() may be called from any
// worker thread.

#ifndef SMADB_UTIL_FAULT_H_
#define SMADB_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/status.h"

namespace smadb::util {

/// What an armed failpoint does when it fires.
enum class FaultKind {
  /// Error that goes away on retry (arm with a small `count`): the storage
  /// layer maps it to kIOError and the buffer pool's bounded retry absorbs
  /// it when the count is within the retry budget.
  kTransient,
  /// Error that persists (unlimited count by default): retries exhaust and
  /// the kIOError surfaces to the query.
  kPermanent,
  /// Silent single-bit flip in the data delivered (read) or stored (write).
  /// No error is reported at the failpoint — detection is the checksum
  /// layer's job.
  kBitFlip,
  /// Simulated power loss at the failpoint: the site fails with kIOError and
  /// the injector enters a sticky "crashed" state in which every subsequent
  /// durable-path hit (points prefixed "wal.", "disk.", "manifest.") also
  /// fires kCrash, so no further durable write can slip through before the
  /// test driver calls Database::CrashForTesting and reopens. Cleared by
  /// ClearCrash()/DisarmAll().
  kCrash,
  /// Environmental out-of-space (ENOSPC/EDQUOT): the site fails with the
  /// typed kDiskFull status. Used to script graceful read-only degradation.
  kDiskFull,
};

std::string_view FaultKindToString(FaultKind k);

/// The Status a durable-path failpoint should return for a fired error-kind
/// fault: kDiskFull maps to the typed disk-full status, kCrash and the
/// transient/permanent kinds map to kIOError. (kBitFlip is a data-level
/// fault with no status; sites handle it before calling this.)
Status InjectedFaultStatus(FaultKind k, std::string_view point);

/// How an armed failpoint fires.
struct FaultSpec {
  /// Chance each eligible hit triggers; 1.0 = always (no RNG consulted).
  double probability = 1.0;
  /// Triggers remaining before the failpoint disarms itself; -1 = unlimited.
  int64_t count = -1;
  FaultKind kind = FaultKind::kPermanent;
  /// Eligible hits to pass through unharmed before the failpoint goes live
  /// (scripts "fail on the Nth page read").
  int64_t skip = 0;
  /// Only hits whose context (the disk file name) contains this substring
  /// are eligible; empty matches everything. Lets a test corrupt only
  /// SMA-files ("sma.") or only base relations ("tbl.").
  std::string file_filter = "";
};

/// Seedable, thread-safe failpoint registry. Use the Global() instance via
/// the fault:: convenience wrappers below.
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Reseeds the probability RNG (deterministic replay of p < 1 schedules).
  void Seed(uint64_t seed);

  /// Arms (or re-arms) `point` with `spec`.
  void Arm(std::string_view point, FaultSpec spec);

  void Disarm(std::string_view point);
  void DisarmAll();

  /// Consults the failpoint. Returns the fault kind to apply, or nullopt to
  /// proceed normally. `context` is matched against the spec's file_filter.
  std::optional<FaultKind> Hit(std::string_view point,
                               std::string_view context = {});

  /// Times `point` has actually fired since armed (diagnostics/tests).
  uint64_t Triggered(std::string_view point) const;

  /// True once a kCrash fault has fired (and ClearCrash has not been called).
  /// Torture drivers poll this after each workload step to detect the
  /// simulated power loss.
  bool crash_fired() const {
    return crashed_.load(std::memory_order_acquire);
  }

  /// Leaves the crashed state (also done by DisarmAll). Call before reopening
  /// the database after a simulated crash.
  void ClearCrash() { crashed_.store(false, std::memory_order_release); }

 private:
  struct Armed {
    FaultSpec spec;
    int64_t skipped = 0;
    uint64_t triggered = 0;
  };

  FaultInjector() = default;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Armed> points_;
  uint64_t rng_ = 0x5eed5eed5eed5eedull;
  // Fast path: Hit() is a no-op load while nothing is armed.
  std::atomic<size_t> num_armed_{0};
  // Sticky kill-switch set by the first kCrash firing; while set, every
  // durable-path Hit() returns kCrash regardless of what is armed.
  std::atomic<bool> crashed_{false};
};

namespace fault {

inline void Arm(std::string_view point, FaultSpec spec = {}) {
  FaultInjector::Global().Arm(point, spec);
}
inline void Disarm(std::string_view point) {
  FaultInjector::Global().Disarm(point);
}
inline void DisarmAll() { FaultInjector::Global().DisarmAll(); }
inline void Seed(uint64_t seed) { FaultInjector::Global().Seed(seed); }
inline std::optional<FaultKind> Hit(std::string_view point,
                                    std::string_view context = {}) {
  return FaultInjector::Global().Hit(point, context);
}
inline uint64_t Triggered(std::string_view point) {
  return FaultInjector::Global().Triggered(point);
}
inline bool CrashFired() { return FaultInjector::Global().crash_fired(); }
inline void ClearCrash() { FaultInjector::Global().ClearCrash(); }

/// RAII arm-for-this-scope (tests): disarms the point on destruction.
class ScopedFault {
 public:
  ScopedFault(std::string_view point, FaultSpec spec = {}) : point_(point) {
    Arm(point_, spec);
  }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
  ~ScopedFault() { Disarm(point_); }

 private:
  std::string point_;
};

}  // namespace fault

}  // namespace smadb::util

#endif  // SMADB_UTIL_FAULT_H_
