// Deterministic fault injection for the storage stack.
//
// A *failpoint* is a named site in production code (e.g. "disk.read") that
// asks the global FaultInjector whether a fault should fire before doing its
// real work. Tests arm failpoints with a FaultSpec:
//
//   util::fault::Arm("disk.read", {.probability = 1.0, .count = 2,
//                                  .kind = util::FaultKind::kTransient});
//
// and the next two disk reads fail with a transient I/O error. Everything is
// deterministic: the injector's RNG is seedable (and only consulted when
// probability < 1), counts are exact, and `skip` lets a test pass the first
// N hits through before faulting — which is how "fail mid-scan" scenarios
// are scripted. When no failpoint is armed the per-hit cost is one relaxed
// atomic load, so shipping the hooks in production code is free.
//
// Thread safety: all state is behind one mutex; Hit() may be called from any
// worker thread.

#ifndef SMADB_UTIL_FAULT_H_
#define SMADB_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace smadb::util {

/// What an armed failpoint does when it fires.
enum class FaultKind {
  /// Error that goes away on retry (arm with a small `count`): the storage
  /// layer maps it to kIOError and the buffer pool's bounded retry absorbs
  /// it when the count is within the retry budget.
  kTransient,
  /// Error that persists (unlimited count by default): retries exhaust and
  /// the kIOError surfaces to the query.
  kPermanent,
  /// Silent single-bit flip in the data delivered (read) or stored (write).
  /// No error is reported at the failpoint — detection is the checksum
  /// layer's job.
  kBitFlip,
};

std::string_view FaultKindToString(FaultKind k);

/// How an armed failpoint fires.
struct FaultSpec {
  /// Chance each eligible hit triggers; 1.0 = always (no RNG consulted).
  double probability = 1.0;
  /// Triggers remaining before the failpoint disarms itself; -1 = unlimited.
  int64_t count = -1;
  FaultKind kind = FaultKind::kPermanent;
  /// Eligible hits to pass through unharmed before the failpoint goes live
  /// (scripts "fail on the Nth page read").
  int64_t skip = 0;
  /// Only hits whose context (the disk file name) contains this substring
  /// are eligible; empty matches everything. Lets a test corrupt only
  /// SMA-files ("sma.") or only base relations ("tbl.").
  std::string file_filter = "";
};

/// Seedable, thread-safe failpoint registry. Use the Global() instance via
/// the fault:: convenience wrappers below.
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Reseeds the probability RNG (deterministic replay of p < 1 schedules).
  void Seed(uint64_t seed);

  /// Arms (or re-arms) `point` with `spec`.
  void Arm(std::string_view point, FaultSpec spec);

  void Disarm(std::string_view point);
  void DisarmAll();

  /// Consults the failpoint. Returns the fault kind to apply, or nullopt to
  /// proceed normally. `context` is matched against the spec's file_filter.
  std::optional<FaultKind> Hit(std::string_view point,
                               std::string_view context = {});

  /// Times `point` has actually fired since armed (diagnostics/tests).
  uint64_t Triggered(std::string_view point) const;

 private:
  struct Armed {
    FaultSpec spec;
    int64_t skipped = 0;
    uint64_t triggered = 0;
  };

  FaultInjector() = default;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Armed> points_;
  uint64_t rng_ = 0x5eed5eed5eed5eedull;
  // Fast path: Hit() is a no-op load while nothing is armed.
  std::atomic<size_t> num_armed_{0};
};

namespace fault {

inline void Arm(std::string_view point, FaultSpec spec = {}) {
  FaultInjector::Global().Arm(point, spec);
}
inline void Disarm(std::string_view point) {
  FaultInjector::Global().Disarm(point);
}
inline void DisarmAll() { FaultInjector::Global().DisarmAll(); }
inline void Seed(uint64_t seed) { FaultInjector::Global().Seed(seed); }
inline std::optional<FaultKind> Hit(std::string_view point,
                                    std::string_view context = {}) {
  return FaultInjector::Global().Hit(point, context);
}
inline uint64_t Triggered(std::string_view point) {
  return FaultInjector::Global().Triggered(point);
}

/// RAII arm-for-this-scope (tests): disarms the point on destruction.
class ScopedFault {
 public:
  ScopedFault(std::string_view point, FaultSpec spec = {}) : point_(point) {
    Arm(point_, spec);
  }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
  ~ScopedFault() { Disarm(point_); }

 private:
  std::string point_;
};

}  // namespace fault

}  // namespace smadb::util

#endif  // SMADB_UTIL_FAULT_H_
