#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <latch>

namespace smadb::util {

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

Status ThreadPool::ParallelFor(
    uint64_t begin, uint64_t end, size_t dop,
    const std::function<Status(size_t worker, uint64_t index)>& fn,
    const CancelToken* cancel) {
  if (begin >= end) return Status::OK();
  dop = std::min<size_t>(std::max<size_t>(dop, 1), end - begin);
  if (dop == 1) {
    for (uint64_t i = begin; i < end; ++i) {
      if (cancel != nullptr && cancel->ShouldStop()) {
        return cancel->Check("ParallelFor");
      }
      SMADB_RETURN_NOT_OK(fn(0, i));
    }
    return Status::OK();
  }

  // Shared claim state. Workers submitted to a smaller pool than dop simply
  // find the counter drained when they finally run — correct, just idle.
  struct SharedState {
    std::atomic<uint64_t> next;
    std::atomic<bool> failed{false};
    std::mutex error_mu;
    Status first_error;
  };
  SharedState state;
  state.next.store(begin, std::memory_order_relaxed);

  auto run_worker = [&state, end, &fn, cancel](size_t worker) {
    while (!state.failed.load(std::memory_order_relaxed)) {
      // The stop flag is observed before every claim: once tripped, no new
      // morsel is scheduled; the worker simply falls out of the loop.
      if (cancel != nullptr && cancel->ShouldStop()) return;
      const uint64_t i = state.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return;
      Status s = fn(worker, i);
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(state.error_mu);
        if (!state.failed.exchange(true)) state.first_error = std::move(s);
        return;
      }
    }
  };

  std::latch done(static_cast<std::ptrdiff_t>(dop - 1));
  for (size_t w = 1; w < dop; ++w) {
    Submit([&run_worker, &done, w] {
      run_worker(w);
      done.count_down();
    });
  }
  run_worker(0);
  done.wait();  // every worker has exited fn — a clean drain

  if (state.failed.load()) return state.first_error;
  if (cancel != nullptr &&
      state.next.load(std::memory_order_relaxed) < end &&
      cancel->ShouldStop()) {
    return cancel->Check("ParallelFor");
  }
  return Status::OK();
}

ThreadPool* ThreadPool::Shared() {
  static ThreadPool* pool =
      new ThreadPool(std::max<size_t>(1, DefaultDop() - 1));
  return pool;
}

size_t ThreadPool::DefaultDop() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace smadb::util
