// Fixed-point decimal with two fractional digits, stored in an int64.
// TPC-D money columns (extendedprice, discount, tax, ...) are decimal(15,2);
// exact integer arithmetic avoids the float-summation drift that would make
// SMA-precomputed sums diverge from scan-computed sums.

#ifndef SMADB_UTIL_DECIMAL_H_
#define SMADB_UTIL_DECIMAL_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace smadb::util {

/// decimal(·,2): value = cents / 100. Addition/subtraction are exact;
/// multiplication rounds half-away-from-zero to two digits.
class Decimal {
 public:
  constexpr Decimal() : cents_(0) {}
  constexpr explicit Decimal(int64_t cents) : cents_(cents) {}

  /// 12.34 -> FromUnscaled(12, 34).
  static constexpr Decimal FromUnscaled(int64_t whole, int64_t hundredths) {
    return Decimal(whole * 100 + (whole < 0 ? -hundredths : hundredths));
  }
  static constexpr Decimal FromCents(int64_t cents) { return Decimal(cents); }

  constexpr int64_t cents() const { return cents_; }
  constexpr double ToDouble() const { return static_cast<double>(cents_) / 100.0; }

  constexpr Decimal operator+(Decimal o) const { return Decimal(cents_ + o.cents_); }
  constexpr Decimal operator-(Decimal o) const { return Decimal(cents_ - o.cents_); }
  Decimal& operator+=(Decimal o) {
    cents_ += o.cents_;
    return *this;
  }
  Decimal& operator-=(Decimal o) {
    cents_ -= o.cents_;
    return *this;
  }

  /// Exact product has four fractional digits; rounds back to two,
  /// half away from zero.
  constexpr Decimal operator*(Decimal o) const {
    const int64_t raw = cents_ * o.cents_;  // scale 10^4
    const int64_t half = raw >= 0 ? 50 : -50;
    return Decimal((raw + half) / 100);
  }

  /// Multiplication by an integral count (e.g. quantity).
  constexpr Decimal operator*(int64_t n) const { return Decimal(cents_ * n); }

  auto operator<=>(const Decimal&) const = default;

  /// Formats with exactly two fractional digits, e.g. "-3.07".
  std::string ToString() const {
    const int64_t a = cents_ < 0 ? -cents_ : cents_;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%s%lld.%02lld", cents_ < 0 ? "-" : "",
                  static_cast<long long>(a / 100),
                  static_cast<long long>(a % 100));
    return buf;
  }

 private:
  int64_t cents_;
};

}  // namespace smadb::util

#endif  // SMADB_UTIL_DECIMAL_H_
