#include "util/query_context.h"

#include <algorithm>

#include "util/fault.h"
#include "util/string_util.h"

namespace smadb::util {

std::string FormatBytes(size_t bytes) {
  if (bytes < 1024) return Format("%zu B", bytes);
  const double kb = static_cast<double>(bytes) / 1024.0;
  if (kb < 1024.0) return Format("%.1f KB", kb);
  const double mb = kb / 1024.0;
  if (mb < 1024.0) return Format("%.1f MB", mb);
  return Format("%.1f GB", mb / 1024.0);
}

Status CancelToken::Check(std::string_view where) const {
  // Failpoint: deliver a user cancel at exactly this checkpoint.
  if (fault::Hit("governor.cancel", where).has_value()) {
    const_cast<CancelToken*>(this)->Cancel();
  }
  if (cancel_requested()) {
    return Status::Cancelled("query cancelled at " + std::string(where));
  }
  const int64_t d = deadline_ns_.load(std::memory_order_acquire);
  if (d != 0) {
    const int64_t now =
        std::chrono::steady_clock::now().time_since_epoch().count();
    if (now >= d) {
      return Status::DeadlineExceeded(
          Format("query deadline exceeded at %s (%.1f ms past deadline)",
                 std::string(where).c_str(),
                 static_cast<double>(now - d) / 1e6));
    }
  }
  return Status::OK();
}

Status MemoryTracker::TryCharge(size_t bytes, std::string_view component) {
  const bool injected = fault::Hit("governor.charge", component).has_value();
  const size_t prev = used_.fetch_add(bytes, std::memory_order_relaxed);
  if (injected || (limit_ > 0 && prev + bytes > limit_)) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    std::string msg = Format(
        "memory budget exceeded: charging %s to component '%s' would "
        "put tracker '%s' over its %s limit",
        FormatBytes(bytes).c_str(), std::string(component).c_str(),
        name_.c_str(),
        limit_ > 0 ? FormatBytes(limit_).c_str() : "(injected)");
    msg += " — " + Breakdown();
    return Status::ResourceExhausted(std::move(msg));
  }
  if (parent_ != nullptr) {
    Status up = parent_->TryCharge(bytes, component);
    if (!up.ok()) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      return up;
    }
  }
  // Peak is advisory; a stale max lost to a race only under-reports.
  size_t peak = peak_.load(std::memory_order_relaxed);
  while (prev + bytes > peak &&
         !peak_.compare_exchange_weak(peak, prev + bytes,
                                      std::memory_order_relaxed)) {
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    by_component_[std::string(component)] += bytes;
  }
  return Status::OK();
}

void MemoryTracker::Release(size_t bytes, std::string_view component) {
  if (bytes == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_component_.find(std::string(component));
    if (it != by_component_.end()) {
      it->second -= std::min(it->second, bytes);
      if (it->second == 0) by_component_.erase(it);
    }
  }
  size_t cur = used_.load(std::memory_order_relaxed);
  size_t clamped;
  do {
    clamped = std::min(cur, bytes);
  } while (!used_.compare_exchange_weak(cur, cur - clamped,
                                        std::memory_order_relaxed));
  if (parent_ != nullptr) parent_->Release(clamped, component);
}

void MemoryTracker::ReleaseAll() {
  std::map<std::string, size_t> components;
  {
    std::lock_guard<std::mutex> lock(mu_);
    components.swap(by_component_);
  }
  used_.store(0, std::memory_order_relaxed);
  if (parent_ != nullptr) {
    for (const auto& [component, bytes] : components) {
      parent_->Release(bytes, component);
    }
  }
}

std::string MemoryTracker::Breakdown() const {
  std::string out = Format("%s used=%s", name_.c_str(),
                           FormatBytes(used()).c_str());
  if (limit_ > 0) out += " limit=" + FormatBytes(limit_);
  std::lock_guard<std::mutex> lock(mu_);
  if (!by_component_.empty()) {
    out += " (";
    bool first = true;
    for (const auto& [component, bytes] : by_component_) {
      if (!first) out += ", ";
      first = false;
      out += component + "=" + FormatBytes(bytes);
    }
    out += ")";
  }
  return out;
}

void QueryContext::NoteDegradation(std::string note) {
  std::lock_guard<std::mutex> lock(mu_);
  degradations_.push_back(std::move(note));
}

std::string QueryContext::DegradationNotes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const std::string& n : degradations_) {
    if (!out.empty()) out += "; ";
    out += n;
  }
  return out;
}

void QueryContext::BeginDegradedRun(std::string note) {
  NoteDegradation(std::move(note));
  memory_.ReleaseAll();
  owned_cancel_->ClearDeadline();
}

std::string QueryContext::GovernorNote() const {
  std::string out;
  if (timeout_ms_ > 0) {
    out += Format("deadline=%llums",
                  static_cast<unsigned long long>(timeout_ms_));
  }
  if (memory_.limit() > 0) {
    if (!out.empty()) out += ", ";
    out += "memory_limit=" + FormatBytes(memory_.limit());
  }
  return out;
}

}  // namespace smadb::util
