// Compact bit vector used for bucket-grade masks and qualification sets.

#ifndef SMADB_UTIL_BITVECTOR_H_
#define SMADB_UTIL_BITVECTOR_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace smadb::util {

/// Fixed-size bit vector with popcount support.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(size_t n, bool value = false)
      : size_(n), words_((n + 63) / 64, value ? ~uint64_t{0} : 0) {
    TrimTail();
  }

  size_t size() const { return size_; }

  bool Get(size_t i) const {
    assert(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void Set(size_t i, bool v = true) {
    assert(i < size_);
    if (v) {
      words_[i >> 6] |= uint64_t{1} << (i & 63);
    } else {
      words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
    }
  }

  /// Number of set bits.
  size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
    return c;
  }

  /// In-place intersection/union with an equal-sized vector.
  void And(const BitVector& o) {
    assert(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  }
  void Or(const BitVector& o) {
    assert(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  }

 private:
  void TrimTail() {
    const size_t extra = words_.size() * 64 - size_;
    if (extra > 0 && !words_.empty()) words_.back() &= ~uint64_t{0} >> extra;
  }

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace smadb::util

#endif  // SMADB_UTIL_BITVECTOR_H_
