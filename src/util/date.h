// Civil-calendar Date stored as days since 1970-01-01 (proleptic Gregorian).
// TPC-D dates span 1992-01-01 .. 1998-12-31; the paper stores a date in
// 32 bits, which this type matches exactly.

#ifndef SMADB_UTIL_DATE_H_
#define SMADB_UTIL_DATE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace smadb::util {

/// A calendar date, internally the (possibly negative) number of days since
/// the Unix epoch. Totally ordered; arithmetic in whole days.
class Date {
 public:
  /// Constructs the epoch date 1970-01-01.
  constexpr Date() : days_(0) {}
  /// Constructs from a raw days-since-epoch count.
  constexpr explicit Date(int32_t days_since_epoch)
      : days_(days_since_epoch) {}

  /// Builds a Date from civil year/month/day. No validation: the caller must
  /// pass a real calendar date (use Parse() for validated input).
  static Date FromYmd(int year, int month, int day);

  /// Parses "YYYY-MM-DD". Rejects malformed strings and impossible dates.
  static Result<Date> Parse(std::string_view text);

  /// Days since 1970-01-01 (the stored representation).
  constexpr int32_t days() const { return days_; }

  /// Decomposes into civil year/month/day (Howard Hinnant's algorithm).
  void ToYmd(int* year, int* month, int* day) const;

  int year() const;
  int month() const;
  int day() const;

  /// Formats as "YYYY-MM-DD".
  std::string ToString() const;

  /// Date arithmetic in whole days.
  Date AddDays(int32_t n) const { return Date(days_ + n); }
  int32_t operator-(Date other) const { return days_ - other.days_; }

  auto operator<=>(const Date&) const = default;

 private:
  int32_t days_;
};

}  // namespace smadb::util

#endif  // SMADB_UTIL_DATE_H_
