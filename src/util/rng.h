// Deterministic pseudo-random generation for dbgen-style data synthesis.
// Seeded explicitly everywhere so every table, test, and benchmark is
// reproducible bit-for-bit across runs and platforms.

#ifndef SMADB_UTIL_RNG_H_
#define SMADB_UTIL_RNG_H_

#include <cassert>
#include <cstdint>

namespace smadb::util {

/// splitmix64-based generator: tiny state, excellent distribution, and —
/// unlike std::mt19937 + std::uniform_int_distribution — identical output on
/// every standard library implementation.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi], both inclusive (dbgen convention).
  int64_t Uniform(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Approximately normal deviate (mean 0, stddev 1) via the sum of 12
  /// uniforms — plenty for modeling data-entry lag (paper Fig. 2), with no
  /// libm dependency and full cross-platform determinism.
  double NextGaussian() {
    double s = 0.0;
    for (int i = 0; i < 12; ++i) s += NextDouble();
    return s - 6.0;
  }

  /// Bernoulli trial with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace smadb::util

#endif  // SMADB_UTIL_RNG_H_
