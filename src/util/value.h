// Runtime-typed Value used at API boundaries (predicates, query results,
// group keys). Hot loops inside operators use raw typed column accessors
// instead; Value is for the narrow waist where genericity matters.

#ifndef SMADB_UTIL_VALUE_H_
#define SMADB_UTIL_VALUE_H_

#include <cassert>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/date.h"
#include "util/decimal.h"
#include "util/status.h"

namespace smadb::util {

/// Physical column types supported by the storage layer.
enum class TypeId : uint8_t {
  kInt32,    ///< 32-bit signed integer
  kInt64,    ///< 64-bit signed integer
  kDouble,   ///< IEEE-754 double
  kDecimal,  ///< fixed-point decimal(·,2) stored as int64 cents
  kDate,     ///< days since epoch stored as int32
  kString,   ///< fixed-capacity inline string (char(n) / varchar(n))
};

/// Name of a type ("int32", "decimal", ...).
std::string_view TypeIdToString(TypeId t);

/// True for types whose comparisons are numeric (everything except kString).
constexpr bool IsNumericFamily(TypeId t) { return t != TypeId::kString; }

/// A single typed scalar. TPC-D has no NULLs, and neither do we; every Value
/// holds a concrete datum of its type.
class Value {
 public:
  /// Default-constructs int64 zero (useful for aggregate init).
  Value() : type_(TypeId::kInt64), num_(0) {}

  static Value Int32(int32_t v) { return Value(TypeId::kInt32, v); }
  static Value Int64(int64_t v) { return Value(TypeId::kInt64, v); }
  static Value MakeDouble(double v) {
    Value val;
    val.type_ = TypeId::kDouble;
    val.dbl_ = v;
    return val;
  }
  static Value MakeDecimal(Decimal d) { return Value(TypeId::kDecimal, d.cents()); }
  static Value MakeDate(Date d) { return Value(TypeId::kDate, d.days()); }
  static Value String(std::string s) {
    Value val;
    val.type_ = TypeId::kString;
    val.str_ = std::move(s);
    return val;
  }

  TypeId type() const { return type_; }

  int32_t AsInt32() const {
    assert(type_ == TypeId::kInt32);
    return static_cast<int32_t>(num_);
  }
  int64_t AsInt64() const {
    assert(type_ == TypeId::kInt64);
    return num_;
  }
  double AsDouble() const {
    assert(type_ == TypeId::kDouble);
    return dbl_;
  }
  Decimal AsDecimal() const {
    assert(type_ == TypeId::kDecimal);
    return Decimal(num_);
  }
  Date AsDate() const {
    assert(type_ == TypeId::kDate);
    return Date(static_cast<int32_t>(num_));
  }
  const std::string& AsString() const {
    assert(type_ == TypeId::kString);
    return str_;
  }

  /// Raw integral payload for kInt32/kInt64/kDecimal/kDate. Used by the SMA
  /// layer, which stores these families uniformly as integers.
  int64_t RawInt() const {
    assert(type_ != TypeId::kDouble && type_ != TypeId::kString);
    return num_;
  }

  /// Numeric view of any non-string value (decimal scaled to its true value).
  double ToDoubleLossy() const;

  /// Three-way comparison. Both values must be of the same type family
  /// (both strings, or both in {int32,int64,date} etc. with identical type);
  /// comparing across types is a programming error.
  std::strong_ordering Compare(const Value& other) const;

  bool operator==(const Value& other) const {
    return Compare(other) == std::strong_ordering::equal;
  }
  bool operator<(const Value& other) const {
    return Compare(other) == std::strong_ordering::less;
  }
  bool operator<=(const Value& other) const {
    return Compare(other) != std::strong_ordering::greater;
  }
  bool operator>(const Value& other) const {
    return Compare(other) == std::strong_ordering::greater;
  }
  bool operator>=(const Value& other) const {
    return Compare(other) != std::strong_ordering::less;
  }

  /// Display form ("1995-03-14", "3.07", "RAIL", ...).
  std::string ToString() const;

 private:
  Value(TypeId t, int64_t raw) : type_(t), num_(raw) {}

  TypeId type_;
  union {
    int64_t num_;
    double dbl_;
  };
  std::string str_;
};

}  // namespace smadb::util

#endif  // SMADB_UTIL_VALUE_H_
