#include "util/status.h"

namespace smadb::util {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kNotSupported:
      return "Not supported";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kDiskFull:
      return "Disk full";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace smadb::util
