// Wall-clock stopwatch for benchmark harnesses.

#ifndef SMADB_UTIL_STOPWATCH_H_
#define SMADB_UTIL_STOPWATCH_H_

#include <chrono>

namespace smadb::util {

/// Monotonic stopwatch; starts at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace smadb::util

#endif  // SMADB_UTIL_STOPWATCH_H_
