// SMADB_DCHECK: an internal-invariant check that stays *defined* in release
// builds. A plain assert() compiles to nothing under NDEBUG, so a violated
// precondition (e.g. a typed tuple getter applied to the wrong column after
// a page escaped checksum protection) silently becomes undefined behaviour.
// SMADB_DCHECK always evaluates the condition; on failure it reports the
// site and aborts — a defined, diagnosable fail-stop instead of UB.
//
// Use for programming-error invariants on hot paths where returning a
// Status is not an option. Data errors that operations can recover from
// (corrupt pages, bad input) must still flow through util::Status.

#ifndef SMADB_UTIL_DCHECK_H_
#define SMADB_UTIL_DCHECK_H_

namespace smadb::util::internal {

/// Prints "<file>:<line>: DCHECK failed: <expr>" to stderr and aborts.
[[noreturn]] void DcheckFailed(const char* file, int line, const char* expr);

}  // namespace smadb::util::internal

#define SMADB_DCHECK(cond)                                              \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::smadb::util::internal::DcheckFailed(__FILE__, __LINE__, #cond); \
    }                                                                   \
  } while (false)

#endif  // SMADB_UTIL_DCHECK_H_
