#include "util/string_util.h"

#include <cstdint>
#include <cstdio>

namespace smadb::util {

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

std::string WithThousands(long long v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  const size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out += ',';
    out += digits[i];
  }
  return (v < 0 ? "-" : "") + out;
}

std::string HumanBytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return Format("%.2f %s", bytes, kUnits[u]);
}

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

bool NeedsEscape(unsigned char c) {
  return c <= ' ' || c >= 0x7f || c == '%' || c == '=';
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string EscapeToken(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    if (NeedsEscape(c)) {
      out += '%';
      out += kHexDigits[c >> 4];
      out += kHexDigits[c & 0xf];
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

Result<uint64_t> ParseU64(std::string_view token, std::string_view what) {
  if (token.empty()) {
    return Status::Corruption("empty number in " + std::string(what));
  }
  uint64_t v = 0;
  for (char c : token) {
    if (c < '0' || c > '9') {
      return Status::Corruption("bad number '" + std::string(token) + "' in " +
                                std::string(what));
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) {
      return Status::Corruption("number '" + std::string(token) +
                                "' overflows uint64 in " + std::string(what));
    }
    v = v * 10 + digit;
  }
  return v;
}

Result<std::string> UnescapeToken(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out += s[i];
      continue;
    }
    if (i + 2 >= s.size()) {
      return Status::InvalidArgument("truncated %-escape in token");
    }
    const int hi = HexValue(s[i + 1]);
    const int lo = HexValue(s[i + 2]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("malformed %-escape in token");
    }
    out += static_cast<char>((hi << 4) | lo);
    i += 2;
  }
  return out;
}

}  // namespace smadb::util
