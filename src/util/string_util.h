// Small string helpers shared across modules.

#ifndef SMADB_UTIL_STRING_UTIL_H_
#define SMADB_UTIL_STRING_UTIL_H_

#include <cstdarg>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace smadb::util {

/// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII upper-casing (locale-independent).
std::string ToUpperAscii(std::string_view s);

/// "1234567" -> "1,234,567" for benchmark table output.
std::string WithThousands(long long v);

/// Human-readable byte size ("33.78 MB").
std::string HumanBytes(double bytes);

/// Percent-encodes whitespace, '%', '=' and non-printable bytes so a token
/// can live inside a whitespace-separated persistence line (superblock,
/// recovery manifest) and round-trip exactly.
std::string EscapeToken(std::string_view s);

/// Inverse of EscapeToken. Malformed escapes fail the parse.
util::Result<std::string> UnescapeToken(std::string_view s);

/// Parses a non-negative decimal integer from a persistence token
/// (manifest, superblock). Exception-free by design — a corrupt file must
/// surface as a Status, never an abort — and rejects empty tokens,
/// non-digits, and values that overflow uint64 (a wrapped number can decode
/// to a plausible small value and corrupt recovery decisions). `what` names
/// the containing structure for the error message.
util::Result<uint64_t> ParseU64(std::string_view token, std::string_view what);

}  // namespace smadb::util

#endif  // SMADB_UTIL_STRING_UTIL_H_
