// Status / Result<T>: exception-free error propagation across the smadb API,
// following the Arrow/RocksDB idiom. Functions that can fail return Status (or
// Result<T> when they produce a value); the hot paths never throw.

#ifndef SMADB_UTIL_STATUS_H_
#define SMADB_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace smadb::util {

/// Error category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIOError = 5,
  kNotSupported = 6,
  kCorruption = 7,
  kInternal = 8,
  kResourceExhausted = 9,
  kCancelled = 10,
  kDeadlineExceeded = 11,
  kDiskFull = 12,
  kUnavailable = 13,
};

/// Human-readable name of a status code ("OK", "Invalid argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Lightweight success/error value. Ok statuses carry no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DiskFull(std::string msg) {
    return Status(StatusCode::kDiskFull, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Value-or-error. Access to the value of a non-ok Result is a programming
/// error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-ok Status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace smadb::util

/// Propagates a non-ok Status from the current function.
#define SMADB_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::smadb::util::Status _st = (expr);      \
    if (!_st.ok()) return _st;               \
  } while (false)

/// Evaluates a Result<T> expression, propagating errors, else binds the value.
#define SMADB_ASSIGN_OR_RETURN(lhs, expr)                 \
  auto SMADB_CONCAT_(_res_, __LINE__) = (expr);           \
  if (!SMADB_CONCAT_(_res_, __LINE__).ok())               \
    return SMADB_CONCAT_(_res_, __LINE__).status();       \
  lhs = std::move(SMADB_CONCAT_(_res_, __LINE__)).value()

#define SMADB_CONCAT_(a, b) SMADB_CONCAT_IMPL_(a, b)
#define SMADB_CONCAT_IMPL_(a, b) a##b

#endif  // SMADB_UTIL_STATUS_H_
