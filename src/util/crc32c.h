// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// page checksum used by the storage layer. Chosen over CRC-32 (IEEE) for its
// better error-detection properties on 4 KiB blocks and because it is the
// checksum real storage engines stamp on pages (RocksDB, LevelDB, ext4
// metadata), so measured overheads transfer.

#ifndef SMADB_UTIL_CRC32C_H_
#define SMADB_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace smadb::util {

/// CRC-32C of `n` bytes at `data`, continuing from `seed` (0 for a fresh
/// checksum). Uses the SSE4.2 crc32 instruction when the CPU has it — with
/// three interleaved lanes for the page-sized hot case, ~8 bytes/cycle, so
/// verifying a 4 KiB page costs well under a microsecond (EXPERIMENTS.md
/// X7) — and falls back to software slicing-by-8 (~1 byte/cycle) elsewhere.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

}  // namespace smadb::util

#endif  // SMADB_UTIL_CRC32C_H_
