#include "util/fault.h"

namespace smadb::util {

std::string_view FaultKindToString(FaultKind k) {
  switch (k) {
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kPermanent:
      return "permanent";
    case FaultKind::kBitFlip:
      return "bit-flip";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kDiskFull:
      return "disk-full";
  }
  return "?";
}

Status InjectedFaultStatus(FaultKind k, std::string_view point) {
  switch (k) {
    case FaultKind::kDiskFull:
      return Status::DiskFull("injected ENOSPC at " + std::string(point));
    case FaultKind::kCrash:
      return Status::IOError("injected crash (kill-point) at " +
                             std::string(point));
    default:
      return Status::IOError("injected fault at " + std::string(point));
  }
}

namespace {

// Durable-path failpoints are poisoned after a simulated crash: once kCrash
// has fired, nothing storage-related may succeed until the driver reopens.
bool IsDurablePoint(std::string_view point) {
  return point.rfind("wal.", 0) == 0 || point.rfind("disk.", 0) == 0 ||
         point.rfind("manifest.", 0) == 0;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_ = seed != 0 ? seed : 1;
}

void FaultInjector::Arm(std::string_view point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  points_[std::string(point)] = Armed{std::move(spec), 0, 0};
  num_armed_.store(points_.size(), std::memory_order_release);
}

void FaultInjector::Disarm(std::string_view point) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.erase(std::string(point));
  num_armed_.store(points_.size(), std::memory_order_release);
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  num_armed_.store(0, std::memory_order_release);
  crashed_.store(false, std::memory_order_release);
}

std::optional<FaultKind> FaultInjector::Hit(std::string_view point,
                                            std::string_view context) {
  if (crashed_.load(std::memory_order_acquire) && IsDurablePoint(point)) {
    return FaultKind::kCrash;
  }
  if (num_armed_.load(std::memory_order_acquire) == 0) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(std::string(point));
  if (it == points_.end()) return std::nullopt;
  Armed& armed = it->second;
  const FaultSpec& spec = armed.spec;
  if (!spec.file_filter.empty() &&
      context.find(spec.file_filter) == std::string_view::npos) {
    return std::nullopt;
  }
  if (armed.skipped < spec.skip) {
    ++armed.skipped;
    return std::nullopt;
  }
  if (spec.count >= 0 &&
      armed.triggered >= static_cast<uint64_t>(spec.count)) {
    return std::nullopt;
  }
  if (spec.probability < 1.0) {
    // xorshift64*: deterministic given Seed(), good enough for schedules.
    rng_ ^= rng_ >> 12;
    rng_ ^= rng_ << 25;
    rng_ ^= rng_ >> 27;
    const double u =
        static_cast<double>((rng_ * 0x2545F4914F6CDD1Dull) >> 11) /
        static_cast<double>(1ull << 53);
    if (u >= spec.probability) return std::nullopt;
  }
  ++armed.triggered;
  if (spec.kind == FaultKind::kCrash) {
    crashed_.store(true, std::memory_order_release);
  }
  return spec.kind;
}

uint64_t FaultInjector::Triggered(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(std::string(point));
  return it == points_.end() ? 0 : it->second.triggered;
}

}  // namespace smadb::util
