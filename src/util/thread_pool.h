// Fixed-size worker pool driving morsel-granular parallelism.
//
// The execution layer hands out *buckets* as work units (the paper's §3.1
// partitioning makes them independently gradable and aggregatable), so the
// scheduling primitive is ParallelFor over a bucket range: workers claim
// the next unprocessed index through one atomic counter — the classic
// morsel-driven work-stealing loop — which self-balances skew from
// disqualified (zero-cost) vs ambivalent (full-fetch) buckets.

#ifndef SMADB_UTIL_THREAD_POOL_H_
#define SMADB_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/query_context.h"
#include "util/status.h"

namespace smadb::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 is allowed: every ParallelFor then
  /// runs inline on the caller).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues one task for any worker.
  void Submit(std::function<void()> task);

  /// Runs `fn(worker, index)` for every index in [begin, end).
  ///
  /// Up to `dop` claimants (the calling thread plus dop-1 pooled workers)
  /// pull indices from a shared atomic counter; each claimant sees a
  /// non-decreasing index sequence, so cursor-based consumers stay
  /// amortized-sequential. `worker` is a stable id in [0, dop) for
  /// indexing per-worker state. Stops claiming after the first error and
  /// returns it. dop <= 1 runs everything inline on the caller.
  ///
  /// `cancel` (optional) is the cooperative stop flag: once it trips, no
  /// further index is claimed — queued work is abandoned, in-flight
  /// invocations finish, and every worker has exited `fn` by the time this
  /// returns (a clean drain; no worker touches caller state afterwards).
  /// When cancellation stopped the loop before completion and no worker
  /// error occurred, the token's own status (kCancelled or
  /// kDeadlineExceeded) is returned.
  util::Status ParallelFor(
      uint64_t begin, uint64_t end, size_t dop,
      const std::function<util::Status(size_t worker, uint64_t index)>& fn,
      const CancelToken* cancel = nullptr);

  /// Process-wide pool shared by all query execution, sized
  /// DefaultDop() - 1 so that pool workers plus the calling thread use
  /// every hardware thread (minimum 1 worker, to exercise concurrency
  /// even on single-core hosts).
  static ThreadPool* Shared();

  /// std::thread::hardware_concurrency(), at least 1.
  static size_t DefaultDop();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace smadb::util

#endif  // SMADB_UTIL_THREAD_POOL_H_
