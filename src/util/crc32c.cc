#include "util/crc32c.h"

#include <array>
#include <cstring>

namespace smadb::util {

namespace {

// Slicing-by-8 lookup tables, built once at first use. Table 0 is the plain
// byte-at-a-time table for the reflected Castagnoli polynomial; table k
// advances a byte that sits k positions deeper in the 8-byte window.
struct Tables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Tables() {
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFF] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

uint32_t CrcSoftware(const uint8_t* p, size_t n, uint32_t crc) {
  const Tables& tb = GetTables();
  while (n >= 8) {
    // Fold 8 bytes at once through the sliced tables.
    const uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                               static_cast<uint32_t>(p[1]) << 8 |
                               static_cast<uint32_t>(p[2]) << 16 |
                               static_cast<uint32_t>(p[3]) << 24);
    crc = tb.t[7][lo & 0xFF] ^ tb.t[6][(lo >> 8) & 0xFF] ^
          tb.t[5][(lo >> 16) & 0xFF] ^ tb.t[4][lo >> 24] ^
          tb.t[3][p[4]] ^ tb.t[2][p[5]] ^ tb.t[1][p[6]] ^ tb.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

#if defined(__x86_64__) && defined(__GNUC__)

// --- SSE4.2 hardware path --------------------------------------------------
//
// The crc32 instruction folds 8 bytes per issue but carries ~3 cycles of
// latency, so one dependency chain runs at ~2.7 bytes/cycle. The hot case —
// one CRC per 4 KiB buffer-pool page against a RAM-speed simulated disk —
// instead splits the page into three lanes, keeps three independent chains
// in flight (~8 bytes/cycle), and merges the lane CRCs at the end.
//
// Merging uses the linearity of the CRC register update: feeding data D to
// a register in state s yields  shift(s, |D|) ^ feed(0, D),  where
// shift(s, L) is the (linear) effect of L zero bytes. For a page split
// A|B|C the final register is therefore
//   shift(feed(seed, A), |B|+|C|) ^ shift(feed(0, B), |C|) ^ feed(0, C)
// and each fixed-length shift operator is tabulated once as four 256-entry
// tables (one per state byte), making the merge eight loads and six xors.

// Lane lengths: A and B carry one extra 8-byte word so three lanes tile
// the 4096-byte page exactly.
inline constexpr size_t kLaneC = 4096 / 3 / 8 * 8;     // 1360
inline constexpr size_t kLaneA = (4096 - kLaneC) / 2;  // 1368
static_assert(kLaneA * 2 + kLaneC == 4096);
static_assert(kLaneA == kLaneC + 8);

/// The linear operator "advance the CRC register over `len` zero bytes",
/// tabulated per state byte.
struct ZeroShift {
  std::array<std::array<uint32_t, 256>, 4> t;

  explicit ZeroShift(size_t len) {
    const Tables& tb = GetTables();
    for (size_t b = 0; b < 4; ++b) {
      for (uint32_t v = 0; v < 256; ++v) {
        uint32_t s = v << (8 * b);
        for (size_t i = 0; i < len; ++i) {
          s = tb.t[0][s & 0xFF] ^ (s >> 8);
        }
        t[b][v] = s;
      }
    }
  }

  uint32_t Apply(uint32_t s) const {
    return t[0][s & 0xFF] ^ t[1][(s >> 8) & 0xFF] ^ t[2][(s >> 16) & 0xFF] ^
           t[3][s >> 24];
  }
};

const ZeroShift& ShiftOverBC() {
  static const ZeroShift shift(kLaneA + kLaneC);  // |B| + |C|
  return shift;
}
const ZeroShift& ShiftOverC() {
  static const ZeroShift shift(kLaneC);
  return shift;
}

__attribute__((target("sse4.2"))) uint32_t CrcHwStream(const uint8_t* p,
                                                       size_t n,
                                                       uint32_t crc) {
  uint64_t c = crc;
  while (n >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    c = __builtin_ia32_crc32di(c, v);
    p += 8;
    n -= 8;
  }
  uint32_t s = static_cast<uint32_t>(c);
  while (n-- > 0) {
    s = __builtin_ia32_crc32qi(s, *p++);
  }
  return s;
}

__attribute__((target("sse4.2"))) uint32_t CrcHwPage(const uint8_t* p,
                                                     uint32_t crc) {
  const uint8_t* a = p;
  const uint8_t* b = p + kLaneA;
  const uint8_t* c = p + 2 * kLaneA;
  uint64_t ca = crc, cb = 0, cc = 0;
  for (size_t i = 0; i < kLaneC; i += 8) {
    uint64_t va, vb, vc;
    std::memcpy(&va, a + i, 8);
    std::memcpy(&vb, b + i, 8);
    std::memcpy(&vc, c + i, 8);
    ca = __builtin_ia32_crc32di(ca, va);
    cb = __builtin_ia32_crc32di(cb, vb);
    cc = __builtin_ia32_crc32di(cc, vc);
  }
  // Lanes A and B are one word longer than C.
  uint64_t va, vb;
  std::memcpy(&va, a + kLaneC, 8);
  std::memcpy(&vb, b + kLaneC, 8);
  ca = __builtin_ia32_crc32di(ca, va);
  cb = __builtin_ia32_crc32di(cb, vb);
  return ShiftOverBC().Apply(static_cast<uint32_t>(ca)) ^
         ShiftOverC().Apply(static_cast<uint32_t>(cb)) ^
         static_cast<uint32_t>(cc);
}

bool HaveSse42() {
  static const bool have = __builtin_cpu_supports("sse4.2");
  return have;
}

#endif  // __x86_64__ && __GNUC__

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint32_t crc = ~seed;
#if defined(__x86_64__) && defined(__GNUC__)
  if (HaveSse42()) {
    return ~(n == 4096 ? CrcHwPage(p, crc) : CrcHwStream(p, n, crc));
  }
#endif
  return ~CrcSoftware(p, n, crc);
}

}  // namespace smadb::util
