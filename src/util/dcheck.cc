#include "util/dcheck.h"

#include <cstdio>
#include <cstdlib>

namespace smadb::util::internal {

void DcheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "%s:%d: DCHECK failed: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace smadb::util::internal
