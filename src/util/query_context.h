// Per-query runtime governor: cooperative cancellation, deadlines, and
// hierarchical memory budgets (DESIGN.md §10).
//
// The paper's headline claim is *predictable* latency; this file supplies
// the control plane that keeps it predictable under adversarial load. A
// QueryContext is threaded through the operator tree (Operator::
// BindContext) and consulted at bucket/batch granularity:
//
//   * CancelToken — one atomic flag (user cancel) plus an optional
//     steady-clock deadline (`set timeout_ms = <n>`). Operators call
//     Check() between buckets/batches; ParallelFor stops scheduling new
//     morsels once the token trips and drains the in-flight ones cleanly.
//   * MemoryTracker — byte budgets arranged global → query. GroupTable,
//     ColumnBatch, sort/build buffers, and BufferPool pins charge their
//     component; exceeding a budget yields kResourceExhausted with a
//     structured breakdown naming the offender, never an OOM kill.
//
// Everything is null-safe through the static helpers: an unbound operator
// (ctx == nullptr) runs ungoverned, which keeps every pre-existing call
// site and benchmark bit-identical.
//
// Failpoints (util/fault.h): "governor.cancel" fires inside CancelToken::
// Check (context = the checkpoint name) and delivers a cancellation at that
// exact point — how tests script "cancel arrives mid-retry".
// "governor.charge" fires inside MemoryTracker::TryCharge (context = the
// component) and simulates budget exhaustion — "budget exhausted mid-merge".

#ifndef SMADB_UTIL_QUERY_CONTEXT_H_
#define SMADB_UTIL_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace smadb::obs {
class QueryProfile;  // obs/profile.h — util stays below obs in the layering
}

namespace smadb::util {

/// Cooperative cancellation: a thread-safe flag + optional deadline.
/// Cancel() may be called from any thread at any time; workers observe it
/// at their next checkpoint.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Trips the token (user cancel). Idempotent, thread-safe.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  /// Arms the deadline `timeout` from now; zero/negative trips immediately.
  void SetTimeout(std::chrono::milliseconds timeout) {
    SetDeadline(std::chrono::steady_clock::now() + timeout);
  }
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_release);
  }
  /// Disarms the deadline (the governor's grace period for a cheap
  /// degraded answer after expiry). User cancellation stays in force.
  void ClearDeadline() { deadline_ns_.store(0, std::memory_order_release); }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_acquire);
  }
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_acquire) != 0;
  }
  bool deadline_expired() const {
    const int64_t d = deadline_ns_.load(std::memory_order_acquire);
    return d != 0 &&
           std::chrono::steady_clock::now().time_since_epoch().count() >= d;
  }

  /// One relaxed load + (when a deadline is armed) one clock read — cheap
  /// enough for bucket/batch granularity. True once the query should stop.
  bool ShouldStop() const { return cancel_requested() || deadline_expired(); }

  /// The checkpoint operators call between buckets/batches: OK while the
  /// query may proceed, kCancelled / kDeadlineExceeded naming `where`
  /// otherwise. Consults the "governor.cancel" failpoint (context =
  /// `where`) so tests can deliver a cancel at an exact site.
  Status Check(std::string_view where) const;

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{0};  // steady_clock ns since epoch; 0=off
};

/// Hierarchical byte budget (global → query). Charges flow child → parent;
/// either level rejecting yields kResourceExhausted with a per-component
/// breakdown. Thread-safe: parallel workers charge concurrently.
class MemoryTracker {
 public:
  /// `limit_bytes` 0 = unlimited (track only). `parent` may be null.
  MemoryTracker(std::string name, size_t limit_bytes,
                MemoryTracker* parent = nullptr)
      : name_(std::move(name)), limit_(limit_bytes), parent_(parent) {}

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  /// Releases anything still charged against the parent.
  ~MemoryTracker() { ReleaseAll(); }

  /// Attempts to charge `bytes` to `component` ("GroupTable",
  /// "ColumnBatch", ...). On rejection nothing is charged anywhere and the
  /// status names the component plus the full breakdown. Consults the
  /// "governor.charge" failpoint (context = `component`).
  Status TryCharge(size_t bytes, std::string_view component);

  /// Returns `bytes` of `component`'s charge (never below zero).
  void Release(size_t bytes, std::string_view component);

  /// Drops every charge (and returns it to the parent). Used between rungs
  /// of the degradation ladder so a rerun starts from a clean slate.
  void ReleaseAll();

  const std::string& name() const { return name_; }
  size_t limit() const { return limit_; }
  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }

  /// "query used=12.3 KB limit=8.0 KB (GroupTable=10.1 KB, sort=2.2 KB)".
  std::string Breakdown() const;

 private:
  const std::string name_;
  const size_t limit_;
  MemoryTracker* const parent_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
  mutable std::mutex mu_;                      // guards by_component_
  std::map<std::string, size_t> by_component_;
};

/// The per-query control plane handed to the operator tree. Owns the
/// query's CancelToken (unless an external one is attached for cross-thread
/// cancellation) and its MemoryTracker (parented to the database's global
/// tracker). Also accumulates the degradation decisions the planner takes,
/// for the plan explanation.
class QueryContext {
 public:
  /// Ungoverned context: no deadline, unlimited memory.
  QueryContext() : QueryContext(nullptr, 0) {}

  /// `global_memory` may be null; `memory_limit_bytes` 0 = unlimited.
  /// `cancel` lets a caller cancel from another thread; a private token is
  /// created when null.
  QueryContext(MemoryTracker* global_memory, size_t memory_limit_bytes,
               std::shared_ptr<CancelToken> cancel = nullptr)
      : owned_cancel_(cancel != nullptr ? std::move(cancel)
                                        : std::make_shared<CancelToken>()),
        memory_("query", memory_limit_bytes, global_memory) {}

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  CancelToken* cancel() { return owned_cancel_.get(); }
  const CancelToken* cancel() const { return owned_cancel_.get(); }
  /// The shared handle to the query's token — what the live-query registry
  /// keeps so `kill query <id>` stays safe even if the query finishes
  /// while the killer still holds the snapshot.
  std::shared_ptr<CancelToken> shared_cancel() const { return owned_cancel_; }
  MemoryTracker* memory() { return &memory_; }

  /// Request-scoped trace id (DESIGN.md §16): minted by net::Server per
  /// request or supplied by the client via the `trace <hex>` statement
  /// prefix; 0 = no request scope. Set once before execution starts.
  void set_trace_id(uint64_t id) { trace_id_ = id; }
  uint64_t trace_id() const { return trace_id_; }

  /// Attaches the query's execution profile (`explain analyze`; DESIGN.md
  /// §11). Carried as an opaque pointer so util stays below obs in the
  /// layering; operators and the planner feed it through obs/profile.h.
  /// Null (the default) means unprofiled — every feed site is one branch.
  void set_profile(obs::QueryProfile* profile) { profile_ = profile; }
  obs::QueryProfile* profile() const { return profile_; }

  /// Arms the session deadline (and records it for explanations); 0 = none.
  void set_timeout_ms(uint64_t ms) {
    timeout_ms_ = ms;
    if (ms > 0) {
      owned_cancel_->SetTimeout(
          std::chrono::milliseconds(static_cast<int64_t>(ms)));
    }
  }
  uint64_t timeout_ms() const { return timeout_ms_; }

  /// Records a degradation decision ("demoted to row mode: ...").
  void NoteDegradation(std::string note);
  /// All decisions so far, "; "-joined (empty when none).
  std::string DegradationNotes() const;

  /// Between degradation rungs: drops all memory charges and lifts the
  /// deadline so the cheaper rerun gets a grace budget. User cancellation
  /// stays armed.
  void BeginDegradedRun(std::string note);

  /// "deadline=50ms, memory_limit=1.0 MB" — the explanation suffix; empty
  /// for a fully ungoverned context.
  std::string GovernorNote() const;

  // --- null-safe helpers (ctx == nullptr means ungoverned) -----------------

  /// Cooperative checkpoint; OK when `ctx` is null.
  static Status Check(const QueryContext* ctx, std::string_view where) {
    if (ctx == nullptr) return Status::OK();
    return ctx->owned_cancel_->Check(where);
  }

  /// Charges the query budget; OK when `ctx` is null.
  static Status Charge(QueryContext* ctx, size_t bytes,
                       std::string_view component) {
    if (ctx == nullptr || bytes == 0) return Status::OK();
    return ctx->memory_.TryCharge(bytes, component);
  }

 private:
  std::shared_ptr<CancelToken> owned_cancel_;
  MemoryTracker memory_;
  obs::QueryProfile* profile_ = nullptr;
  uint64_t trace_id_ = 0;
  uint64_t timeout_ms_ = 0;
  mutable std::mutex mu_;  // guards degradations_
  std::vector<std::string> degradations_;
};

/// Human-readable byte count ("1.5 MB") for budget diagnostics.
std::string FormatBytes(size_t bytes);

}  // namespace smadb::util

#endif  // SMADB_UTIL_QUERY_CONTEXT_H_
