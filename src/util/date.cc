#include "util/date.h"

#include <cstdio>

namespace smadb::util {

namespace {

// Days from 1970-01-01 to year/month/day, Howard Hinnant's
// days_from_civil (http://howardhinnant.github.io/date_algorithms.html).
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* year, int* month, int* day) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                    // [1, 12]
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

bool IsLeap(int y) { return y % 4 == 0 && (y % 100 != 0 || y % 400 == 0); }

int DaysInMonth(int y, int m) {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (m == 2 && IsLeap(y)) return 29;
  return kDays[m - 1];
}

}  // namespace

Date Date::FromYmd(int year, int month, int day) {
  return Date(static_cast<int32_t>(DaysFromCivil(year, month, day)));
}

Result<Date> Date::Parse(std::string_view text) {
  // Expect exactly "YYYY-MM-DD".
  if (text.size() != 10 || text[4] != '-' || text[7] != '-') {
    return Status::InvalidArgument("date must be YYYY-MM-DD: '" +
                                   std::string(text) + "'");
  }
  auto digits = [&](size_t pos, size_t len, int* out) {
    int v = 0;
    for (size_t i = pos; i < pos + len; ++i) {
      if (text[i] < '0' || text[i] > '9') return false;
      v = v * 10 + (text[i] - '0');
    }
    *out = v;
    return true;
  };
  int y, m, d;
  if (!digits(0, 4, &y) || !digits(5, 2, &m) || !digits(8, 2, &d)) {
    return Status::InvalidArgument("date has non-digit characters: '" +
                                   std::string(text) + "'");
  }
  if (m < 1 || m > 12 || d < 1 || d > DaysInMonth(y, m)) {
    return Status::InvalidArgument("impossible calendar date: '" +
                                   std::string(text) + "'");
  }
  return Date::FromYmd(y, m, d);
}

void Date::ToYmd(int* year, int* month, int* day) const {
  CivilFromDays(days_, year, month, day);
}

int Date::year() const {
  int y, m, d;
  ToYmd(&y, &m, &d);
  return y;
}

int Date::month() const {
  int y, m, d;
  ToYmd(&y, &m, &d);
  return m;
}

int Date::day() const {
  int y, m, d;
  ToYmd(&y, &m, &d);
  return d;
}

std::string Date::ToString() const {
  int y, m, d;
  ToYmd(&y, &m, &d);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

}  // namespace smadb::util
