#include "util/value.h"

namespace smadb::util {

std::string_view TypeIdToString(TypeId t) {
  switch (t) {
    case TypeId::kInt32:
      return "int32";
    case TypeId::kInt64:
      return "int64";
    case TypeId::kDouble:
      return "double";
    case TypeId::kDecimal:
      return "decimal";
    case TypeId::kDate:
      return "date";
    case TypeId::kString:
      return "string";
  }
  return "unknown";
}

double Value::ToDoubleLossy() const {
  switch (type_) {
    case TypeId::kDouble:
      return dbl_;
    case TypeId::kDecimal:
      return Decimal(num_).ToDouble();
    case TypeId::kString:
      assert(false && "string has no numeric view");
      return 0.0;
    default:
      return static_cast<double>(num_);
  }
}

std::strong_ordering Value::Compare(const Value& other) const {
  if (type_ == TypeId::kString || other.type_ == TypeId::kString) {
    assert(type_ == TypeId::kString && other.type_ == TypeId::kString);
    const int c = str_.compare(other.str_);
    if (c < 0) return std::strong_ordering::less;
    if (c > 0) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }
  if (type_ == TypeId::kDouble || other.type_ == TypeId::kDouble) {
    const double a = ToDoubleLossy();
    const double b = other.ToDoubleLossy();
    if (a < b) return std::strong_ordering::less;
    if (a > b) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }
  assert(type_ == other.type_ && "cross-type integral comparison");
  if (num_ < other.num_) return std::strong_ordering::less;
  if (num_ > other.num_) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::string Value::ToString() const {
  switch (type_) {
    case TypeId::kInt32:
    case TypeId::kInt64:
      return std::to_string(num_);
    case TypeId::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", dbl_);
      return buf;
    }
    case TypeId::kDecimal:
      return Decimal(num_).ToString();
    case TypeId::kDate:
      return Date(static_cast<int32_t>(num_)).ToString();
    case TypeId::kString:
      return str_;
  }
  return "?";
}

}  // namespace smadb::util
