// net::Server — the hardened network serving layer (DESIGN.md §15).
//
// The engine underneath (sessions, latches, governor, WAL) is built to
// degrade gracefully; this file gives the TCP surface the same treatment.
// One poll()-driven I/O thread owns every socket and all connection state;
// a bounded worker pool executes one request at a time per connection.
// There are no detached threads anywhere: Start() spawns, Shutdown() joins.
//
// Per-connection lifecycle robustness:
//   * bounded input: a request line longer than max_line_bytes yields a
//     typed `ERR request too long` and the overflow is discarded — the
//     buffer can never grow past max_line_bytes + one recv chunk;
//   * read/idle deadline: a connection silent for idle_timeout_ms is sent
//     `ERR idle timeout` (best effort) and closed;
//   * write deadline with backpressure: responses are streamed with
//     block-with-deadline semantics — a reader that stops draining stalls
//     its own connection only, and past write_timeout_ms it is
//     disconnected. Nothing is ever queued unboundedly;
//   * dead-client cancellation: while a request is in flight the I/O
//     thread keeps polling the socket for hangup (POLLRDHUP/POLLERR); a
//     vanished client trips the request's CancelToken, so its query dies
//     at the next governor checkpoint instead of running to completion;
//   * connection cap: accepts beyond max_connections are shed at accept
//     time with `ERR busy` (an AdmissionController with a zero-depth
//     queue — the same shed-don't-hang semantics queries get);
//   * graceful drain: RequestShutdown() (async-signal-safe) stops the
//     accept loop, closes idle connections with `ERR server draining`,
//     lets in-flight requests finish until drain_timeout_ms, then cancels
//     their tokens and shuts the sockets down. Shutdown() joins every
//     thread and (by default) checkpoints the database via Close().
//
// Chaos failpoints (util/fault.h): "net.accept", "net.recv", "net.send"
// fire at the corresponding syscall sites so tests can kill sockets
// mid-request deterministically. Partial writes, EINTR, and EPIPE are
// handled on every path (sends use MSG_NOSIGNAL; no SIGPIPE anywhere).
//
// Protocol (newline-delimited text, one statement per line):
//   select/explain/show/scrub/trace...
//                      -> result table lines, then `OK`
//   other statements   -> `OK` or `ERR <message>`
//   ping               -> `OK`
//   health             -> one status line (read_only/draining/sessions/
//                         connections), then `OK`
//   quit (or EOF)      -> connection closes
// Error lines are typed: `ERR busy`, `ERR request too long`,
// `ERR idle timeout`, `ERR server draining`, `ERR <engine status>`.
//
// Telemetry plane (DESIGN.md §16): every query request carries a 64-bit
// trace id — taken from a client-supplied `trace <hex>` statement prefix
// or minted here — that shows up in the structured request log, in every
// TraceSpan the query records, and in its profile. A second in-loop HTTP
// listener serves GET /metrics, /healthz, /statusz, /debug/queries and
// /debug/trace for scrapers and humans; it is deliberately outside
// max_connections so a saturated server can still be observed, and it
// keeps answering (/healthz says "draining", 503) during drain.

#ifndef SMADB_NET_SERVER_H_
#define SMADB_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "db/admission.h"
#include "db/database.h"
#include "db/session.h"
#include "obs/metrics.h"
#include "util/query_context.h"
#include "util/status.h"

namespace smadb::net {

struct ServerOptions {
  /// Listen address (IPv4 dotted quad). Loopback by default — this is an
  /// analytics engine, not an internet-facing daemon.
  std::string host = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port; Server::port() reports the bound
  /// one (how tests avoid fixed-port collisions).
  uint16_t port = 7878;
  int listen_backlog = 64;
  /// Bounded pool executing requests; also the max number of concurrently
  /// running requests (one per connection at a time).
  size_t worker_threads = 4;
  /// Connections beyond this are shed at accept time with `ERR busy`;
  /// 0 = unbounded.
  size_t max_connections = 64;
  /// Longest accepted request line; longer ones get `ERR request too long`
  /// and the excess is discarded up to the next newline.
  size_t max_line_bytes = 64 * 1024;
  /// Close connections silent for this long (`ERR idle timeout`); 0 = off.
  int64_t idle_timeout_ms = 300'000;
  /// Per-response send budget: a reader that stops draining its socket is
  /// disconnected after blocking a worker this long; 0 = block forever.
  int64_t write_timeout_ms = 10'000;
  /// Drain budget: in-flight requests get this long to finish after
  /// RequestShutdown() before their cancel tokens trip.
  int64_t drain_timeout_ms = 5'000;
  /// Checkpoint (Database::Close) at the end of Shutdown(), so SIGTERM
  /// leaves a clean directory that recovery replays nothing from.
  bool checkpoint_on_drain = true;
  /// When > 0, shrink each accepted socket's kernel send buffer
  /// (SO_SNDBUF). A chaos-test hook: with a few-KiB buffer a stalled
  /// reader trips the write deadline on modest results instead of needing
  /// megabytes in flight. 0 = kernel default.
  int sndbuf_bytes = 0;
  /// Per-connection connect/close lines at INFO instead of DEBUG (the
  /// example binary's -v; all connection logging goes through the
  /// database's structured Logger).
  bool verbose = false;

  // --- telemetry plane (DESIGN.md §16) -------------------------------------
  /// Serve the embedded HTTP observability endpoint (GET /metrics,
  /// /healthz, /statusz, /debug/queries, /debug/trace) on a second
  /// listener inside the same poll loop. Out-of-band by construction: HTTP
  /// connections are not subject to max_connections, so a server saturated
  /// with query traffic can still be scraped.
  bool enable_http = true;
  /// HTTP port; 0 = kernel-assigned ephemeral (see http_port()).
  uint16_t http_port = 0;
  /// Hard cap on concurrent HTTP connections (scrapers are few; anything
  /// past the cap is closed without a response).
  size_t http_max_connections = 16;
  /// Per-HTTP-request budget: a connection that has neither delivered a
  /// full request nor drained its response within this window is closed.
  int64_t http_timeout_ms = 5'000;
};

/// Lifetime: construct, Start(), [serve...], Shutdown() (or let the
/// destructor call it). The Database must outlive the Server. All public
/// methods except RequestShutdown() must be called from one controlling
/// thread (main); RequestShutdown() may be called from any thread or from
/// a signal handler.
class Server {
 public:
  Server(db::Database* db, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the I/O thread plus the worker pool.
  util::Status Start();

  /// The bound port (after Start(); useful with options.port == 0).
  uint16_t port() const { return port_; }

  /// The bound HTTP observability port (0 when enable_http is false).
  uint16_t http_port() const { return http_port_; }

  /// Flags the server to drain. Async-signal-safe: one atomic store plus a
  /// self-pipe write. Returns immediately; pair with Wait()/Shutdown().
  void RequestShutdown();

  /// Blocks until the I/O loop has fully drained (all connections closed,
  /// all requests finished or cancelled). Does not join threads.
  void Wait();

  /// Drains (if not already draining) and joins every thread, then
  /// checkpoints the database (options.checkpoint_on_drain). Idempotent.
  util::Status Shutdown();

  /// Live connection count (gauge view for tests and `health`).
  size_t connections_active() const {
    return connections_active_.load(std::memory_order_acquire);
  }

  /// Monotonic totals for tests (mirrored into the metrics registry as
  /// smadb_net_*).
  struct Stats {
    uint64_t connections_total = 0;
    uint64_t requests_total = 0;
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
    uint64_t shed = 0;            ///< accepts refused with `ERR busy`
    uint64_t overflows = 0;       ///< lines refused with `ERR request too long`
    uint64_t idle_timeouts = 0;   ///< connections closed for silence
    uint64_t write_timeouts = 0;  ///< connections dropped mid-send
    uint64_t peer_disconnect_cancels = 0;  ///< queries cancelled, client gone
    uint64_t drain_cancels = 0;   ///< queries cancelled at the drain deadline
    uint64_t http_requests = 0;   ///< HTTP observability requests served
  };
  Stats stats() const;

 private:
  struct Conn;
  struct HttpConn;
  /// Connection table + drain state. Lives on the IoLoop stack and is
  /// touched only by the I/O thread — no locking by construction.
  struct IoState;

  // --- I/O thread ----------------------------------------------------------
  void IoLoop();
  void HandleAccept();
  /// Reads what the socket has, enforces the line cap, and dispatches at
  /// most one request (per-connection serialization). Returns false when
  /// the connection should close now.
  bool HandleReadable(Conn* c);
  /// Parses the next complete line out of c->in and dispatches it (or
  /// handles it inline: quit). Returns false to close the connection.
  bool PumpRequests(Conn* c);
  void DispatchToWorker(Conn* c);
  void CloseConn(int fd, const char* why);
  /// Best-effort, non-blocking single send for I/O-thread-side typed
  /// errors (`ERR busy`, `ERR idle timeout`, `ERR server draining`).
  void TrySendLine(int fd, const char* line);
  void EnterDrain();

  // --- HTTP observability endpoint (I/O thread only) -----------------------
  void HandleHttpAccept();
  /// Advances one HTTP connection (read request / write response). Returns
  /// false when the connection should close now.
  bool HandleHttp(HttpConn* hc, short revents);
  void CloseHttpConn(int fd);
  /// Routes one parsed request to its handler and returns the full HTTP
  /// response bytes.
  std::string RouteHttp(std::string_view method, std::string_view path);
  /// Mints a fresh nonzero request trace id.
  uint64_t MintTraceId();

  // --- worker pool ---------------------------------------------------------
  void WorkerLoop();
  void ProcessRequest(Conn* c);
  /// Streams `data` with MSG_NOSIGNAL, EINTR/partial-write handling, and
  /// block-with-deadline backpressure. False = send failed / timed out
  /// (the connection is marked for close).
  bool SendAll(Conn* c, const std::string& data);
  bool SendLine(Conn* c, const std::string& line);

  db::Database* const db_;
  const ServerOptions options_;
  db::AdmissionController conn_admission_;  // shed-at-accept, queue depth 0

  int listener_ = -1;
  uint16_t port_ = 0;
  int http_listener_ = -1;
  uint16_t http_port_ = 0;
  std::atomic<uint64_t> trace_counter_{0};
  uint64_t trace_seed_ = 0;      // mixed into minted trace ids (set at Start)
  int wake_pipe_[2] = {-1, -1};  // [0] read (I/O thread), [1] write (anyone)
  IoState* io_ = nullptr;        // valid only while IoLoop runs

  std::thread io_thread_;
  std::vector<std::thread> workers_;

  // Worker queue: connections with a parsed request waiting for a worker.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Conn*> queue_;
  bool workers_stop_ = false;

  // Completions: workers hand connections back to the I/O thread here.
  std::mutex done_mu_;
  std::deque<Conn*> done_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> drained_{false};
  bool joined_ = false;  // controlling thread only
  std::mutex drained_mu_;
  std::condition_variable drained_cv_;

  std::atomic<size_t> connections_active_{0};
  std::atomic<uint64_t> next_conn_id_{1};

  // Stats mirrors (atomics so tests can read while the server runs).
  struct {
    std::atomic<uint64_t> connections_total{0};
    std::atomic<uint64_t> requests_total{0};
    std::atomic<uint64_t> bytes_in{0};
    std::atomic<uint64_t> bytes_out{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<uint64_t> overflows{0};
    std::atomic<uint64_t> idle_timeouts{0};
    std::atomic<uint64_t> write_timeouts{0};
    std::atomic<uint64_t> peer_disconnect_cancels{0};
    std::atomic<uint64_t> drain_cancels{0};
    std::atomic<uint64_t> http_requests{0};
  } n_;

  // Registry instruments (always registered; the registry outlives us
  // because the Database does).
  struct {
    obs::Gauge* connections_active = nullptr;
    obs::Counter* connections_total = nullptr;
    obs::Counter* requests_total = nullptr;
    obs::Counter* bytes_in = nullptr;
    obs::Counter* bytes_out = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* overflows = nullptr;
    obs::Counter* idle_timeouts = nullptr;
    obs::Counter* write_timeouts = nullptr;
    obs::Counter* peer_cancels = nullptr;
    obs::Counter* http_requests = nullptr;
    obs::Histogram* request_latency_us = nullptr;
  } m_;
};

}  // namespace smadb::net

#endif  // SMADB_NET_SERVER_H_
