#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/fault.h"
#include "util/string_util.h"

// POLLRDHUP (peer shut down its write side) is the hangup signal that lets
// the I/O thread notice a dead client *while a request is in flight* —
// plain POLLHUP only fires after both directions are gone. Linux-specific;
// on platforms without it the fallback is "no early cancel", never a miss:
// the send path still detects the death via EPIPE.
#ifndef POLLRDHUP
#define POLLRDHUP 0
#endif

namespace smadb::net {

using util::Status;

namespace {

using Clock = std::chrono::steady_clock;

bool IsQuery(const std::string& line) {
  return line.rfind("select", 0) == 0 || line.rfind("explain", 0) == 0;
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("fcntl O_NONBLOCK: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

/// Per-connection state. Owned by the I/O thread; a worker borrows the
/// connection between dispatch (queue_mu_ hand-off) and completion
/// (done_mu_ hand-back), so plain fields are safely published by the queue
/// mutexes. The few fields both sides touch concurrently — the hangup flag
/// the I/O thread raises mid-request and the send-failure flag the worker
/// raises mid-send — are atomics.
struct Server::Conn {
  int fd = -1;
  uint64_t id = 0;
  std::unique_ptr<db::Session> session;
  db::AdmissionController::Slot slot;  // one max_connections unit

  /// Input buffer. Bounded: PumpRequests() tips anything growing past
  /// max_line_bytes without a newline into discard mode, so the high-water
  /// mark is max_line_bytes + one recv chunk.
  std::string in;
  bool discarding = false;  ///< dropping an oversized line up to its '\n'

  bool running = false;     ///< a request is on (or queued for) a worker
  std::string request;      ///< the line being executed
  bool oversized = false;   ///< respond `ERR request too long` instead
  /// Fresh token per request; the I/O thread cancels it when the peer
  /// vanishes or the drain deadline fires.
  std::shared_ptr<util::CancelToken> token;
  Clock::time_point dispatched_at{};

  Clock::time_point last_activity{};

  std::atomic<bool> peer_gone{false};    ///< hangup seen while running
  std::atomic<bool> send_failed{false};  ///< response truncated: must close
};

struct Server::IoState {
  std::map<int, std::unique_ptr<Conn>> conns;
  bool draining = false;
  bool drain_fired = false;  ///< drain deadline passed; tokens cancelled
  Clock::time_point drain_deadline{};
};

Server::Server(db::Database* db, ServerOptions options)
    : db_(db),
      options_(std::move(options)),
      conn_admission_([this] {
        db::AdmissionController::Options o;
        o.max_concurrent = options_.max_connections;
        o.max_queued = 0;  // shed at accept time, never queue a connection
        o.max_wait = std::chrono::milliseconds(0);
        return o;
      }()) {
  obs::MetricsRegistry* r = db_->metrics();
  m_.connections_active = r->GetGauge("smadb_net_connections_active",
                                      "Open client connections");
  m_.connections_total =
      r->GetCounter("smadb_net_connections_total", "Connections accepted");
  m_.requests_total =
      r->GetCounter("smadb_net_requests_total", "Request lines served");
  m_.bytes_in = r->GetCounter("smadb_net_bytes_in_total",
                              "Bytes received from clients");
  m_.bytes_out =
      r->GetCounter("smadb_net_bytes_out_total", "Bytes sent to clients");
  m_.shed = r->GetCounter("smadb_net_shed_total",
                          "Connections refused with ERR busy at the cap");
  m_.overflows = r->GetCounter(
      "smadb_net_overflow_total",
      "Request lines refused with ERR request too long");
  m_.idle_timeouts = r->GetCounter("smadb_net_idle_timeouts_total",
                                   "Connections closed for idleness");
  m_.write_timeouts = r->GetCounter(
      "smadb_net_write_timeouts_total",
      "Connections dropped after a response send stalled past the deadline");
  m_.peer_cancels = r->GetCounter(
      "smadb_net_peer_disconnect_cancels_total",
      "In-flight queries cancelled because the client vanished");
  m_.request_latency_us = r->GetHistogram(
      "smadb_net_request_latency_us",
      "Dispatch-to-response-sent request latency (microseconds)");
}

Server::~Server() { (void)Shutdown(); }

Status Server::Start() {
  if (started_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already started");
  }
  listener_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listener_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listener_);
    listener_ = -1;
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listener_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listener_, options_.listen_backlog) < 0) {
    const Status st =
        Status::IOError(std::string("bind/listen: ") + std::strerror(errno));
    ::close(listener_);
    listener_ = -1;
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listener_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  if (Status st = SetNonBlocking(listener_); !st.ok()) {
    ::close(listener_);
    listener_ = -1;
    return st;
  }
  if (::pipe(wake_pipe_) < 0) {
    ::close(listener_);
    listener_ = -1;
    return Status::IOError(std::string("pipe: ") + std::strerror(errno));
  }
  (void)SetNonBlocking(wake_pipe_[0]);
  (void)SetNonBlocking(wake_pipe_[1]);

  started_.store(true, std::memory_order_release);
  io_thread_ = std::thread(&Server::IoLoop, this);
  const size_t n_workers = options_.worker_threads > 0
                               ? options_.worker_threads
                               : size_t{1};
  workers_.reserve(n_workers);
  for (size_t i = 0; i < n_workers; ++i) {
    workers_.emplace_back(&Server::WorkerLoop, this);
  }
  return Status::OK();
}

void Server::RequestShutdown() {
  stop_requested_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    const char b = 'q';
    // write() is async-signal-safe; the pipe is non-blocking and a full
    // pipe already guarantees a pending wakeup.
    [[maybe_unused]] ssize_t ignored = ::write(wake_pipe_[1], &b, 1);
  }
}

void Server::Wait() {
  if (!started_.load(std::memory_order_acquire)) return;
  std::unique_lock<std::mutex> lock(drained_mu_);
  drained_cv_.wait(lock,
                   [this] { return drained_.load(std::memory_order_acquire); });
}

Status Server::Shutdown() {
  if (!started_.load(std::memory_order_acquire)) return Status::OK();
  RequestShutdown();
  Wait();
  if (!joined_) {
    joined_ = true;
    io_thread_.join();
    for (std::thread& w : workers_) w.join();
    workers_.clear();
    if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
    if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
    wake_pipe_[0] = wake_pipe_[1] = -1;
  }
  if (options_.checkpoint_on_drain) return db_->Close();
  return Status::OK();
}

Server::Stats Server::stats() const {
  Stats s;
  s.connections_total = n_.connections_total.load(std::memory_order_relaxed);
  s.requests_total = n_.requests_total.load(std::memory_order_relaxed);
  s.bytes_in = n_.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = n_.bytes_out.load(std::memory_order_relaxed);
  s.shed = n_.shed.load(std::memory_order_relaxed);
  s.overflows = n_.overflows.load(std::memory_order_relaxed);
  s.idle_timeouts = n_.idle_timeouts.load(std::memory_order_relaxed);
  s.write_timeouts = n_.write_timeouts.load(std::memory_order_relaxed);
  s.peer_disconnect_cancels =
      n_.peer_disconnect_cancels.load(std::memory_order_relaxed);
  s.drain_cancels = n_.drain_cancels.load(std::memory_order_relaxed);
  return s;
}

// --- I/O thread ------------------------------------------------------------

void Server::IoLoop() {
  IoState state;
  io_ = &state;

  for (;;) {
    // 1. Completions: workers handed these connections back.
    std::deque<Conn*> done;
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      done.swap(done_);
    }
    for (Conn* c : done) {
      c->running = false;
      c->oversized = false;
      c->token.reset();
      c->last_activity = Clock::now();
      m_.request_latency_us->Observe(
          std::chrono::duration_cast<std::chrono::microseconds>(
              c->last_activity - c->dispatched_at)
              .count());
      const bool broken = c->send_failed.load(std::memory_order_acquire) ||
                          c->peer_gone.load(std::memory_order_acquire);
      bool close = broken || state.draining;
      if (!close && !PumpRequests(c)) close = true;
      if (close) {
        // A request that completes during drain gets the same notice the
        // idle connections got in EnterDrain(). Without this, a connection
        // whose worker finished after EnterDrain() swept the idle set would
        // be closed silently.
        if (state.draining && !broken) {
          TrySendLine(c->fd, "ERR server draining");
        }
        CloseConn(c->fd, "done");
      }
    }

    // 2. Drain entry / exit.
    if (stop_requested_.load(std::memory_order_acquire) && !state.draining) {
      EnterDrain();
    }
    if (state.draining && state.conns.empty()) break;
    if (state.draining && !state.drain_fired &&
        Clock::now() >= state.drain_deadline) {
      // Deadline: cancel every in-flight query and fail any blocked send,
      // so workers come home promptly. Connections close at completion.
      state.drain_fired = true;
      for (auto& [fd, c] : state.conns) {
        if (c->token != nullptr) c->token->Cancel();
        ::shutdown(fd, SHUT_RDWR);
        n_.drain_cancels.fetch_add(1, std::memory_order_relaxed);
      }
    }

    // 3. Build the poll set.
    std::vector<pollfd> pfds;
    pfds.push_back({wake_pipe_[0], POLLIN, 0});
    if (!state.draining && listener_ >= 0) {
      pfds.push_back({listener_, POLLIN, 0});
    }
    for (auto& [fd, c] : state.conns) {
      if (c->running) {
        // No POLLIN while a request runs: not reading IS the backpressure
        // (the kernel buffer fills and the client's send blocks). Poll only
        // for hangup so a dead client cancels its in-flight query. Skip
        // once hangup was seen — level-triggered POLLRDHUP would spin.
        if (!c->peer_gone.load(std::memory_order_acquire) && POLLRDHUP != 0) {
          pfds.push_back({fd, POLLRDHUP, 0});
        }
      } else {
        pfds.push_back({fd, POLLIN | POLLRDHUP, 0});
      }
    }

    // 4. Timeout: the nearest idle/drain deadline, coarsely capped so
    // bookkeeping can never stall more than a tick.
    int timeout_ms = -1;
    const Clock::time_point now = Clock::now();
    auto consider = [&](Clock::time_point deadline) {
      const int64_t ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now)
              .count();
      const int clamped = ms <= 0 ? 0 : static_cast<int>(std::min<int64_t>(
                                            ms + 1, 1000));
      timeout_ms = timeout_ms < 0 ? clamped : std::min(timeout_ms, clamped);
    };
    if (state.draining && !state.drain_fired) consider(state.drain_deadline);
    if (state.draining && state.drain_fired) timeout_ms = 20;
    if (options_.idle_timeout_ms > 0) {
      for (auto& [fd, c] : state.conns) {
        if (!c->running) {
          consider(c->last_activity +
                   std::chrono::milliseconds(options_.idle_timeout_ms));
        }
      }
    }

    const int pr = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (pr < 0 && errno != EINTR) break;  // poll itself broken: give up

    // 5. Wakeup pipe (drain it; content is irrelevant).
    if (pfds[0].revents & POLLIN) {
      char buf[64];
      while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }

    // 6. Listener & connections.
    for (size_t i = 1; i < pfds.size(); ++i) {
      const pollfd& p = pfds[i];
      if (p.revents == 0) continue;
      if (p.fd == listener_) {
        HandleAccept();
        continue;
      }
      auto it = state.conns.find(p.fd);
      if (it == state.conns.end()) continue;  // closed earlier this round
      Conn* c = it->second.get();
      if (c->running) {
        if (p.revents & (POLLRDHUP | POLLERR | POLLHUP)) {
          // Dead client mid-request: cancel the query; close at completion.
          c->peer_gone.store(true, std::memory_order_release);
          if (c->token != nullptr) c->token->Cancel();
          n_.peer_disconnect_cancels.fetch_add(1, std::memory_order_relaxed);
          m_.peer_cancels->Inc();
        }
      } else if (p.revents & (POLLIN | POLLRDHUP | POLLERR | POLLHUP)) {
        if (!HandleReadable(c)) CloseConn(p.fd, "eof");
      }
    }

    // 7. Idle deadlines.
    if (options_.idle_timeout_ms > 0) {
      const Clock::time_point idle_now = Clock::now();
      std::vector<int> expired;
      for (auto& [fd, c] : state.conns) {
        if (!c->running &&
            idle_now - c->last_activity >=
                std::chrono::milliseconds(options_.idle_timeout_ms)) {
          expired.push_back(fd);
        }
      }
      for (int fd : expired) {
        TrySendLine(fd, "ERR idle timeout");
        n_.idle_timeouts.fetch_add(1, std::memory_order_relaxed);
        m_.idle_timeouts->Inc();
        CloseConn(fd, "idle");
      }
    }
  }

  // The normal exit leaves no connections; the defensive exit (poll itself
  // failing) may leave some, possibly borrowed by workers. Never tear down
  // state a worker still holds: wait for completions, then close what
  // remains.
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      for (Conn* c : done_) c->running = false;
      done_.clear();
    }
    bool any_running = false;
    for (auto& [fd, c] : state.conns) {
      if (c->running) {
        any_running = true;
        break;
      }
    }
    if (!any_running) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<int> leftover;
  leftover.reserve(state.conns.size());
  for (auto& [fd, c] : state.conns) leftover.push_back(fd);
  for (int fd : leftover) CloseConn(fd, "shutdown");

  if (listener_ >= 0) {
    ::close(listener_);
    listener_ = -1;
  }
  io_ = nullptr;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    workers_stop_ = true;
  }
  queue_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(drained_mu_);
    drained_.store(true, std::memory_order_release);
  }
  drained_cv_.notify_all();
}

void Server::HandleAccept() {
  for (;;) {
    const int fd = ::accept(listener_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or a transient error: next poll retries
    }
    if (util::fault::Hit("net.accept").has_value()) {
      ::close(fd);  // injected accept failure: the client sees a reset
      continue;
    }
    auto slot = conn_admission_.Admit(0);
    if (!slot.ok()) {
      // At the cap: shed with a typed line, never queue or hang.
      TrySendLine(fd, "ERR busy");
      ::close(fd);
      n_.shed.fetch_add(1, std::memory_order_relaxed);
      m_.shed->Inc();
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    // A response is a result table followed by a small `OK` line — exactly
    // the two-small-writes shape Nagle + delayed ACK turns into 40 ms of
    // idle latency. Disable Nagle; the response sizes here don't need it.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.sndbuf_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                   sizeof(options_.sndbuf_bytes));
    }
    auto c = std::make_unique<Conn>();
    c->fd = fd;
    c->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    c->slot = std::move(slot).value();
    c->session = db_->CreateSession();
    c->last_activity = Clock::now();
    connections_active_.fetch_add(1, std::memory_order_acq_rel);
    m_.connections_active->Add(1);
    n_.connections_total.fetch_add(1, std::memory_order_relaxed);
    m_.connections_total->Inc();
    if (options_.verbose) {
      std::fprintf(stderr, "[conn %llu] connected (%zu active)\n",
                   static_cast<unsigned long long>(c->id),
                   connections_active_.load());
    }
    io_->conns.emplace(fd, std::move(c));
  }
}

bool Server::HandleReadable(Conn* c) {
  char chunk[4096];
  const auto fault = util::fault::Hit("net.recv");
  if (fault.has_value() && *fault != util::FaultKind::kBitFlip) {
    return false;  // injected socket death: close (cleanup path under test)
  }
  ssize_t r;
  do {
    r = ::recv(c->fd, chunk, sizeof(chunk), 0);
  } while (r < 0 && errno == EINTR);
  if (r == 0) return false;  // orderly EOF
  if (r < 0) {
    return errno == EAGAIN || errno == EWOULDBLOCK;  // spurious wakeup: keep
  }
  if (fault.has_value()) chunk[0] ^= 1;  // kBitFlip: corrupt the stream
  c->in.append(chunk, static_cast<size_t>(r));
  n_.bytes_in.fetch_add(static_cast<uint64_t>(r), std::memory_order_relaxed);
  m_.bytes_in->Add(r);
  c->last_activity = Clock::now();
  return PumpRequests(c);
}

bool Server::PumpRequests(Conn* c) {
  while (!c->running) {
    const size_t nl = c->in.find('\n');
    if (c->discarding) {
      if (nl == std::string::npos) {
        c->in.clear();  // still inside the oversized line: drop and wait
        return true;
      }
      c->in.erase(0, nl + 1);
      c->discarding = false;
      continue;
    }
    if (nl == std::string::npos) {
      if (c->in.size() > options_.max_line_bytes) {
        // Unterminated line past the cap: typed error, discard the rest.
        // This is the bound that keeps a slow-drip client from growing the
        // buffer without limit.
        c->in.clear();
        c->discarding = true;
        c->oversized = true;
        n_.overflows.fetch_add(1, std::memory_order_relaxed);
        m_.overflows->Inc();
        DispatchToWorker(c);
      }
      return true;  // need more bytes
    }
    std::string line = c->in.substr(0, nl);
    c->in.erase(0, nl + 1);
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    if (line == "quit") return false;
    if (line.size() > options_.max_line_bytes) {
      c->oversized = true;
      n_.overflows.fetch_add(1, std::memory_order_relaxed);
      m_.overflows->Inc();
      DispatchToWorker(c);
      return true;
    }
    c->request = std::move(line);
    DispatchToWorker(c);
    return true;
  }
  return true;
}

void Server::DispatchToWorker(Conn* c) {
  c->running = true;
  c->token = std::make_shared<util::CancelToken>();
  c->dispatched_at = Clock::now();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(c);
  }
  queue_cv_.notify_one();
}

void Server::CloseConn(int fd, const char* why) {
  auto it = io_->conns.find(fd);
  if (it == io_->conns.end()) return;
  Conn* c = it->second.get();
  if (options_.verbose) {
    std::fprintf(stderr, "[conn %llu] closed (%s)\n",
                 static_cast<unsigned long long>(c->id), why);
  }
  c->session.reset();  // sessions_active falls with the connection
  c->slot.Release();   // frees one max_connections unit
  ::close(fd);
  io_->conns.erase(it);
  connections_active_.fetch_sub(1, std::memory_order_acq_rel);
  m_.connections_active->Add(-1);
}

void Server::TrySendLine(int fd, const char* line) {
  if (util::fault::Hit("net.send").has_value()) return;
  std::string out(line);
  out += '\n';
  const ssize_t n =
      ::send(fd, out.data(), out.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
  if (n > 0) {
    n_.bytes_out.fetch_add(static_cast<uint64_t>(n),
                           std::memory_order_relaxed);
    m_.bytes_out->Add(n);
  }
}

void Server::EnterDrain() {
  io_->draining = true;
  io_->drain_deadline =
      Clock::now() + std::chrono::milliseconds(
                         options_.drain_timeout_ms > 0
                             ? options_.drain_timeout_ms
                             : int64_t{0});
  if (listener_ >= 0) {
    ::close(listener_);  // stop accepting first
    listener_ = -1;
  }
  std::vector<int> idle;
  for (auto& [fd, c] : io_->conns) {
    if (!c->running) idle.push_back(fd);
  }
  for (int fd : idle) {
    TrySendLine(fd, "ERR server draining");
    CloseConn(fd, "drain");
  }
}

// --- worker pool -----------------------------------------------------------

void Server::WorkerLoop() {
  for (;;) {
    Conn* c = nullptr;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return workers_stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (workers_stop_) return;
        continue;
      }
      c = queue_.front();
      queue_.pop_front();
    }
    ProcessRequest(c);
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_.push_back(c);
    }
    if (wake_pipe_[1] >= 0) {
      const char b = 'd';
      [[maybe_unused]] ssize_t ignored = ::write(wake_pipe_[1], &b, 1);
    }
  }
}

void Server::ProcessRequest(Conn* c) {
  if (c->oversized) {
    SendLine(c, "ERR request too long");
    return;
  }
  const std::string& line = c->request;
  n_.requests_total.fetch_add(1, std::memory_order_relaxed);
  m_.requests_total->Inc();
  if (line == "ping") {
    SendLine(c, "OK");
  } else if (line == "health") {
    const bool read_only = db_->read_only();
    std::string h = util::Format(
        "health: %s read_only=%d draining=%d sessions=%zu connections=%zu",
        read_only ? "degraded" : "ok", read_only ? 1 : 0,
        stop_requested_.load(std::memory_order_acquire) ? 1 : 0,
        db_->sessions_active(), connections_active());
    if (read_only) h += " reason=" + db_->read_only_reason();
    SendLine(c, h);
    SendLine(c, "OK");
  } else if (IsQuery(line)) {
    auto result = c->session->Query(line, c->token);
    if (result.ok()) {
      std::string table = result->ToString();  // already '\n'-terminated
      if (table.empty() || table.back() != '\n') table += '\n';
      // Terminator only after the whole table made it out: a failed send
      // must close the connection, never pass off a truncated table as a
      // complete `OK` response.
      if (SendAll(c, table)) SendLine(c, "OK");
    } else {
      SendLine(c, "ERR " + result.status().ToString());
    }
  } else {
    const Status st = c->session->Execute(line);
    SendLine(c, st.ok() ? "OK" : "ERR " + st.ToString());
  }
}

bool Server::SendAll(Conn* c, const std::string& data) {
  if (c->send_failed.load(std::memory_order_acquire)) return false;
  if (util::fault::Hit("net.send").has_value()) {
    c->send_failed.store(true, std::memory_order_release);
    return false;
  }
  const Clock::time_point deadline =
      options_.write_timeout_ms > 0
          ? Clock::now() + std::chrono::milliseconds(options_.write_timeout_ms)
          : Clock::time_point::max();
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(c->fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      n_.bytes_out.fetch_add(static_cast<uint64_t>(n),
                             std::memory_order_relaxed);
      m_.bytes_out->Add(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Backpressure: the reader is slow. Block with a deadline — never
      // queue the response — and disconnect a reader that stays stuck.
      const Clock::time_point now = Clock::now();
      if (now >= deadline) {
        n_.write_timeouts.fetch_add(1, std::memory_order_relaxed);
        m_.write_timeouts->Inc();
        c->send_failed.store(true, std::memory_order_release);
        return false;
      }
      const int64_t left_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now)
              .count();
      pollfd p{c->fd, POLLOUT, 0};
      const int pr =
          ::poll(&p, 1, static_cast<int>(std::min<int64_t>(left_ms + 1, 100)));
      if (pr < 0 && errno != EINTR) {
        c->send_failed.store(true, std::memory_order_release);
        return false;
      }
      continue;
    }
    // EPIPE / ECONNRESET / anything else: the client is gone. Surfacing
    // this (instead of silently dropping the tail) is what guarantees a
    // client never reads a truncated result as if it were complete.
    c->send_failed.store(true, std::memory_order_release);
    return false;
  }
  return true;
}

bool Server::SendLine(Conn* c, const std::string& line) {
  return SendAll(c, line + "\n");
}

}  // namespace smadb::net
