#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/fault.h"
#include "util/string_util.h"

// POLLRDHUP (peer shut down its write side) is the hangup signal that lets
// the I/O thread notice a dead client *while a request is in flight* —
// plain POLLHUP only fires after both directions are gone. Linux-specific;
// on platforms without it the fallback is "no early cancel", never a miss:
// the send path still detects the death via EPIPE.
#ifndef POLLRDHUP
#define POLLRDHUP 0
#endif

namespace smadb::net {

using util::Status;

namespace {

using Clock = std::chrono::steady_clock;

/// Lines that produce a result table and must run through Session::Query
/// (everything QueryWithKnobs dispatches: selects, explains, the `show`
/// family, `scrub`, and any of those behind a `trace <hex>` prefix).
bool IsQuery(const std::string& line) {
  return line.rfind("select", 0) == 0 || line.rfind("explain", 0) == 0 ||
         line.rfind("show", 0) == 0 || line.rfind("scrub", 0) == 0 ||
         line.rfind("trace ", 0) == 0;
}

/// Extracts the hex id from a client-supplied `trace <hex> ...` prefix, for
/// the request log. 0 on malformed input — the engine rejects those with a
/// typed error, so the log just shows trace=0.
uint64_t ParseTraceHex(const std::string& line) {
  uint64_t id = 0;
  size_t i = 6;  // past "trace "
  while (i < line.size() && line[i] == ' ') ++i;
  size_t digits = 0;
  for (; i < line.size() && digits < 16; ++i, ++digits) {
    const char ch = line[i];
    if (ch >= '0' && ch <= '9') {
      id = id << 4 | static_cast<uint64_t>(ch - '0');
    } else if (ch >= 'a' && ch <= 'f') {
      id = id << 4 | static_cast<uint64_t>(ch - 'a' + 10);
    } else {
      break;
    }
  }
  return digits > 0 ? id : 0;
}

/// Minimal JSON string escaping for /healthz reason text.
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          out += util::Format("\\u%04x", ch);
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// One full HTTP/1.1 response with Connection: close framing (the endpoint
/// serves exactly one request per connection; scrapers reconnect).
std::string HttpResponse(int code, const char* reason,
                         const char* content_type, const std::string& body) {
  std::string r = util::Format(
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      code, reason, content_type, body.size());
  r += body;
  return r;
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("fcntl O_NONBLOCK: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

/// Binds + listens a non-blocking IPv4 TCP socket; reports the bound port
/// (for port 0). Returns -1 with *status set on failure.
int OpenListener(const std::string& host, uint16_t port, int backlog,
                 uint16_t* bound_port, Status* status) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *status = Status::IOError(std::string("socket: ") + std::strerror(errno));
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    *status = Status::InvalidArgument("bad listen address: " + host);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, backlog) < 0) {
    *status =
        Status::IOError(std::string("bind/listen: ") + std::strerror(errno));
    ::close(fd);
    return -1;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    *bound_port = ntohs(bound.sin_port);
  }
  if (Status st = SetNonBlocking(fd); !st.ok()) {
    ::close(fd);
    *status = st;
    return -1;
  }
  *status = Status::OK();
  return fd;
}

}  // namespace

/// Per-connection state. Owned by the I/O thread; a worker borrows the
/// connection between dispatch (queue_mu_ hand-off) and completion
/// (done_mu_ hand-back), so plain fields are safely published by the queue
/// mutexes. The few fields both sides touch concurrently — the hangup flag
/// the I/O thread raises mid-request and the send-failure flag the worker
/// raises mid-send — are atomics.
struct Server::Conn {
  int fd = -1;
  uint64_t id = 0;
  std::unique_ptr<db::Session> session;
  db::AdmissionController::Slot slot;  // one max_connections unit

  /// Input buffer. Bounded: PumpRequests() tips anything growing past
  /// max_line_bytes without a newline into discard mode, so the high-water
  /// mark is max_line_bytes + one recv chunk.
  std::string in;
  bool discarding = false;  ///< dropping an oversized line up to its '\n'

  bool running = false;     ///< a request is on (or queued for) a worker
  std::string request;      ///< the line being executed
  bool oversized = false;   ///< respond `ERR request too long` instead
  /// Fresh token per request; the I/O thread cancels it when the peer
  /// vanishes or the drain deadline fires.
  std::shared_ptr<util::CancelToken> token;
  Clock::time_point dispatched_at{};

  Clock::time_point last_activity{};

  std::atomic<bool> peer_gone{false};    ///< hangup seen while running
  std::atomic<bool> send_failed{false};  ///< response truncated: must close
};

/// One HTTP observability connection (DESIGN.md §16). Owned and touched by
/// the I/O thread only: requests are parsed and answered inline in the poll
/// loop (every handler renders from thread-safe snapshots, so the loop
/// stalls for microseconds, not query-times). One request per connection.
struct Server::HttpConn {
  int fd = -1;
  std::string in;       ///< request bytes until the blank line (8 KiB cap)
  std::string out;      ///< full response; non-empty = writing phase
  size_t out_off = 0;   ///< bytes of `out` already sent
  Clock::time_point deadline{};  ///< read+write budget (http_timeout_ms)
};

struct Server::IoState {
  std::map<int, std::unique_ptr<Conn>> conns;
  std::map<int, std::unique_ptr<HttpConn>> http;
  bool draining = false;
  bool drain_fired = false;  ///< drain deadline passed; tokens cancelled
  Clock::time_point drain_deadline{};
};

Server::Server(db::Database* db, ServerOptions options)
    : db_(db),
      options_(std::move(options)),
      conn_admission_([this] {
        db::AdmissionController::Options o;
        o.max_concurrent = options_.max_connections;
        o.max_queued = 0;  // shed at accept time, never queue a connection
        o.max_wait = std::chrono::milliseconds(0);
        return o;
      }()) {
  obs::MetricsRegistry* r = db_->metrics();
  m_.connections_active = r->GetGauge("smadb_net_connections_active",
                                      "Open client connections");
  m_.connections_total =
      r->GetCounter("smadb_net_connections_total", "Connections accepted");
  m_.requests_total =
      r->GetCounter("smadb_net_requests_total", "Request lines served");
  m_.bytes_in = r->GetCounter("smadb_net_bytes_in_total",
                              "Bytes received from clients");
  m_.bytes_out =
      r->GetCounter("smadb_net_bytes_out_total", "Bytes sent to clients");
  m_.shed = r->GetCounter("smadb_net_shed_total",
                          "Connections refused with ERR busy at the cap");
  m_.overflows = r->GetCounter(
      "smadb_net_overflow_total",
      "Request lines refused with ERR request too long");
  m_.idle_timeouts = r->GetCounter("smadb_net_idle_timeouts_total",
                                   "Connections closed for idleness");
  m_.write_timeouts = r->GetCounter(
      "smadb_net_write_timeouts_total",
      "Connections dropped after a response send stalled past the deadline");
  m_.peer_cancels = r->GetCounter(
      "smadb_net_peer_disconnect_cancels_total",
      "In-flight queries cancelled because the client vanished");
  m_.http_requests = r->GetCounter(
      "smadb_net_http_requests_total",
      "HTTP observability endpoint requests served");
  m_.request_latency_us = r->GetHistogram(
      "smadb_net_request_latency_us",
      "Dispatch-to-response-sent request latency (microseconds)");
}

Server::~Server() { (void)Shutdown(); }

Status Server::Start() {
  if (started_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already started");
  }
  Status st;
  listener_ = OpenListener(options_.host, options_.port,
                           options_.listen_backlog, &port_, &st);
  if (listener_ < 0) return st;
  if (options_.enable_http) {
    http_listener_ = OpenListener(options_.host, options_.http_port,
                                  options_.listen_backlog, &http_port_, &st);
    if (http_listener_ < 0) {
      ::close(listener_);
      listener_ = -1;
      return st;
    }
  }
  if (::pipe(wake_pipe_) < 0) {
    ::close(listener_);
    listener_ = -1;
    if (http_listener_ >= 0) {
      ::close(http_listener_);
      http_listener_ = -1;
    }
    return Status::IOError(std::string("pipe: ") + std::strerror(errno));
  }
  (void)SetNonBlocking(wake_pipe_[0]);
  (void)SetNonBlocking(wake_pipe_[1]);

  // Seed for minted trace ids: wall clock + pid, mixed per id by
  // MintTraceId(). Ids need to be distinguishable across restarts in
  // aggregated logs, not cryptographically unique.
  trace_seed_ = static_cast<uint64_t>(
                    std::chrono::system_clock::now().time_since_epoch()
                        .count()) ^
                (static_cast<uint64_t>(::getpid()) << 32);

  started_.store(true, std::memory_order_release);
  io_thread_ = std::thread(&Server::IoLoop, this);
  const size_t n_workers = options_.worker_threads > 0
                               ? options_.worker_threads
                               : size_t{1};
  workers_.reserve(n_workers);
  for (size_t i = 0; i < n_workers; ++i) {
    workers_.emplace_back(&Server::WorkerLoop, this);
  }
  return Status::OK();
}

void Server::RequestShutdown() {
  stop_requested_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    const char b = 'q';
    // write() is async-signal-safe; the pipe is non-blocking and a full
    // pipe already guarantees a pending wakeup.
    [[maybe_unused]] ssize_t ignored = ::write(wake_pipe_[1], &b, 1);
  }
}

void Server::Wait() {
  if (!started_.load(std::memory_order_acquire)) return;
  std::unique_lock<std::mutex> lock(drained_mu_);
  drained_cv_.wait(lock,
                   [this] { return drained_.load(std::memory_order_acquire); });
}

Status Server::Shutdown() {
  if (!started_.load(std::memory_order_acquire)) return Status::OK();
  RequestShutdown();
  Wait();
  if (!joined_) {
    joined_ = true;
    io_thread_.join();
    for (std::thread& w : workers_) w.join();
    workers_.clear();
    if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
    if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
    wake_pipe_[0] = wake_pipe_[1] = -1;
  }
  if (options_.checkpoint_on_drain) return db_->Close();
  return Status::OK();
}

Server::Stats Server::stats() const {
  Stats s;
  s.connections_total = n_.connections_total.load(std::memory_order_relaxed);
  s.requests_total = n_.requests_total.load(std::memory_order_relaxed);
  s.bytes_in = n_.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = n_.bytes_out.load(std::memory_order_relaxed);
  s.shed = n_.shed.load(std::memory_order_relaxed);
  s.overflows = n_.overflows.load(std::memory_order_relaxed);
  s.idle_timeouts = n_.idle_timeouts.load(std::memory_order_relaxed);
  s.write_timeouts = n_.write_timeouts.load(std::memory_order_relaxed);
  s.peer_disconnect_cancels =
      n_.peer_disconnect_cancels.load(std::memory_order_relaxed);
  s.drain_cancels = n_.drain_cancels.load(std::memory_order_relaxed);
  s.http_requests = n_.http_requests.load(std::memory_order_relaxed);
  return s;
}

// --- I/O thread ------------------------------------------------------------

void Server::IoLoop() {
  IoState state;
  io_ = &state;

  for (;;) {
    // 1. Completions: workers handed these connections back.
    std::deque<Conn*> done;
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      done.swap(done_);
    }
    for (Conn* c : done) {
      c->running = false;
      c->oversized = false;
      c->token.reset();
      c->last_activity = Clock::now();
      m_.request_latency_us->Observe(
          std::chrono::duration_cast<std::chrono::microseconds>(
              c->last_activity - c->dispatched_at)
              .count());
      const bool broken = c->send_failed.load(std::memory_order_acquire) ||
                          c->peer_gone.load(std::memory_order_acquire);
      bool close = broken || state.draining;
      if (!close && !PumpRequests(c)) close = true;
      if (close) {
        // A request that completes during drain gets the same notice the
        // idle connections got in EnterDrain(). Without this, a connection
        // whose worker finished after EnterDrain() swept the idle set would
        // be closed silently.
        if (state.draining && !broken) {
          TrySendLine(c->fd, "ERR server draining");
        }
        CloseConn(c->fd, "done");
      }
    }

    // 2. Drain entry / exit.
    if (stop_requested_.load(std::memory_order_acquire) && !state.draining) {
      EnterDrain();
    }
    if (state.draining && state.conns.empty()) break;
    if (state.draining && !state.drain_fired &&
        Clock::now() >= state.drain_deadline) {
      // Deadline: cancel every in-flight query and fail any blocked send,
      // so workers come home promptly. Connections close at completion.
      state.drain_fired = true;
      for (auto& [fd, c] : state.conns) {
        if (c->token != nullptr) c->token->Cancel();
        ::shutdown(fd, SHUT_RDWR);
        n_.drain_cancels.fetch_add(1, std::memory_order_relaxed);
      }
    }

    // 3. Build the poll set.
    std::vector<pollfd> pfds;
    pfds.push_back({wake_pipe_[0], POLLIN, 0});
    if (!state.draining && listener_ >= 0) {
      pfds.push_back({listener_, POLLIN, 0});
    }
    // The HTTP listener stays in the set during drain: /healthz keeps
    // answering (503, "draining") while in-flight queries finish.
    if (http_listener_ >= 0) {
      pfds.push_back({http_listener_, POLLIN, 0});
    }
    for (auto& [fd, hc] : state.http) {
      pfds.push_back(
          {fd, static_cast<short>(hc->out.empty() ? POLLIN : POLLOUT), 0});
    }
    for (auto& [fd, c] : state.conns) {
      if (c->running) {
        // No POLLIN while a request runs: not reading IS the backpressure
        // (the kernel buffer fills and the client's send blocks). Poll only
        // for hangup so a dead client cancels its in-flight query. Skip
        // once hangup was seen — level-triggered POLLRDHUP would spin.
        if (!c->peer_gone.load(std::memory_order_acquire) && POLLRDHUP != 0) {
          pfds.push_back({fd, POLLRDHUP, 0});
        }
      } else {
        pfds.push_back({fd, POLLIN | POLLRDHUP, 0});
      }
    }

    // 4. Timeout: the nearest idle/drain deadline, coarsely capped so
    // bookkeeping can never stall more than a tick.
    int timeout_ms = -1;
    const Clock::time_point now = Clock::now();
    auto consider = [&](Clock::time_point deadline) {
      const int64_t ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now)
              .count();
      const int clamped = ms <= 0 ? 0 : static_cast<int>(std::min<int64_t>(
                                            ms + 1, 1000));
      timeout_ms = timeout_ms < 0 ? clamped : std::min(timeout_ms, clamped);
    };
    if (state.draining && !state.drain_fired) consider(state.drain_deadline);
    if (state.draining && state.drain_fired) timeout_ms = 20;
    if (options_.idle_timeout_ms > 0) {
      for (auto& [fd, c] : state.conns) {
        if (!c->running) {
          consider(c->last_activity +
                   std::chrono::milliseconds(options_.idle_timeout_ms));
        }
      }
    }
    for (auto& [fd, hc] : state.http) consider(hc->deadline);

    const int pr = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (pr < 0 && errno != EINTR) break;  // poll itself broken: give up

    // 5. Wakeup pipe (drain it; content is irrelevant).
    if (pfds[0].revents & POLLIN) {
      char buf[64];
      while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }

    // 6. Listener & connections.
    for (size_t i = 1; i < pfds.size(); ++i) {
      const pollfd& p = pfds[i];
      if (p.revents == 0) continue;
      if (p.fd == listener_) {
        HandleAccept();
        continue;
      }
      if (p.fd == http_listener_) {
        HandleHttpAccept();
        continue;
      }
      if (auto hit = state.http.find(p.fd); hit != state.http.end()) {
        if (!HandleHttp(hit->second.get(), p.revents)) CloseHttpConn(p.fd);
        continue;
      }
      auto it = state.conns.find(p.fd);
      if (it == state.conns.end()) continue;  // closed earlier this round
      Conn* c = it->second.get();
      if (c->running) {
        if (p.revents & (POLLRDHUP | POLLERR | POLLHUP)) {
          // Dead client mid-request: cancel the query; close at completion.
          c->peer_gone.store(true, std::memory_order_release);
          if (c->token != nullptr) c->token->Cancel();
          n_.peer_disconnect_cancels.fetch_add(1, std::memory_order_relaxed);
          m_.peer_cancels->Inc();
        }
      } else if (p.revents & (POLLIN | POLLRDHUP | POLLERR | POLLHUP)) {
        if (!HandleReadable(c)) CloseConn(p.fd, "eof");
      }
    }

    // 7. Idle deadlines.
    if (options_.idle_timeout_ms > 0) {
      const Clock::time_point idle_now = Clock::now();
      std::vector<int> expired;
      for (auto& [fd, c] : state.conns) {
        if (!c->running &&
            idle_now - c->last_activity >=
                std::chrono::milliseconds(options_.idle_timeout_ms)) {
          expired.push_back(fd);
        }
      }
      for (int fd : expired) {
        TrySendLine(fd, "ERR idle timeout");
        n_.idle_timeouts.fetch_add(1, std::memory_order_relaxed);
        m_.idle_timeouts->Inc();
        CloseConn(fd, "idle");
      }
    }

    // 8. HTTP deadlines: one budget covers request read + response write.
    {
      const Clock::time_point http_now = Clock::now();
      std::vector<int> expired;
      for (auto& [fd, hc] : state.http) {
        if (http_now >= hc->deadline) expired.push_back(fd);
      }
      for (int fd : expired) CloseHttpConn(fd);
    }
  }

  // The normal exit leaves no connections; the defensive exit (poll itself
  // failing) may leave some, possibly borrowed by workers. Never tear down
  // state a worker still holds: wait for completions, then close what
  // remains.
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      for (Conn* c : done_) c->running = false;
      done_.clear();
    }
    bool any_running = false;
    for (auto& [fd, c] : state.conns) {
      if (c->running) {
        any_running = true;
        break;
      }
    }
    if (!any_running) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<int> leftover;
  leftover.reserve(state.conns.size());
  for (auto& [fd, c] : state.conns) leftover.push_back(fd);
  for (int fd : leftover) CloseConn(fd, "shutdown");
  std::vector<int> http_leftover;
  http_leftover.reserve(state.http.size());
  for (auto& [fd, hc] : state.http) http_leftover.push_back(fd);
  for (int fd : http_leftover) CloseHttpConn(fd);

  if (listener_ >= 0) {
    ::close(listener_);
    listener_ = -1;
  }
  if (http_listener_ >= 0) {
    ::close(http_listener_);
    http_listener_ = -1;
  }
  io_ = nullptr;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    workers_stop_ = true;
  }
  queue_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(drained_mu_);
    drained_.store(true, std::memory_order_release);
  }
  drained_cv_.notify_all();
}

void Server::HandleAccept() {
  for (;;) {
    const int fd = ::accept(listener_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or a transient error: next poll retries
    }
    if (util::fault::Hit("net.accept").has_value()) {
      ::close(fd);  // injected accept failure: the client sees a reset
      continue;
    }
    auto slot = conn_admission_.Admit(0);
    if (!slot.ok()) {
      // At the cap: shed with a typed line, never queue or hang.
      TrySendLine(fd, "ERR busy");
      ::close(fd);
      n_.shed.fetch_add(1, std::memory_order_relaxed);
      m_.shed->Inc();
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    // A response is a result table followed by a small `OK` line — exactly
    // the two-small-writes shape Nagle + delayed ACK turns into 40 ms of
    // idle latency. Disable Nagle; the response sizes here don't need it.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.sndbuf_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                   sizeof(options_.sndbuf_bytes));
    }
    auto c = std::make_unique<Conn>();
    c->fd = fd;
    c->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    c->slot = std::move(slot).value();
    c->session = db_->CreateSession();
    c->last_activity = Clock::now();
    connections_active_.fetch_add(1, std::memory_order_acq_rel);
    m_.connections_active->Add(1);
    n_.connections_total.fetch_add(1, std::memory_order_relaxed);
    m_.connections_total->Inc();
    db_->logger()->Log(
        options_.verbose ? obs::LogLevel::kInfo : obs::LogLevel::kDebug,
        "conn_open",
        {{"conn", c->id}, {"active", connections_active_.load()}});
    io_->conns.emplace(fd, std::move(c));
  }
}

bool Server::HandleReadable(Conn* c) {
  char chunk[4096];
  const auto fault = util::fault::Hit("net.recv");
  if (fault.has_value() && *fault != util::FaultKind::kBitFlip) {
    return false;  // injected socket death: close (cleanup path under test)
  }
  ssize_t r;
  do {
    r = ::recv(c->fd, chunk, sizeof(chunk), 0);
  } while (r < 0 && errno == EINTR);
  if (r == 0) return false;  // orderly EOF
  if (r < 0) {
    return errno == EAGAIN || errno == EWOULDBLOCK;  // spurious wakeup: keep
  }
  if (fault.has_value()) chunk[0] ^= 1;  // kBitFlip: corrupt the stream
  c->in.append(chunk, static_cast<size_t>(r));
  n_.bytes_in.fetch_add(static_cast<uint64_t>(r), std::memory_order_relaxed);
  m_.bytes_in->Add(r);
  c->last_activity = Clock::now();
  return PumpRequests(c);
}

bool Server::PumpRequests(Conn* c) {
  while (!c->running) {
    const size_t nl = c->in.find('\n');
    if (c->discarding) {
      if (nl == std::string::npos) {
        c->in.clear();  // still inside the oversized line: drop and wait
        return true;
      }
      c->in.erase(0, nl + 1);
      c->discarding = false;
      continue;
    }
    if (nl == std::string::npos) {
      if (c->in.size() > options_.max_line_bytes) {
        // Unterminated line past the cap: typed error, discard the rest.
        // This is the bound that keeps a slow-drip client from growing the
        // buffer without limit.
        c->in.clear();
        c->discarding = true;
        c->oversized = true;
        n_.overflows.fetch_add(1, std::memory_order_relaxed);
        m_.overflows->Inc();
        DispatchToWorker(c);
      }
      return true;  // need more bytes
    }
    std::string line = c->in.substr(0, nl);
    c->in.erase(0, nl + 1);
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    if (line == "quit") return false;
    if (line.size() > options_.max_line_bytes) {
      c->oversized = true;
      n_.overflows.fetch_add(1, std::memory_order_relaxed);
      m_.overflows->Inc();
      DispatchToWorker(c);
      return true;
    }
    c->request = std::move(line);
    DispatchToWorker(c);
    return true;
  }
  return true;
}

void Server::DispatchToWorker(Conn* c) {
  c->running = true;
  c->token = std::make_shared<util::CancelToken>();
  c->dispatched_at = Clock::now();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(c);
  }
  queue_cv_.notify_one();
}

void Server::CloseConn(int fd, const char* why) {
  auto it = io_->conns.find(fd);
  if (it == io_->conns.end()) return;
  Conn* c = it->second.get();
  db_->logger()->Log(
      options_.verbose ? obs::LogLevel::kInfo : obs::LogLevel::kDebug,
      "conn_close", {{"conn", c->id}, {"reason", why}});
  c->session.reset();  // sessions_active falls with the connection
  c->slot.Release();   // frees one max_connections unit
  ::close(fd);
  io_->conns.erase(it);
  connections_active_.fetch_sub(1, std::memory_order_acq_rel);
  m_.connections_active->Add(-1);
}

void Server::TrySendLine(int fd, const char* line) {
  if (util::fault::Hit("net.send").has_value()) return;
  std::string out(line);
  out += '\n';
  const ssize_t n =
      ::send(fd, out.data(), out.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
  if (n > 0) {
    n_.bytes_out.fetch_add(static_cast<uint64_t>(n),
                           std::memory_order_relaxed);
    m_.bytes_out->Add(n);
  }
}

void Server::EnterDrain() {
  io_->draining = true;
  io_->drain_deadline =
      Clock::now() + std::chrono::milliseconds(
                         options_.drain_timeout_ms > 0
                             ? options_.drain_timeout_ms
                             : int64_t{0});
  if (listener_ >= 0) {
    ::close(listener_);  // stop accepting first
    listener_ = -1;
  }
  std::vector<int> idle;
  for (auto& [fd, c] : io_->conns) {
    if (!c->running) idle.push_back(fd);
  }
  for (int fd : idle) {
    TrySendLine(fd, "ERR server draining");
    CloseConn(fd, "drain");
  }
}

// --- HTTP observability endpoint (I/O thread only) -------------------------

uint64_t Server::MintTraceId() {
  // splitmix64 over a per-process seed: well-mixed 64-bit ids from a plain
  // counter, distinguishable across restarts, never zero (0 = untraced).
  uint64_t z = trace_seed_ +
               0x9e3779b97f4a7c15ULL *
                   (trace_counter_.fetch_add(1, std::memory_order_relaxed) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z != 0 ? z : 1;
}

void Server::HandleHttpAccept() {
  for (;;) {
    const int fd = ::accept(http_listener_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or transient: next poll retries
    }
    if (io_->http.size() >= options_.http_max_connections ||
        !SetNonBlocking(fd).ok()) {
      ::close(fd);  // scrapers are few; past the cap just reset
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto hc = std::make_unique<HttpConn>();
    hc->fd = fd;
    hc->deadline =
        Clock::now() + std::chrono::milliseconds(options_.http_timeout_ms > 0
                                                     ? options_.http_timeout_ms
                                                     : int64_t{60'000});
    io_->http.emplace(fd, std::move(hc));
  }
}

bool Server::HandleHttp(HttpConn* hc, short revents) {
  if (revents & (POLLERR | POLLNVAL)) return false;
  if (hc->out.empty()) {
    // Reading the request. Headers are ignored beyond the request line;
    // the blank line just marks "request complete".
    char chunk[2048];
    ssize_t r;
    do {
      r = ::recv(hc->fd, chunk, sizeof(chunk), 0);
    } while (r < 0 && errno == EINTR);
    if (r == 0) return false;  // EOF before a full request
    if (r < 0) return errno == EAGAIN || errno == EWOULDBLOCK;
    hc->in.append(chunk, static_cast<size_t>(r));
    if (hc->in.size() > 8192) return false;  // oversized request: reset
    if (hc->in.find("\r\n\r\n") == std::string::npos &&
        hc->in.find("\n\n") == std::string::npos) {
      return true;  // need more bytes
    }
    const size_t eol = hc->in.find_first_of("\r\n");
    const std::string req_line = hc->in.substr(0, eol);
    const size_t sp1 = req_line.find(' ');
    const size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : req_line.find(' ', sp1 + 1);
    const std::string method =
        sp1 == std::string::npos ? req_line : req_line.substr(0, sp1);
    std::string path = sp2 == std::string::npos
                           ? ""
                           : req_line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (const size_t q = path.find('?'); q != std::string::npos) {
      path.resize(q);  // query strings are accepted and ignored
    }
    hc->out = RouteHttp(method, path);
    n_.http_requests.fetch_add(1, std::memory_order_relaxed);
    m_.http_requests->Inc();
    // Fall through: usually the whole response fits the send buffer.
  }
  while (hc->out_off < hc->out.size()) {
    const ssize_t n =
        ::send(hc->fd, hc->out.data() + hc->out_off,
               hc->out.size() - hc->out_off, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      hc->out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return true;  // kernel buffer full: POLLOUT resumes us
    }
    return false;  // peer gone
  }
  return false;  // response fully sent: Connection: close
}

void Server::CloseHttpConn(int fd) {
  auto it = io_->http.find(fd);
  if (it == io_->http.end()) return;
  ::close(fd);
  io_->http.erase(it);
}

std::string Server::RouteHttp(std::string_view method, std::string_view path) {
  if (method != "GET") {
    return HttpResponse(405, "Method Not Allowed", "text/plain; charset=utf-8",
                        "only GET is supported\n");
  }
  if (path == "/metrics") {
    return HttpResponse(200, "OK", "text/plain; version=0.0.4; charset=utf-8",
                        db_->ExportMetrics());
  }
  if (path == "/healthz") {
    const bool read_only = db_->read_only();
    const bool draining = stop_requested_.load(std::memory_order_acquire);
    std::string body = util::Format(
        "{\"status\": \"%s\", \"read_only\": %s, \"draining\": %s, "
        "\"sessions\": %zu, \"connections\": %zu",
        draining ? "draining" : (read_only ? "read_only" : "ok"),
        read_only ? "true" : "false", draining ? "true" : "false",
        db_->sessions_active(), connections_active());
    if (read_only) {
      body += ", \"reason\": \"" + JsonEscape(db_->read_only_reason()) + "\"";
    }
    body += "}\n";
    const bool healthy = !read_only && !draining;
    return HttpResponse(healthy ? 200 : 503,
                        healthy ? "OK" : "Service Unavailable",
                        "application/json", body);
  }
  if (path == "/statusz") {
    const std::string body = util::Format(
        "{\"server\": \"smadb\", \"version\": \"1.0.0\", "
        "\"build\": \"%s\", \"uptime_us\": %llu, "
        "\"port\": %u, \"http_port\": %u, "
        "\"knobs\": {\"dop\": %zu, \"batch_size\": %zu, "
        "\"timeout_ms\": %lld, \"memory_limit\": %zu, "
        "\"max_concurrent_queries\": %zu, \"slow_query_ms\": %lld}, "
        "\"read_only\": %s, \"sessions\": %zu}\n",
        __VERSION__,
        static_cast<unsigned long long>(db_->uptime_us()),
        static_cast<unsigned>(port_), static_cast<unsigned>(http_port_),
        db_->degree_of_parallelism(), db_->batch_size(),
        static_cast<long long>(db_->timeout_ms()), db_->query_memory_limit(),
        db_->max_concurrent_queries(),
        static_cast<long long>(db_->slow_query_ms()),
        db_->read_only() ? "true" : "false", db_->sessions_active());
    return HttpResponse(200, "OK", "application/json", body);
  }
  if (path == "/debug/queries") {
    return HttpResponse(200, "OK", "application/json", db_->DumpQueries());
  }
  if (path == "/debug/trace") {
    return HttpResponse(200, "OK", "application/json", db_->DumpTrace());
  }
  if (path == "/") {
    return HttpResponse(200, "OK", "text/plain; charset=utf-8",
                        "smadb telemetry plane\n"
                        "  /metrics        Prometheus exposition\n"
                        "  /healthz        liveness (503 = read_only or "
                        "draining)\n"
                        "  /statusz        build info, uptime, knobs\n"
                        "  /debug/queries  in-flight queries (JSON)\n"
                        "  /debug/trace    recent trace spans (JSON)\n");
  }
  return HttpResponse(404, "Not Found", "text/plain; charset=utf-8",
                      "unknown path\n");
}

// --- worker pool -----------------------------------------------------------

void Server::WorkerLoop() {
  for (;;) {
    Conn* c = nullptr;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return workers_stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (workers_stop_) return;
        continue;
      }
      c = queue_.front();
      queue_.pop_front();
    }
    ProcessRequest(c);
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_.push_back(c);
    }
    if (wake_pipe_[1] >= 0) {
      const char b = 'd';
      [[maybe_unused]] ssize_t ignored = ::write(wake_pipe_[1], &b, 1);
    }
  }
}

void Server::ProcessRequest(Conn* c) {
  if (c->oversized) {
    SendLine(c, "ERR request too long");
    return;
  }
  const std::string& line = c->request;
  n_.requests_total.fetch_add(1, std::memory_order_relaxed);
  m_.requests_total->Inc();
  uint64_t trace_id = 0;
  std::string outcome = "ok";
  if (line == "ping") {
    SendLine(c, "OK");
  } else if (line == "health") {
    const bool read_only = db_->read_only();
    std::string h = util::Format(
        "health: %s read_only=%d draining=%d sessions=%zu connections=%zu",
        read_only ? "degraded" : "ok", read_only ? 1 : 0,
        stop_requested_.load(std::memory_order_acquire) ? 1 : 0,
        db_->sessions_active(), connections_active());
    if (read_only) h += " reason=" + db_->read_only_reason();
    SendLine(c, h);
    SendLine(c, "OK");
  } else if (IsQuery(line)) {
    // Every query request carries a trace id (DESIGN.md §16): honor a
    // client-supplied `trace <hex>` prefix, mint one otherwise. The id
    // rides the statement text into QueryWithKnobs, which threads it
    // through every TraceSpan and the profile — so one grep over the log,
    // the trace dump, and the profile output correlates a request
    // end to end.
    const std::string* stmt = &line;
    std::string traced;
    if (line.rfind("trace ", 0) == 0) {
      trace_id = ParseTraceHex(line);
    } else {
      trace_id = MintTraceId();
      traced = util::Format("trace %llx ",
                            static_cast<unsigned long long>(trace_id));
      traced += line;
      stmt = &traced;
    }
    auto result = c->session->Query(*stmt, c->token);
    if (result.ok()) {
      std::string table = result->ToString();  // already '\n'-terminated
      if (table.empty() || table.back() != '\n') table += '\n';
      // Terminator only after the whole table made it out: a failed send
      // must close the connection, never pass off a truncated table as a
      // complete `OK` response.
      if (SendAll(c, table)) SendLine(c, "OK");
    } else {
      SendLine(c, "ERR " + result.status().ToString());
      outcome = result.status().ToString();
    }
  } else {
    const Status st = c->session->Execute(line);
    SendLine(c, st.ok() ? "OK" : "ERR " + st.ToString());
    if (!st.ok()) outcome = st.ToString();
  }
  const double elapsed_ms =
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            c->dispatched_at)
          .count() /
      1000.0;
  db_->logger()->Debug(
      "request",
      {{"conn", c->id},
       {"trace", util::Format("%llx",
                              static_cast<unsigned long long>(trace_id))},
       {"ms", elapsed_ms},
       {"status", outcome},
       {"sql", line}});
}

bool Server::SendAll(Conn* c, const std::string& data) {
  if (c->send_failed.load(std::memory_order_acquire)) return false;
  if (util::fault::Hit("net.send").has_value()) {
    c->send_failed.store(true, std::memory_order_release);
    return false;
  }
  const Clock::time_point deadline =
      options_.write_timeout_ms > 0
          ? Clock::now() + std::chrono::milliseconds(options_.write_timeout_ms)
          : Clock::time_point::max();
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(c->fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      n_.bytes_out.fetch_add(static_cast<uint64_t>(n),
                             std::memory_order_relaxed);
      m_.bytes_out->Add(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Backpressure: the reader is slow. Block with a deadline — never
      // queue the response — and disconnect a reader that stays stuck.
      const Clock::time_point now = Clock::now();
      if (now >= deadline) {
        n_.write_timeouts.fetch_add(1, std::memory_order_relaxed);
        m_.write_timeouts->Inc();
        c->send_failed.store(true, std::memory_order_release);
        return false;
      }
      const int64_t left_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now)
              .count();
      pollfd p{c->fd, POLLOUT, 0};
      const int pr =
          ::poll(&p, 1, static_cast<int>(std::min<int64_t>(left_ms + 1, 100)));
      if (pr < 0 && errno != EINTR) {
        c->send_failed.store(true, std::memory_order_release);
        return false;
      }
      continue;
    }
    // EPIPE / ECONNRESET / anything else: the client is gone. Surfacing
    // this (instead of silently dropping the tail) is what guarantees a
    // client never reads a truncated result as if it were complete.
    c->send_failed.store(true, std::memory_order_release);
    return false;
  }
  return true;
}

bool Server::SendLine(Conn* c, const std::string& line) {
  return SendAll(c, line + "\n");
}

}  // namespace smadb::net
