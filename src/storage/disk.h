// DiskBackend: the storage seam every page lives behind.
//
// Two implementations exist. SimulatedDisk is an in-memory page store that
// *accounts* like a 1997 disk: the paper's measurements (Sparc Ultra I,
// Barracuda 4 GB disks) are I/O-bound; what SMAs buy is fewer pages touched,
// so we keep all pages in RAM but count every access, classify it as
// sequential/near/random, and map the counts to seconds through a
// parameterized disk model. FileDiskManager (file_disk.h) is a real
// pread/pwrite + fsync backend whose pages survive the process — the base
// of the durable stack (WAL + checkpoints + recovery, DESIGN.md §12).
//
// The backend is also the fault boundary. ReadPage/WritePage of *every*
// implementation consult the failpoints "disk.read" / "disk.write" (plus
// "disk.page_bitflip", which always flips a bit on delivery regardless of
// the armed kind) through the shared helpers on the base class, so tests can
// inject transient errors, permanent errors, and silent single-bit
// corruption identically against any backend (see util/fault.h). Every page
// carries an out-of-band CRC-32C stamped on write — modeling per-sector
// checksums real disks keep outside the 4 K payload, so SMA-file pages stay
// fully packed and the paper's file sizes hold. The buffer pool verifies the
// checksum on fetch and turns silent corruption into typed kCorruption
// errors.

#ifndef SMADB_STORAGE_DISK_H_
#define SMADB_STORAGE_DISK_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/page.h"
#include "util/status.h"

namespace smadb::storage {

/// Identifies one backend file (a table heap, one SMA-file, an index...).
using FileId = uint32_t;

/// Invalid file sentinel.
inline constexpr FileId kInvalidFile = UINT32_MAX;

/// Time model of a late-90s SCSI disk (Seagate Barracuda 4GB class).
/// Three access classes:
///   sequential — the next page; streams at the transfer rate.
///   near       — a short forward skip within the same region
///                (skip-sequential scan of scattered qualifying buckets,
///                §2.3 "a sequential scan of the ambivalent pages");
///                pays a short track-to-track seek.
///   random     — everything else; pays the full average seek +
///                rotational delay.
struct DiskModel {
  double seek_ms = 8.0;            ///< average seek + rotational latency
  double short_seek_ms = 1.5;      ///< track-to-track class seek
  double transfer_mb_per_s = 9.0;  ///< sustained sequential bandwidth

  /// Seconds to service the given access counts.
  double Seconds(uint64_t sequential_pages, uint64_t near_pages,
                 uint64_t random_pages) const {
    const double bytes = static_cast<double>(sequential_pages + near_pages +
                                             random_pages) *
                         kPageSize;
    return bytes / (transfer_mb_per_s * 1024.0 * 1024.0) +
           static_cast<double>(near_pages) * short_seek_ms / 1000.0 +
           static_cast<double>(random_pages) * seek_ms / 1000.0;
  }
};

/// Forward skips up to this many pages (4 MB) count as "near" accesses.
inline constexpr int64_t kNearSeekWindowPages = 1024;

/// Cumulative I/O counters.
struct IoStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t sequential_reads = 0;
  uint64_t near_reads = 0;
  uint64_t random_reads = 0;
  uint64_t sequential_writes = 0;
  uint64_t near_writes = 0;
  uint64_t random_writes = 0;
  /// Durability barriers honored (fsync class; always 0 on SimulatedDisk).
  uint64_t syncs = 0;

  /// Seconds the modeled disk would take for all recorded accesses.
  double ModeledSeconds(const DiskModel& model) const {
    return model.Seconds(sequential_reads + sequential_writes,
                         near_reads + near_writes,
                         random_reads + random_writes);
  }

  IoStats operator-(const IoStats& base) const {
    IoStats d;
    d.page_reads = page_reads - base.page_reads;
    d.page_writes = page_writes - base.page_writes;
    d.sequential_reads = sequential_reads - base.sequential_reads;
    d.near_reads = near_reads - base.near_reads;
    d.random_reads = random_reads - base.random_reads;
    d.sequential_writes = sequential_writes - base.sequential_writes;
    d.near_writes = near_writes - base.near_writes;
    d.random_writes = random_writes - base.random_writes;
    d.syncs = syncs - base.syncs;
    return d;
  }
};

/// Which concrete backend a DiskBackend pointer refers to.
enum class BackendKind {
  kSimulated,  ///< in-memory page store with 1997-disk accounting
  kFile,       ///< real files: pread/pwrite + fsync (FileDiskManager)
};

std::string_view BackendKindToString(BackendKind k);

/// Deterministic bit position for injected single-bit flips: a cheap mix of
/// (file, page) so repeated runs corrupt the same bit.
uint64_t FaultFlipBitOf(FileId file, uint32_t page_no);

/// Flips bit `bit` (modulo page bits) of `page` in place.
void FaultFlipBit(Page* page, uint64_t bit);

/// Abstract page store: the seam between the engine (buffer pool, tables,
/// SMA-files, WAL-driven recovery) and where pages physically live.
///
/// Contract shared by all implementations:
///  - files are created by name (unique, diagnostic) and addressed by id;
///  - pages are allocated at the tail (or from the free list after
///    FreePage) and addressed by number;
///  - every page has an out-of-band CRC-32C stamped on write;
///  - ReadPage/WritePage consult the "disk.read"/"disk.write"/
///    "disk.page_bitflip" failpoints via the shared base helpers;
///  - all accesses are recorded in IoStats with sequential/near/random
///    classification (the modeled 1997 disk reads the same counters for
///    every backend).
///
/// Thread-safe: the buffer pool serializes page traffic under its own
/// mutex, but DDL (CreateFile), metric callbacks (stats, FileBytes) and
/// recovery helpers reach the backend directly from other threads, so every
/// implementation guards its structures with the backend mutex `mu_`.
class DiskBackend {
 public:
  DiskBackend() = default;
  virtual ~DiskBackend() = default;

  DiskBackend(const DiskBackend&) = delete;
  DiskBackend& operator=(const DiskBackend&) = delete;

  virtual BackendKind kind() const = 0;
  std::string_view kind_name() const { return BackendKindToString(kind()); }

  /// Creates an empty file and returns its id. Names are for diagnostics and
  /// recovery manifests and must be unique and non-empty. Ids of removed
  /// files are reused, lowest first.
  virtual util::Result<FileId> CreateFile(std::string name) = 0;

  /// Looks up a file by name.
  virtual util::Result<FileId> FindFile(std::string_view name) const = 0;

  /// Removes a file: drops its pages and frees its *name*. The id becomes a
  /// tombstone — invisible to FindFile, rejected by page operations — until
  /// a later CreateFile reassigns it. Used by recovery to clear orphan
  /// derived files (SMA-files a crash left behind without a manifest entry);
  /// live files are owned by their table / SMA objects and never removed.
  virtual util::Status RemoveFile(FileId file) = 0;

  /// Appends a zeroed page to `file` (reusing a freed page when one exists);
  /// returns its page number.
  virtual util::Result<uint32_t> AllocatePage(FileId file) = 0;

  /// Returns page `page_no` of `file` to the allocator's free list. The
  /// page stays addressable (zeroed) until reallocated; freeing twice fails
  /// with kInvalidArgument.
  virtual util::Status FreePage(FileId file, uint32_t page_no) = 0;

  /// Reads page `page_no` of `file` into `*out`, recording the access.
  virtual util::Status ReadPage(FileId file, uint32_t page_no, Page* out) = 0;

  /// Writes `page` to `file` at `page_no`, recording the access.
  virtual util::Status WritePage(FileId file, uint32_t page_no,
                                 const Page& page) = 0;

  /// Drops all pages of a file (keeps the id valid with zero pages).
  virtual util::Status TruncateFile(FileId file) = 0;

  /// Durability barrier: everything written so far is on stable storage when
  /// this returns OK. A no-op (still counted) on the simulated backend.
  virtual util::Status Sync() = 0;

  /// Number of pages currently allocated in `file` (including freed ones
  /// not yet reused).
  virtual util::Result<uint32_t> NumPages(FileId file) const = 0;

  virtual const std::string& FileName(FileId file) const = 0;
  virtual size_t NumFiles() const = 0;

  /// CRC-32C stamped when `page_no` was last written (out-of-band, like a
  /// disk's per-sector checksum). The buffer pool compares it against the
  /// checksum of the delivered bytes to detect silent corruption.
  virtual util::Result<uint32_t> PageChecksum(FileId file,
                                              uint32_t page_no) const = 0;

  /// Flips one stored bit *without* restamping the checksum — simulates
  /// at-rest media corruption for tests. `bit` indexes into the page
  /// (modulo page bits).
  virtual util::Status CorruptPageForTesting(FileId file, uint32_t page_no,
                                             uint64_t bit) = 0;

  /// Total bytes across the given file.
  virtual uint64_t FileBytes(FileId file) const = 0;

  /// Snapshot of the counters (copy: metric readers race with I/O threads).
  IoStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = IoStats();
  }

  /// Forgets per-file head positions so the next access of every file
  /// classifies independently of earlier runs (fair A/B timing).
  virtual void ResetAccessPositions() = 0;

 protected:
  /// Consults the "disk.read" failpoints for one page read. Returns the
  /// injected error (kIOError) for transient/permanent faults; on OK,
  /// `*flip_delivered` says whether the delivered copy must have a bit
  /// flipped (kBitFlip or an armed "disk.page_bitflip").
  util::Status ConsultReadFaults(const std::string& file_name,
                                 uint32_t page_no, bool* flip_delivered);

  /// Same for "disk.write": on OK, `*flip_stored` asks the backend to flip
  /// a bit in the *stored* bytes after stamping the intended checksum (the
  /// next verified read detects the silent corruption).
  util::Status ConsultWriteFaults(const std::string& file_name,
                                  uint32_t page_no, bool* flip_stored);

  /// Consults the "disk.sync" failpoint at the top of every backend's
  /// durability barrier (kill-point and ENOSPC scripting for Sync itself).
  util::Status ConsultSyncFaults();

  /// Classifies one access against the file's last touched page and bumps
  /// the matching IoStats counters. `*last` is updated to `page_no`.
  /// Caller must hold `mu_`.
  void AccountRead(int64_t* last, uint32_t page_no);
  void AccountWrite(int64_t* last, uint32_t page_no);

  /// Guards `stats_` and every implementation's file table. Leaf lock: no
  /// other engine mutex is acquired while held.
  mutable std::mutex mu_;
  IoStats stats_;
};

/// The simulated disk: an in-memory DiskBackend with 1997-disk accounting.
/// All smadb paper experiments run on this backend.
class SimulatedDisk final : public DiskBackend {
 public:
  SimulatedDisk() = default;

  BackendKind kind() const override { return BackendKind::kSimulated; }

  util::Result<FileId> CreateFile(std::string name) override;
  util::Result<FileId> FindFile(std::string_view name) const override;
  util::Status RemoveFile(FileId file) override;
  util::Result<uint32_t> AllocatePage(FileId file) override;
  util::Status FreePage(FileId file, uint32_t page_no) override;
  util::Status ReadPage(FileId file, uint32_t page_no, Page* out) override;
  util::Status WritePage(FileId file, uint32_t page_no,
                         const Page& page) override;
  util::Status TruncateFile(FileId file) override;
  util::Status Sync() override;
  util::Result<uint32_t> NumPages(FileId file) const override;

  // Deque keeps File references stable across CreateFile, so the returned
  // name cannot dangle when DDL races a diagnostic path.
  const std::string& FileName(FileId file) const override {
    std::lock_guard<std::mutex> lock(mu_);
    return files_[file].name;
  }
  size_t NumFiles() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return files_.size();
  }

  util::Result<uint32_t> PageChecksum(FileId file,
                                      uint32_t page_no) const override;
  util::Status CorruptPageForTesting(FileId file, uint32_t page_no,
                                     uint64_t bit) override;

  uint64_t FileBytes(FileId file) const override {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<uint64_t>(files_[file].pages.size()) * kPageSize;
  }

  void ResetAccessPositions() override {
    std::lock_guard<std::mutex> lock(mu_);
    for (File& f : files_) {
      f.last_read = -2;
      f.last_write = -2;
    }
  }

 private:
  struct File {
    std::string name;
    std::vector<std::unique_ptr<Page>> pages;
    // Out-of-band CRC-32C per page, parallel to `pages`.
    std::vector<uint32_t> checksums;
    // Pages returned by FreePage, reusable by AllocatePage.
    std::vector<uint32_t> free_pages;
    // Last page touched, for sequential/random classification.
    int64_t last_read = -2;
    int64_t last_write = -2;
  };

  /// Caller must hold `mu_`.
  util::Status CheckBounds(FileId file, uint32_t page_no) const;

  std::deque<File> files_;
};

}  // namespace smadb::storage

#endif  // SMADB_STORAGE_DISK_H_
