// SimulatedDisk: an in-memory page store that *accounts* like a 1997 disk.
//
// The paper's measurements (Sparc Ultra I, Barracuda 4 GB disks) are
// I/O-bound; what SMAs buy is fewer pages touched. We therefore keep all
// pages in RAM but count every page read/write, classify it as sequential or
// random, and map the counts to seconds through a parameterized disk model.
// Benchmarks report both real wall-clock time (CPU-side pruning effect) and
// modeled disk seconds (paper-scale shape).
//
// The disk is also the fault boundary. ReadPage/WritePage consult the
// failpoints "disk.read" / "disk.write" (plus "disk.page_bitflip", which
// always flips a bit on delivery regardless of the armed kind) so tests can
// inject transient errors, permanent errors, and silent single-bit
// corruption (see util/fault.h). Every page carries an out-of-band CRC-32C
// stamped on write — modeling per-sector checksums real disks keep outside
// the 4 K payload, so SMA-file pages stay fully packed and the paper's file
// sizes hold. The buffer pool verifies the checksum on fetch and turns
// silent corruption into typed kCorruption errors.

#ifndef SMADB_STORAGE_DISK_H_
#define SMADB_STORAGE_DISK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/page.h"
#include "util/status.h"

namespace smadb::storage {

/// Identifies one simulated file (a table heap, one SMA-file, an index...).
using FileId = uint32_t;

/// Invalid file sentinel.
inline constexpr FileId kInvalidFile = UINT32_MAX;

/// Time model of a late-90s SCSI disk (Seagate Barracuda 4GB class).
/// Three access classes:
///   sequential — the next page; streams at the transfer rate.
///   near       — a short forward skip within the same region
///                (skip-sequential scan of scattered qualifying buckets,
///                §2.3 "a sequential scan of the ambivalent pages");
///                pays a short track-to-track seek.
///   random     — everything else; pays the full average seek +
///                rotational delay.
struct DiskModel {
  double seek_ms = 8.0;            ///< average seek + rotational latency
  double short_seek_ms = 1.5;      ///< track-to-track class seek
  double transfer_mb_per_s = 9.0;  ///< sustained sequential bandwidth

  /// Seconds to service the given access counts.
  double Seconds(uint64_t sequential_pages, uint64_t near_pages,
                 uint64_t random_pages) const {
    const double bytes = static_cast<double>(sequential_pages + near_pages +
                                             random_pages) *
                         kPageSize;
    return bytes / (transfer_mb_per_s * 1024.0 * 1024.0) +
           static_cast<double>(near_pages) * short_seek_ms / 1000.0 +
           static_cast<double>(random_pages) * seek_ms / 1000.0;
  }
};

/// Forward skips up to this many pages (4 MB) count as "near" accesses.
inline constexpr int64_t kNearSeekWindowPages = 1024;

/// Cumulative I/O counters.
struct IoStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t sequential_reads = 0;
  uint64_t near_reads = 0;
  uint64_t random_reads = 0;
  uint64_t sequential_writes = 0;
  uint64_t near_writes = 0;
  uint64_t random_writes = 0;

  /// Seconds the modeled disk would take for all recorded accesses.
  double ModeledSeconds(const DiskModel& model) const {
    return model.Seconds(sequential_reads + sequential_writes,
                         near_reads + near_writes,
                         random_reads + random_writes);
  }

  IoStats operator-(const IoStats& base) const {
    IoStats d;
    d.page_reads = page_reads - base.page_reads;
    d.page_writes = page_writes - base.page_writes;
    d.sequential_reads = sequential_reads - base.sequential_reads;
    d.near_reads = near_reads - base.near_reads;
    d.random_reads = random_reads - base.random_reads;
    d.sequential_writes = sequential_writes - base.sequential_writes;
    d.near_writes = near_writes - base.near_writes;
    d.random_writes = random_writes - base.random_writes;
    return d;
  }
};

/// The simulated disk. Thread-compatible (external synchronization); all
/// smadb experiments are single-threaded, like the paper's.
class SimulatedDisk {
 public:
  SimulatedDisk() = default;

  SimulatedDisk(const SimulatedDisk&) = delete;
  SimulatedDisk& operator=(const SimulatedDisk&) = delete;

  /// Creates an empty file and returns its id. Names are for diagnostics and
  /// must be unique.
  util::Result<FileId> CreateFile(std::string name);

  /// Looks up a file by name.
  util::Result<FileId> FindFile(std::string_view name) const;

  /// Appends a zeroed page to `file`; returns its page number.
  util::Result<uint32_t> AllocatePage(FileId file);

  /// Reads page `page_no` of `file` into `*out`, recording the access.
  util::Status ReadPage(FileId file, uint32_t page_no, Page* out);

  /// Writes `page` to `file` at `page_no`, recording the access.
  util::Status WritePage(FileId file, uint32_t page_no, const Page& page);

  /// Drops all pages of a file (keeps the id valid with zero pages).
  util::Status TruncateFile(FileId file);

  /// Number of pages currently allocated in `file`.
  util::Result<uint32_t> NumPages(FileId file) const;

  const std::string& FileName(FileId file) const { return files_[file].name; }
  size_t NumFiles() const { return files_.size(); }

  /// CRC-32C stamped when `page_no` was last written (out-of-band, like a
  /// disk's per-sector checksum). The buffer pool compares it against the
  /// checksum of the delivered bytes to detect silent corruption.
  util::Result<uint32_t> PageChecksum(FileId file, uint32_t page_no) const;

  /// Flips one stored bit *without* restamping the checksum — simulates
  /// at-rest media corruption for tests. `bit` indexes into the page
  /// (modulo page bits).
  util::Status CorruptPageForTesting(FileId file, uint32_t page_no,
                                     uint64_t bit);

  /// Total bytes across the given file.
  uint64_t FileBytes(FileId file) const {
    return static_cast<uint64_t>(files_[file].pages.size()) * kPageSize;
  }

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_ = IoStats(); }

  /// Forgets per-file head positions so the next access of every file
  /// classifies independently of earlier runs (fair A/B timing).
  void ResetAccessPositions() {
    for (File& f : files_) {
      f.last_read = -2;
      f.last_write = -2;
    }
  }

 private:
  struct File {
    std::string name;
    std::vector<std::unique_ptr<Page>> pages;
    // Out-of-band CRC-32C per page, parallel to `pages`.
    std::vector<uint32_t> checksums;
    // Last page touched, for sequential/random classification.
    int64_t last_read = -2;
    int64_t last_write = -2;
  };

  util::Status CheckBounds(FileId file, uint32_t page_no) const;

  std::vector<File> files_;
  IoStats stats_;
};

}  // namespace smadb::storage

#endif  // SMADB_STORAGE_DISK_H_
