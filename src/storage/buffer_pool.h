// LRU buffer pool over the simulated disk.
//
// The pool is what makes the paper's cold/warm distinction measurable:
// "cold" = DropAll() before the run (every access faults to disk), "warm" =
// run again with the SMA-files resident. The paper's AODB was configured
// with an 8 MB buffer; the default capacity matches (2048 4K frames).
//
// Thread safety: all frame-table / LRU / free-list state is guarded by one
// mutex and the hit/miss counters are atomics, so any number of worker
// threads may Fetch / release PageGuards concurrently (the morsel-parallel
// operators do). Page *contents* follow pin discipline: a pinned frame
// cannot move or be evicted, and query workers only read data pages, so no
// page-level latch is needed; writers (bulk load, maintenance) are
// single-threaded by design.

#ifndef SMADB_STORAGE_BUFFER_POOL_H_
#define SMADB_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/disk.h"
#include "storage/page.h"
#include "util/status.h"

namespace smadb::storage {

/// Buffer-pool hit/miss counters (a consistent-enough snapshot; the live
/// counters are atomics inside the pool).
struct PoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
};

class BufferPool;

/// RAII pin on a buffered page. Movable, not copyable. While alive, the
/// frame cannot be evicted and `page()` stays valid.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, size_t frame, Page* page)
      : pool_(pool), frame_(frame), page_(page) {}
  PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
  /// Releases the currently held pin (if any) before adopting `o`'s;
  /// self-assignment is a no-op and keeps the pin.
  PageGuard& operator=(PageGuard&& o) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard();

  bool valid() const { return page_ != nullptr; }
  const Page* page() const { return page_; }
  /// Grants write access and marks the frame dirty.
  Page* MutablePage();

  /// Releases the pin early (idempotent).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  Page* page_ = nullptr;
};

/// Fixed-capacity LRU buffer pool; thread-safe (see header comment).
class BufferPool {
 public:
  /// `capacity_pages` frames of kPageSize each; default 8 MB.
  explicit BufferPool(SimulatedDisk* disk, size_t capacity_pages = 2048);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins (fetching from disk on miss) page `page_no` of `file`.
  util::Result<PageGuard> Fetch(FileId file, uint32_t page_no);

  /// Appends a fresh zeroed page to `file` and pins it (for bulk loading).
  util::Result<PageGuard> NewPage(FileId file, uint32_t* page_no_out);

  /// Writes back all dirty frames (keeps them cached).
  util::Status FlushAll();

  /// Writes back and evicts everything — simulates a cold start.
  util::Status DropAll();

  /// Evicts (after write-back) every cached page of one file. Used to warm
  /// selectively, e.g. keep SMA-files hot but drop the base relation.
  util::Status DropFile(FileId file);

  /// Counter snapshot.
  PoolStats stats() const {
    PoolStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.dirty_writebacks = dirty_writebacks_.load(std::memory_order_relaxed);
    return s;
  }
  void ResetStats() {
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
    dirty_writebacks_ = 0;
  }

  size_t capacity() const { return frames_.size(); }
  size_t num_cached() const {
    std::lock_guard<std::mutex> lock(mu_);
    return table_.size();
  }
  SimulatedDisk* disk() const { return disk_; }

 private:
  friend class PageGuard;

  struct Frame {
    Page page;
    FileId file = kInvalidFile;
    uint32_t page_no = 0;
    uint32_t pin_count = 0;
    bool dirty = false;
    bool used = false;
    std::list<size_t>::iterator lru_pos;  // valid iff pinned == 0 && used
    bool in_lru = false;
  };

  static uint64_t Key(FileId f, uint32_t p) {
    return (static_cast<uint64_t>(f) << 32) | p;
  }

  void Unpin(size_t frame, bool dirty);
  void MarkDirty(size_t frame);
  // The Locked helpers require mu_ to be held by the caller.
  util::Result<size_t> GetFreeFrameLocked();
  util::Status EvictFrameLocked(size_t idx);

  SimulatedDisk* disk_;
  mutable std::mutex mu_;  // guards frames_ metadata, free_list_, lru_, table_
  std::vector<Frame> frames_;
  std::vector<size_t> free_list_;
  std::list<size_t> lru_;  // front = most recent
  std::unordered_map<uint64_t, size_t> table_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> dirty_writebacks_{0};
};

}  // namespace smadb::storage

#endif  // SMADB_STORAGE_BUFFER_POOL_H_
