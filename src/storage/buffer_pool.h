// LRU buffer pool over the simulated disk.
//
// The pool is what makes the paper's cold/warm distinction measurable:
// "cold" = DropAll() before the run (every access faults to disk), "warm" =
// run again with the SMA-files resident. The paper's AODB was configured
// with an 8 MB buffer; the default capacity matches (2048 4K frames).
//
// The pool is also the integrity boundary: on every miss the fetched bytes
// are checksummed against the disk's out-of-band CRC-32C, so silent
// corruption (injected or otherwise) surfaces as a typed kCorruption status
// naming the file and page instead of flowing into query results. Transient
// read errors are absorbed by a small bounded retry; when every frame is
// pinned, Fetch/NewPage wait (bounded) for a pin release before giving up
// with kResourceExhausted.
//
// Thread safety: all frame-table / LRU / free-list state is guarded by one
// mutex and the hit/miss counters are atomics, so any number of worker
// threads may Fetch / release PageGuards concurrently (the morsel-parallel
// operators do). Page *contents* follow pin discipline: a pinned frame
// cannot move or be evicted, and query workers only read data pages, so no
// page-level latch is needed; writers (bulk load, maintenance) are
// single-threaded by design.

#ifndef SMADB_STORAGE_BUFFER_POOL_H_
#define SMADB_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/disk.h"
#include "storage/page.h"
#include "util/query_context.h"
#include "util/status.h"

namespace smadb::storage {

/// Buffer-pool hit/miss counters (a consistent-enough snapshot; the live
/// counters are atomics inside the pool).
struct PoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
  /// Reads that failed page verification (each surfaced as kCorruption).
  uint64_t checksum_failures = 0;
  /// Transient read errors absorbed by the retry loop.
  uint64_t read_retries = 0;
};

/// Robustness knobs; defaults are production behaviour.
struct BufferPoolOptions {
  /// Frames of kPageSize each; default 8 MB (the paper's buffer).
  size_t capacity_pages = 2048;
  /// Verify each fetched page against the disk's stored CRC-32C. Off only
  /// for overhead experiments (EXPERIMENTS.md X7).
  bool verify_checksums = true;
  /// Additional read attempts after a kIOError before it surfaces.
  int max_read_retries = 3;
  /// Backoff before each read retry (doubles per attempt).
  std::chrono::microseconds retry_backoff{50};
  /// Rounds × quantum bounds the wait for a pinned frame to free up before
  /// Fetch/NewPage fail with kResourceExhausted.
  int pinned_wait_rounds = 64;
  std::chrono::milliseconds pinned_wait_quantum{1};
  /// Optional governor hook (DESIGN.md §10): every pin's page is charged
  /// against this tracker (component "BufferPool.pins") while pinned, so
  /// pinned working memory counts toward the global budget. Null = off.
  /// Charge rejection surfaces from Fetch/NewPage as kResourceExhausted.
  util::MemoryTracker* pin_tracker = nullptr;
  /// WAL-before-data barrier (DESIGN.md §12): invoked before any dirty page
  /// is written back (eviction or FlushAll). The durable Database wires this
  /// to Wal::Sync so no un-logged mutation ever reaches the backend. The
  /// callback must not re-enter the pool. Null = no ordering constraint
  /// (simulated backend without a WAL).
  std::function<util::Status()> pre_writeback = nullptr;
};

class BufferPool;

/// RAII pin on a buffered page. Movable, not copyable. While alive, the
/// frame cannot be evicted and `page()` stays valid.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, size_t frame, Page* page)
      : pool_(pool), frame_(frame), page_(page) {}
  PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
  /// Releases the currently held pin (if any) before adopting `o`'s;
  /// self-assignment is a no-op and keeps the pin.
  PageGuard& operator=(PageGuard&& o) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard();

  bool valid() const { return page_ != nullptr; }
  const Page* page() const { return page_; }
  /// Grants write access and marks the frame dirty.
  Page* MutablePage();

  /// Releases the pin early (idempotent).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  Page* page_ = nullptr;
};

/// Fixed-capacity LRU buffer pool; thread-safe (see header comment).
class BufferPool {
 public:
  /// `capacity_pages` frames of kPageSize each; default 8 MB.
  explicit BufferPool(DiskBackend* disk, size_t capacity_pages = 2048)
      : BufferPool(disk, BufferPoolOptions{.capacity_pages = capacity_pages}) {
  }

  BufferPool(DiskBackend* disk, BufferPoolOptions options);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins (fetching from disk on miss) page `page_no` of `file`. On miss the
  /// fetched bytes are verified against the stored checksum (kCorruption on
  /// mismatch, with file and page attached); transient read errors are
  /// retried up to the options budget; if all frames are pinned, waits
  /// (bounded) for a release before failing with kResourceExhausted.
  util::Result<PageGuard> Fetch(FileId file, uint32_t page_no);

  /// Appends a fresh zeroed page to `file` and pins it (for bulk loading).
  util::Result<PageGuard> NewPage(FileId file, uint32_t* page_no_out);

  /// Writes back all dirty frames (keeps them cached).
  util::Status FlushAll();

  /// Writes back and evicts everything — simulates a cold start.
  util::Status DropAll();

  /// Evicts (after write-back) every cached page of one file. Used to warm
  /// selectively, e.g. keep SMA-files hot but drop the base relation.
  util::Status DropFile(FileId file);

  /// Evicts every cached page of one file *without* write-back — for files
  /// about to be truncated (SMA rebuild discards their contents, including
  /// possibly-corrupt cached pages).
  util::Status DiscardFile(FileId file);

  /// Evicts *everything* without write-back: dirty pages are lost as if the
  /// process died before they reached the backend. The in-process crash
  /// simulation (Database::CrashForTesting) is the only caller.
  util::Status DiscardAll();

  /// Counter snapshot.
  PoolStats stats() const {
    PoolStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.dirty_writebacks = dirty_writebacks_.load(std::memory_order_relaxed);
    s.checksum_failures = checksum_failures_.load(std::memory_order_relaxed);
    s.read_retries = read_retries_.load(std::memory_order_relaxed);
    return s;
  }
  void ResetStats() {
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
    dirty_writebacks_ = 0;
    checksum_failures_ = 0;
    read_retries_ = 0;
  }

  size_t capacity() const { return frames_.size(); }
  size_t num_cached() const {
    std::lock_guard<std::mutex> lock(mu_);
    return table_.size();
  }
  DiskBackend* disk() const { return disk_; }
  const BufferPoolOptions& options() const { return options_; }

 private:
  friend class PageGuard;

  struct Frame {
    Page page;
    FileId file = kInvalidFile;
    uint32_t page_no = 0;
    uint32_t pin_count = 0;
    bool dirty = false;
    bool used = false;
    std::list<size_t>::iterator lru_pos;  // valid iff pinned == 0 && used
    bool in_lru = false;
  };

  static uint64_t Key(FileId f, uint32_t p) {
    return (static_cast<uint64_t>(f) << 32) | p;
  }

  void Unpin(size_t frame, bool dirty);
  void MarkDirty(size_t frame);
  // The Locked helpers require mu_ to be held by the caller.
  util::Result<size_t> GetFreeFrameLocked();
  util::Status EvictFrameLocked(size_t idx);
  // Reads (with bounded retry) and verifies a page into frame `idx`; on
  // failure the frame is returned to the free list.
  util::Status LoadFrameLocked(size_t idx, FileId file, uint32_t page_no);
  // Drops every cached page of `file`; writes dirty frames back first iff
  // `writeback`.
  util::Status DropFileLocked(FileId file, bool writeback);
  // Runs the pre_writeback barrier (if configured).
  util::Status BarrierLocked();

  DiskBackend* disk_;
  BufferPoolOptions options_;
  mutable std::mutex mu_;  // guards frames_ metadata, free_list_, lru_, table_
  std::condition_variable frame_available_;  // signaled when a pin releases
  std::vector<Frame> frames_;
  std::vector<size_t> free_list_;
  std::list<size_t> lru_;  // front = most recent
  std::unordered_map<uint64_t, size_t> table_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> dirty_writebacks_{0};
  std::atomic<uint64_t> checksum_failures_{0};
  std::atomic<uint64_t> read_retries_{0};
};

}  // namespace smadb::storage

#endif  // SMADB_STORAGE_BUFFER_POOL_H_
