// Write-ahead log: the durability spine of the file backend.
//
// The WAL is an append-only byte stream (NOT a paged DiskBackend file — log
// appends are the one access pattern where page granularity only hurts).
// Layout:
//
//   header   : magic "smadbwal" | version u32 | base_lsn u64
//   records  : [payload_len u32][crc u32][lsn u64][type u8][payload...]
//
// The CRC-32C covers lsn + type + payload, so a torn tail write (crash mid
// append) is detected and replay stops at the last intact record — exactly
// the committed prefix. LSNs are assigned densely from base_lsn.
//
// Buffering contract: Append() only stages the record in a user-space
// buffer; Flush() writes it to the file, Sync() flushes and fdatasyncs. A
// record is COMMITTED once Sync() has covered it. Keeping unflushed bytes in
// user space is what lets an in-process crash simulation
// (Database::CrashForTesting -> DiscardUnflushed) model kill-9/power-loss
// tail loss faithfully without actually killing the process.
//
// Threading: the log is internally synchronized. Appends/flushes take the
// log mutex; Sync() implements leader-based group commit — the first caller
// to need a barrier flushes under the mutex, then runs the fdatasync with
// the mutex RELEASED while concurrent committers whose records that flush
// covered wait on a condition variable instead of issuing their own sync.
// One fdatasync thus amortizes over every session that committed inside its
// window. A real fdatasync failure is sticky (fsyncgate: the kernel may
// have dropped the very pages the barrier was for, so retrying can only
// lie); injected failpoint errors are not sticky so fault tests keep their
// per-call semantics.
//
// Checkpointing: Reset(base_lsn) truncates the log back to a fresh header
// whose base_lsn continues the sequence; everything before it is captured by
// the checkpoint manifest, so replay always starts at the header.
//
// Failpoints: "wal.append" fails record staging, "wal.sync" fails the
// durability barrier, "wal.reset.truncate" fails checkpoint truncation
// before the ftruncate, and "wal.reset.header" fails it between the
// ftruncate and the fresh header write (the torn-truncation state) — the
// crash-recovery torture harness arms all of these as kill-points (see
// tests/torture_test.cc and tests/durability_test.cc).

#ifndef SMADB_STORAGE_WAL_H_
#define SMADB_STORAGE_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "util/status.h"

namespace smadb::storage {

/// Logical record types the database layer logs. The WAL itself treats the
/// type as an opaque byte; the vocabulary lives here so recovery and the
/// design doc share one definition.
enum class WalRecordType : uint8_t {
  kCreateTable = 1,  ///< name, bucket_pages, schema fields
  kDefineSma = 2,    ///< table name + the `define sma` statement text
  kInsert = 3,       ///< table, rid, epoch_after, tuple bytes
  kUpdate = 4,       ///< table, rid, column, typed value, epoch_after
  kDelete = 5,       ///< table, rid, epoch_after
  kAbort = 6,        ///< aborted lsn (u64): the target record's in-memory
                     ///< apply failed after the record escaped to the file;
                     ///< recovery must not redo it
};

/// Little-endian payload builders (append to `out`).
void WalPutU32(std::string* out, uint32_t v);
void WalPutU64(std::string* out, uint64_t v);
void WalPutI64(std::string* out, int64_t v);
void WalPutString(std::string* out, std::string_view s);

/// Cursor over a record payload; every Get* returns false on underrun.
class WalPayloadReader {
 public:
  explicit WalPayloadReader(std::string_view payload) : rest_(payload) {}

  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetI64(int64_t* v);
  bool GetString(std::string* s);
  bool AtEnd() const { return rest_.empty(); }

 private:
  std::string_view rest_;
};

/// Cumulative WAL counters (mirrored into the obs registry by Database).
struct WalStats {
  uint64_t appends = 0;
  uint64_t appended_bytes = 0;
  uint64_t flushes = 0;
  uint64_t syncs = 0;
};

/// The log itself. Thread-safe: appends are serialized by the Database's
/// writer mutex, but Sync/Flush/accessors may race with them (eviction
/// barriers, group-commit followers, metric callbacks), so every member
/// locks the internal mutex.
class Wal {
 public:
  /// Opens (or creates) the log at `path`. An existing log is scanned to the
  /// end of its intact prefix: the append position lands there, so a torn
  /// tail is silently overwritten by subsequent appends.
  static util::Result<std::unique_ptr<Wal>> Open(std::string path);

  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Stages one record in the user-space buffer and returns its LSN. Not
  /// durable (or even visible to Replay) until Flush/Sync. Failpoint:
  /// "wal.append".
  util::Result<uint64_t> Append(WalRecordType type, std::string_view payload);

  /// Writes all staged records to the file (still not durable).
  util::Status Flush();

  /// Flush + fdatasync: everything appended so far is committed when this
  /// returns OK. Group commit: when another caller's sync already covers
  /// this caller's records, it waits for that barrier instead of issuing
  /// its own — one fdatasync per commit window. Failpoint: "wal.sync".
  util::Status Sync();

  /// Drops staged-but-unflushed records — the in-process analogue of losing
  /// the un-synced tail to a crash. For Database::CrashForTesting only.
  void DiscardUnflushed();

  /// Position token for TryRollback; capture immediately before an Append.
  struct AppendMark {
    uint64_t lsn = 0;           ///< the LSN the next Append will assign
    uint64_t buffer_bytes = 0;  ///< staged bytes at capture time
  };
  AppendMark Mark() const;

  /// Unstages every record appended since `mark` — the rollback path for a
  /// record whose in-memory apply failed after it was logged. Returns false
  /// (log untouched) when any of those records already reached the file (a
  /// flush ran since the mark, e.g. an eviction barrier inside the apply);
  /// the caller must then log a kAbort record instead.
  bool TryRollback(const AppendMark& mark);

  /// Replays every intact record from the header on, in LSN order,
  /// stopping cleanly at a torn or corrupt tail. Replays only what Flush
  /// made visible; staged bytes are not seen.
  util::Status Replay(
      const std::function<util::Status(uint64_t lsn, WalRecordType type,
                                       std::string_view payload)>& apply);

  /// Checkpoint truncation: drops all records and starts a fresh header at
  /// `base_lsn` (durably). LSNs continue from there.
  util::Status Reset(uint64_t base_lsn);

  /// LSN the next Append will receive.
  uint64_t next_lsn() const;
  /// LSN of the newest record covered by a successful Sync (0 = none).
  uint64_t synced_lsn() const;
  /// LSN of the newest record written to the file (>= synced_lsn). In the
  /// in-process crash model, flushed-but-unsynced records survive
  /// CrashForTesting — the recovery oracle uses this as the upper bound of
  /// the recoverable prefix.
  uint64_t flushed_lsn() const;
  /// First LSN of the current log generation (checkpoint horizon).
  uint64_t base_lsn() const;
  /// Bytes in the log file plus staged bytes.
  uint64_t size_bytes() const;

  /// Snapshot of the counters (copy: callers may race with committers).
  WalStats stats() const;

  const std::string& path() const { return path_; }

 private:
  explicit Wal(std::string path);

  util::Status WriteHeader(uint64_t base_lsn);
  util::Status ScanExisting();
  util::Status FlushLocked();

  std::string path_;
  int fd_ = -1;

  /// Guards every mutable member below. fdatasync itself runs with the
  /// mutex released (see Sync); `sync_in_progress_` marks that window so
  /// group-commit followers wait on `sync_cv_` instead of double-syncing.
  mutable std::mutex mu_;
  std::condition_variable sync_cv_;
  bool sync_in_progress_ = false;
  /// Sticky result of a *real* failed fdatasync (fsyncgate: never retry).
  util::Status fsync_error_;

  uint64_t base_lsn_ = 1;
  uint64_t next_lsn_ = 1;
  uint64_t synced_lsn_ = 0;
  uint64_t flushed_lsn_ = 0;
  /// Bytes durably laid out in the file (header + flushed records).
  uint64_t file_bytes_ = 0;
  /// Staged records not yet written.
  std::string buffer_;
  WalStats stats_;
};

}  // namespace smadb::storage

#endif  // SMADB_STORAGE_WAL_H_
