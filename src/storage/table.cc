#include "storage/table.h"

#include "util/string_util.h"

namespace smadb::storage {

using util::Result;
using util::Status;

namespace {

// Slots per page given the tombstone bitmap: solve
//   header + ceil(n/8) + n * tuple_size <= kPageSize.
uint32_t ComputeCapacity(size_t tuple_size) {
  const size_t budget_bits = (kPageSize - kPageHeaderSize) * 8;
  uint32_t n = static_cast<uint32_t>(budget_bits / (tuple_size * 8 + 1));
  while (kPageHeaderSize + (n + 7) / 8 + n * tuple_size > kPageSize) --n;
  return n;
}

}  // namespace

Table::Table(BufferPool* pool, FileId file, std::string name, Schema schema,
             TableOptions options)
    : pool_(pool),
      file_(file),
      name_(std::move(name)),
      schema_(std::move(schema)),
      options_(options),
      tuples_per_page_(ComputeCapacity(schema_.tuple_size())),
      tuple_area_offset_(kPageHeaderSize + (tuples_per_page_ + 7) / 8) {}

Result<std::unique_ptr<Table>> Table::Create(BufferPool* pool,
                                             std::string name, Schema schema,
                                             TableOptions options) {
  if (schema.num_fields() == 0) {
    return Status::InvalidArgument("table '" + name + "' needs columns");
  }
  if (schema.tuple_size() > kPageSize - kPageHeaderSize) {
    return Status::InvalidArgument(
        util::Format("tuple of %zu bytes exceeds page capacity",
                     schema.tuple_size()));
  }
  if (options.bucket_pages == 0) {
    return Status::InvalidArgument("bucket_pages must be >= 1");
  }
  SMADB_ASSIGN_OR_RETURN(FileId file,
                         pool->disk()->CreateFile("tbl." + name));
  return std::unique_ptr<Table>(new Table(pool, file, std::move(name),
                                          std::move(schema), options));
}

Result<std::unique_ptr<Table>> Table::Restore(BufferPool* pool,
                                              std::string name, Schema schema,
                                              TableOptions options,
                                              uint64_t num_tuples,
                                              uint64_t num_deleted,
                                              uint32_t num_pages,
                                              uint64_t epoch) {
  SMADB_ASSIGN_OR_RETURN(FileId file, pool->disk()->FindFile("tbl." + name));
  auto table = std::unique_ptr<Table>(new Table(pool, file, std::move(name),
                                                std::move(schema), options));
  SMADB_ASSIGN_OR_RETURN(uint32_t disk_pages, pool->disk()->NumPages(file));
  if (disk_pages < num_pages) {
    return Status::Corruption(util::Format(
        "table '%s': manifest says %u pages but file holds %u",
        table->name_.c_str(), num_pages, disk_pages));
  }
  table->num_tuples_ = num_tuples;
  table->num_deleted_ = num_deleted;
  table->num_pages_ = num_pages;
  table->epoch_ = epoch;
  return table;
}

Status Table::Append(const TupleBuffer& tuple, Rid* rid) {
  if (!tuple.schema().Equals(schema_)) {
    return Status::InvalidArgument("tuple schema mismatch for table '" +
                                   name_ + "'");
  }
  PageGuard guard;
  uint32_t page_no;
  uint16_t slot;
  if (num_pages_ > 0) {
    page_no = num_pages_ - 1;
    SMADB_ASSIGN_OR_RETURN(guard, FetchPage(page_no));
    slot = PageTupleCount(*guard.page());
    if (slot >= tuples_per_page_) {
      guard.Release();
      SMADB_ASSIGN_OR_RETURN(guard, pool_->NewPage(file_, &page_no));
      ++num_pages_;
      slot = 0;
    }
  } else {
    SMADB_ASSIGN_OR_RETURN(guard, pool_->NewPage(file_, &page_no));
    ++num_pages_;
    slot = 0;
  }
  Page* page = guard.MutablePage();
  std::memcpy(page->data + tuple_area_offset_ + slot * schema_.tuple_size(),
              tuple.data(), schema_.tuple_size());
  page->WriteAt<uint16_t>(0, static_cast<uint16_t>(slot + 1));
  ++num_tuples_;
  ++epoch_;
  if (rid != nullptr) *rid = Rid{page_no, slot};
  return Status::OK();
}

Result<Rid> Table::NextRid() const {
  if (num_pages_ == 0) return Rid{0, 0};
  const uint32_t tail = num_pages_ - 1;
  SMADB_ASSIGN_OR_RETURN(PageGuard guard, FetchPage(tail));
  const uint16_t slot = PageTupleCount(*guard.page());
  if (slot >= tuples_per_page_) return Rid{num_pages_, 0};
  return Rid{tail, slot};
}

Status Table::ApplyInsert(Rid rid, std::string_view tuple_bytes,
                          uint64_t epoch_after) {
  if (tuple_bytes.size() != schema_.tuple_size()) {
    return Status::Corruption(util::Format(
        "replayed tuple of %zu bytes, table '%s' expects %zu",
        tuple_bytes.size(), name_.c_str(), schema_.tuple_size()));
  }
  if (rid.slot >= tuples_per_page_) {
    return Status::Corruption(
        util::Format("replayed slot %u beyond page capacity %u", rid.slot,
                     tuples_per_page_));
  }
  // Materialize any pages between the flushed prefix and the logged
  // position. Pages the crash already flushed are reused as-is.
  SMADB_ASSIGN_OR_RETURN(uint32_t disk_pages, pool_->disk()->NumPages(file_));
  while (disk_pages <= rid.page_no) {
    uint32_t page_no;
    SMADB_ASSIGN_OR_RETURN(PageGuard guard, pool_->NewPage(file_, &page_no));
    ++disk_pages;
  }
  num_pages_ = std::max(num_pages_, rid.page_no + 1);
  SMADB_ASSIGN_OR_RETURN(PageGuard guard, FetchPage(rid.page_no));
  Page* page = guard.MutablePage();
  std::memcpy(page->data + tuple_area_offset_ + rid.slot * schema_.tuple_size(),
              tuple_bytes.data(), schema_.tuple_size());
  if (PageTupleCount(*page) < rid.slot + 1) {
    page->WriteAt<uint16_t>(0, static_cast<uint16_t>(rid.slot + 1));
  }
  // Canonical insert state: live. A later delete record re-tombstones it.
  page->data[kPageHeaderSize + rid.slot / 8] &=
      static_cast<uint8_t>(~(1u << (rid.slot % 8)));
  ++num_tuples_;
  epoch_ = epoch_after;
  return Status::OK();
}

Status Table::ApplyUpdate(Rid rid, size_t col, const util::Value& v,
                          uint64_t epoch_after) {
  if (rid.page_no >= num_pages_ || col >= schema_.num_fields()) {
    return Status::Corruption(
        util::Format("replayed update outside table '%s' (page %u, col %zu)",
                     name_.c_str(), rid.page_no, col));
  }
  SMADB_ASSIGN_OR_RETURN(PageGuard guard, FetchPage(rid.page_no));
  TupleBuffer scratch(&schema_);
  scratch.SetValue(col, v);
  Page* page = guard.MutablePage();
  uint8_t* tuple =
      page->data + tuple_area_offset_ + rid.slot * schema_.tuple_size();
  std::memcpy(tuple + schema_.offset(col),
              scratch.data() + schema_.offset(col), schema_.field(col).width());
  epoch_ = epoch_after;
  return Status::OK();
}

Status Table::ApplyDelete(Rid rid, uint64_t epoch_after) {
  if (rid.page_no >= num_pages_) {
    return Status::Corruption(util::Format(
        "replayed delete outside table '%s' (page %u)", name_.c_str(),
        rid.page_no));
  }
  SMADB_ASSIGN_OR_RETURN(PageGuard guard, FetchPage(rid.page_no));
  Page* page = guard.MutablePage();
  page->data[kPageHeaderSize + rid.slot / 8] |=
      static_cast<uint8_t>(1u << (rid.slot % 8));
  ++num_deleted_;
  epoch_ = epoch_after;
  return Status::OK();
}

Result<TupleBuffer> Table::ReadTuple(Rid rid) {
  if (rid.page_no >= num_pages_) {
    return Status::OutOfRange(util::Format("page %u >= %u", rid.page_no,
                                           num_pages_));
  }
  SMADB_ASSIGN_OR_RETURN(PageGuard guard, FetchPage(rid.page_no));
  if (rid.slot >= PageTupleCount(*guard.page())) {
    return Status::OutOfRange(util::Format("slot %u beyond page tuple count",
                                           rid.slot));
  }
  if (PageSlotDeleted(*guard.page(), rid.slot)) {
    return Status::NotFound("tuple is deleted");
  }
  TupleBuffer out(&schema_);
  TupleRef ref = PageTuple(*guard.page(), rid.slot);
  for (size_t c = 0; c < schema_.num_fields(); ++c) {
    out.SetValue(c, ref.GetValue(c));
  }
  return out;
}

Status Table::UpdateColumn(Rid rid, size_t col, const util::Value& v) {
  if (rid.page_no >= num_pages_) {
    return Status::OutOfRange(util::Format("page %u >= %u", rid.page_no,
                                           num_pages_));
  }
  if (col >= schema_.num_fields()) {
    return Status::OutOfRange(util::Format("column %zu out of range", col));
  }
  SMADB_ASSIGN_OR_RETURN(PageGuard guard, FetchPage(rid.page_no));
  if (rid.slot >= PageTupleCount(*guard.page())) {
    return Status::OutOfRange(util::Format("slot %u beyond page tuple count",
                                           rid.slot));
  }
  if (PageSlotDeleted(*guard.page(), rid.slot)) {
    return Status::NotFound("tuple is deleted");
  }
  // Assemble the new column bytes via a scratch buffer, then splice in place.
  TupleBuffer scratch(&schema_);
  scratch.SetValue(col, v);
  Page* page = guard.MutablePage();
  uint8_t* tuple =
      page->data + tuple_area_offset_ + rid.slot * schema_.tuple_size();
  std::memcpy(tuple + schema_.offset(col), scratch.data() + schema_.offset(col),
              schema_.field(col).width());
  ++epoch_;
  return Status::OK();
}

Status Table::Vacuum() {
  if (num_deleted_ == 0) return Status::OK();
  const size_t bitmap_bytes = (tuples_per_page_ + 7) / 8;
  for (uint32_t p = 0; p < num_pages_; ++p) {
    SMADB_ASSIGN_OR_RETURN(PageGuard guard, FetchPage(p));
    const uint16_t n = PageTupleCount(*guard.page());
    bool any_deleted = false;
    for (uint16_t s = 0; s < n && !any_deleted; ++s) {
      any_deleted = PageSlotDeleted(*guard.page(), s);
    }
    if (!any_deleted) continue;
    Page* page = guard.MutablePage();
    uint16_t write = 0;
    for (uint16_t s = 0; s < n; ++s) {
      if (PageSlotDeleted(*page, s)) continue;
      if (write != s) {
        std::memmove(
            page->data + tuple_area_offset_ + write * schema_.tuple_size(),
            page->data + tuple_area_offset_ + s * schema_.tuple_size(),
            schema_.tuple_size());
      }
      ++write;
    }
    std::memset(page->data + kPageHeaderSize, 0, bitmap_bytes);
    page->WriteAt<uint16_t>(0, write);
  }
  num_tuples_ -= num_deleted_;
  num_deleted_ = 0;
  return Status::OK();
}

Status Table::DeleteTuple(Rid rid) {
  if (rid.page_no >= num_pages_) {
    return Status::OutOfRange(util::Format("page %u >= %u", rid.page_no,
                                           num_pages_));
  }
  SMADB_ASSIGN_OR_RETURN(PageGuard guard, FetchPage(rid.page_no));
  if (rid.slot >= PageTupleCount(*guard.page())) {
    return Status::OutOfRange(util::Format("slot %u beyond page tuple count",
                                           rid.slot));
  }
  if (PageSlotDeleted(*guard.page(), rid.slot)) {
    return Status::NotFound("tuple already deleted");
  }
  Page* page = guard.MutablePage();
  page->data[kPageHeaderSize + rid.slot / 8] |=
      static_cast<uint8_t>(1u << (rid.slot % 8));
  ++num_deleted_;
  ++epoch_;
  return Status::OK();
}

}  // namespace smadb::storage
