#include "storage/table.h"

#include "util/string_util.h"

namespace smadb::storage {

using util::Result;
using util::Status;

namespace {

// Slots per page given the tombstone bitmap: solve
//   header + ceil(n/8) + n * tuple_size <= kPageSize.
uint32_t ComputeCapacity(size_t tuple_size) {
  const size_t budget_bits = (kPageSize - kPageHeaderSize) * 8;
  uint32_t n = static_cast<uint32_t>(budget_bits / (tuple_size * 8 + 1));
  while (kPageHeaderSize + (n + 7) / 8 + n * tuple_size > kPageSize) --n;
  return n;
}

}  // namespace

Table::Table(BufferPool* pool, FileId file, std::string name, Schema schema,
             TableOptions options)
    : pool_(pool),
      file_(file),
      name_(std::move(name)),
      schema_(std::move(schema)),
      options_(options),
      tuples_per_page_(ComputeCapacity(schema_.tuple_size())),
      tuple_area_offset_(kPageHeaderSize + (tuples_per_page_ + 7) / 8) {}

Result<std::unique_ptr<Table>> Table::Create(BufferPool* pool,
                                             std::string name, Schema schema,
                                             TableOptions options) {
  if (schema.num_fields() == 0) {
    return Status::InvalidArgument("table '" + name + "' needs columns");
  }
  if (schema.tuple_size() > kPageSize - kPageHeaderSize) {
    return Status::InvalidArgument(
        util::Format("tuple of %zu bytes exceeds page capacity",
                     schema.tuple_size()));
  }
  if (options.bucket_pages == 0) {
    return Status::InvalidArgument("bucket_pages must be >= 1");
  }
  SMADB_ASSIGN_OR_RETURN(FileId file,
                         pool->disk()->CreateFile("tbl." + name));
  return std::unique_ptr<Table>(new Table(pool, file, std::move(name),
                                          std::move(schema), options));
}

Result<std::unique_ptr<Table>> Table::Restore(BufferPool* pool,
                                              std::string name, Schema schema,
                                              TableOptions options,
                                              uint64_t num_tuples,
                                              uint64_t num_deleted,
                                              uint32_t num_pages,
                                              uint64_t epoch) {
  SMADB_ASSIGN_OR_RETURN(FileId file, pool->disk()->FindFile("tbl." + name));
  auto table = std::unique_ptr<Table>(new Table(pool, file, std::move(name),
                                                std::move(schema), options));
  SMADB_ASSIGN_OR_RETURN(uint32_t disk_pages, pool->disk()->NumPages(file));
  if (disk_pages < num_pages) {
    return Status::Corruption(util::Format(
        "table '%s': manifest says %u pages but file holds %u",
        table->name_.c_str(), num_pages, disk_pages));
  }
  table->num_tuples_ = num_tuples;
  table->num_deleted_ = num_deleted;
  table->num_pages_ = num_pages;
  table->epoch_ = epoch;
  SMADB_RETURN_NOT_OK(table->RefreshAppendState());
  // The tail-page peek above must not leave the pool warm: a fresh open
  // promises cold data reads (scrubbing and checksum verification rely on
  // the next access faulting to disk, not hitting a cached frame).
  SMADB_RETURN_NOT_OK(pool->DropFile(file));
  return table;
}

Status Table::RefreshAppendState() {
  const uint32_t pages = num_pages_.load(std::memory_order_relaxed);
  if (pages == 0) {
    append_state_.store(0, std::memory_order_release);
    return Status::OK();
  }
  SMADB_ASSIGN_OR_RETURN(PageGuard guard, FetchPage(pages - 1));
  const uint16_t tail = PageTupleCount(*guard.page());
  append_state_.store((static_cast<uint64_t>(pages) << 16) | tail,
                      std::memory_order_release);
  return Status::OK();
}

TableSnapshot Table::CaptureSnapshot() const {
  TableSnapshot snap;
  const uint64_t word = append_state_.load(std::memory_order_acquire);
  snap.pages = static_cast<uint32_t>(word >> 16);
  snap.tail_count = static_cast<uint16_t>(word & 0xffff);
  if (snap.pages == 0) return snap;
  snap.buckets =
      (snap.pages + options_.bucket_pages - 1) / options_.bucket_pages;
  snap.boundary_bucket = (snap.pages - 1) / options_.bucket_pages;
  // The tail bucket's SMA entries keep absorbing post-snapshot appends
  // unless the snapshot ends exactly on a bucket boundary with a full tail
  // page — only then is the last snapshot bucket closed for good.
  snap.demote_boundary = !(snap.tail_count == tuples_per_page_ &&
                           snap.pages % options_.bucket_pages == 0);
  return snap;
}

Status Table::Append(const TupleBuffer& tuple, Rid* rid) {
  if (!tuple.schema().Equals(schema_)) {
    return Status::InvalidArgument("tuple schema mismatch for table '" +
                                   name_ + "'");
  }
  uint32_t pages = num_pages_.load(std::memory_order_relaxed);
  PageGuard guard;
  uint32_t page_no;
  uint16_t slot;
  if (pages > 0) {
    page_no = pages - 1;
    SMADB_ASSIGN_OR_RETURN(guard, FetchPage(page_no));
    slot = PageTupleCount(*guard.page());
    if (slot >= tuples_per_page_) {
      guard.Release();
      SMADB_ASSIGN_OR_RETURN(guard, pool_->NewPage(file_, &page_no));
      ++pages;
      slot = 0;
    }
  } else {
    SMADB_ASSIGN_OR_RETURN(guard, pool_->NewPage(file_, &page_no));
    ++pages;
    slot = 0;
  }
  Page* page = guard.MutablePage();
  std::memcpy(page->data + tuple_area_offset_ + slot * schema_.tuple_size(),
              tuple.data(), schema_.tuple_size());
  page->WriteAt<uint16_t>(0, static_cast<uint16_t>(slot + 1));
  num_pages_.store(pages, std::memory_order_release);
  num_tuples_.fetch_add(1, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_release);
  // Publish the new prefix AFTER the tuple bytes and header: a snapshot that
  // sees this word sees the fully-written tuple it covers.
  append_state_.store(
      (static_cast<uint64_t>(pages) << 16) | static_cast<uint16_t>(slot + 1),
      std::memory_order_release);
  if (rid != nullptr) *rid = Rid{page_no, slot};
  return Status::OK();
}

Result<Rid> Table::NextRid() const {
  const uint32_t pages = num_pages();
  if (pages == 0) return Rid{0, 0};
  const uint32_t tail = pages - 1;
  SMADB_ASSIGN_OR_RETURN(PageGuard guard, FetchPage(tail));
  const uint16_t slot = PageTupleCount(*guard.page());
  if (slot >= tuples_per_page_) return Rid{pages, 0};
  return Rid{tail, slot};
}

Status Table::ApplyInsert(Rid rid, std::string_view tuple_bytes,
                          uint64_t epoch_after) {
  if (tuple_bytes.size() != schema_.tuple_size()) {
    return Status::Corruption(util::Format(
        "replayed tuple of %zu bytes, table '%s' expects %zu",
        tuple_bytes.size(), name_.c_str(), schema_.tuple_size()));
  }
  if (rid.slot >= tuples_per_page_) {
    return Status::Corruption(
        util::Format("replayed slot %u beyond page capacity %u", rid.slot,
                     tuples_per_page_));
  }
  // Materialize any pages between the flushed prefix and the logged
  // position. Pages the crash already flushed are reused as-is.
  SMADB_ASSIGN_OR_RETURN(uint32_t disk_pages, pool_->disk()->NumPages(file_));
  while (disk_pages <= rid.page_no) {
    uint32_t page_no;
    SMADB_ASSIGN_OR_RETURN(PageGuard guard, pool_->NewPage(file_, &page_no));
    ++disk_pages;
  }
  num_pages_.store(std::max(num_pages_.load(std::memory_order_relaxed),
                            rid.page_no + 1),
                   std::memory_order_release);
  SMADB_ASSIGN_OR_RETURN(PageGuard guard, FetchPage(rid.page_no));
  Page* page = guard.MutablePage();
  std::memcpy(page->data + tuple_area_offset_ + rid.slot * schema_.tuple_size(),
              tuple_bytes.data(), schema_.tuple_size());
  if (PageTupleCount(*page) < rid.slot + 1) {
    page->WriteAt<uint16_t>(0, static_cast<uint16_t>(rid.slot + 1));
  }
  // Canonical insert state: live. A later delete record re-tombstones it.
  page->data[kPageHeaderSize + rid.slot / 8] &=
      static_cast<uint8_t>(~(1u << (rid.slot % 8)));
  num_tuples_.fetch_add(1, std::memory_order_release);
  epoch_.store(epoch_after, std::memory_order_release);
  return RefreshAppendState();
}

Status Table::ApplyUpdate(Rid rid, size_t col, const util::Value& v,
                          uint64_t epoch_after) {
  if (rid.page_no >= num_pages() || col >= schema_.num_fields()) {
    return Status::Corruption(
        util::Format("replayed update outside table '%s' (page %u, col %zu)",
                     name_.c_str(), rid.page_no, col));
  }
  SMADB_ASSIGN_OR_RETURN(PageGuard guard, FetchPage(rid.page_no));
  TupleBuffer scratch(&schema_);
  scratch.SetValue(col, v);
  Page* page = guard.MutablePage();
  uint8_t* tuple =
      page->data + tuple_area_offset_ + rid.slot * schema_.tuple_size();
  std::memcpy(tuple + schema_.offset(col),
              scratch.data() + schema_.offset(col), schema_.field(col).width());
  epoch_.store(epoch_after, std::memory_order_release);
  return Status::OK();
}

Status Table::ApplyDelete(Rid rid, uint64_t epoch_after) {
  if (rid.page_no >= num_pages()) {
    return Status::Corruption(util::Format(
        "replayed delete outside table '%s' (page %u)", name_.c_str(),
        rid.page_no));
  }
  SMADB_ASSIGN_OR_RETURN(PageGuard guard, FetchPage(rid.page_no));
  Page* page = guard.MutablePage();
  page->data[kPageHeaderSize + rid.slot / 8] |=
      static_cast<uint8_t>(1u << (rid.slot % 8));
  num_deleted_.fetch_add(1, std::memory_order_release);
  epoch_.store(epoch_after, std::memory_order_release);
  return Status::OK();
}

Result<TupleBuffer> Table::ReadTuple(Rid rid) {
  if (rid.page_no >= num_pages()) {
    return Status::OutOfRange(util::Format("page %u >= %u", rid.page_no,
                                           num_pages()));
  }
  SMADB_ASSIGN_OR_RETURN(PageGuard guard, FetchPage(rid.page_no));
  if (rid.slot >= PageTupleCount(*guard.page())) {
    return Status::OutOfRange(util::Format("slot %u beyond page tuple count",
                                           rid.slot));
  }
  if (PageSlotDeleted(*guard.page(), rid.slot)) {
    return Status::NotFound("tuple is deleted");
  }
  TupleBuffer out(&schema_);
  TupleRef ref = PageTuple(*guard.page(), rid.slot);
  for (size_t c = 0; c < schema_.num_fields(); ++c) {
    out.SetValue(c, ref.GetValue(c));
  }
  return out;
}

Status Table::UpdateColumn(Rid rid, size_t col, const util::Value& v) {
  if (rid.page_no >= num_pages()) {
    return Status::OutOfRange(util::Format("page %u >= %u", rid.page_no,
                                           num_pages()));
  }
  if (col >= schema_.num_fields()) {
    return Status::OutOfRange(util::Format("column %zu out of range", col));
  }
  SMADB_ASSIGN_OR_RETURN(PageGuard guard, FetchPage(rid.page_no));
  if (rid.slot >= PageTupleCount(*guard.page())) {
    return Status::OutOfRange(util::Format("slot %u beyond page tuple count",
                                           rid.slot));
  }
  if (PageSlotDeleted(*guard.page(), rid.slot)) {
    return Status::NotFound("tuple is deleted");
  }
  // Assemble the new column bytes via a scratch buffer, then splice in place.
  TupleBuffer scratch(&schema_);
  scratch.SetValue(col, v);
  Page* page = guard.MutablePage();
  uint8_t* tuple =
      page->data + tuple_area_offset_ + rid.slot * schema_.tuple_size();
  std::memcpy(tuple + schema_.offset(col), scratch.data() + schema_.offset(col),
              schema_.field(col).width());
  epoch_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

Status Table::Vacuum() {
  const uint64_t deleted = num_deleted_.load(std::memory_order_relaxed);
  if (deleted == 0) return Status::OK();
  const size_t bitmap_bytes = (tuples_per_page_ + 7) / 8;
  const uint32_t pages = num_pages();
  for (uint32_t p = 0; p < pages; ++p) {
    SMADB_ASSIGN_OR_RETURN(PageGuard guard, FetchPage(p));
    const uint16_t n = PageTupleCount(*guard.page());
    bool any_deleted = false;
    for (uint16_t s = 0; s < n && !any_deleted; ++s) {
      any_deleted = PageSlotDeleted(*guard.page(), s);
    }
    if (!any_deleted) continue;
    Page* page = guard.MutablePage();
    uint16_t write = 0;
    for (uint16_t s = 0; s < n; ++s) {
      if (PageSlotDeleted(*page, s)) continue;
      if (write != s) {
        std::memmove(
            page->data + tuple_area_offset_ + write * schema_.tuple_size(),
            page->data + tuple_area_offset_ + s * schema_.tuple_size(),
            schema_.tuple_size());
      }
      ++write;
    }
    std::memset(page->data + kPageHeaderSize, 0, bitmap_bytes);
    page->WriteAt<uint16_t>(0, write);
  }
  num_tuples_.fetch_sub(deleted, std::memory_order_release);
  num_deleted_.store(0, std::memory_order_release);
  // The tail page's slot count may have shrunk; re-derive the append word.
  return RefreshAppendState();
}

Status Table::DeleteTuple(Rid rid) {
  if (rid.page_no >= num_pages()) {
    return Status::OutOfRange(util::Format("page %u >= %u", rid.page_no,
                                           num_pages()));
  }
  SMADB_ASSIGN_OR_RETURN(PageGuard guard, FetchPage(rid.page_no));
  if (rid.slot >= PageTupleCount(*guard.page())) {
    return Status::OutOfRange(util::Format("slot %u beyond page tuple count",
                                           rid.slot));
  }
  if (PageSlotDeleted(*guard.page(), rid.slot)) {
    return Status::NotFound("tuple already deleted");
  }
  Page* page = guard.MutablePage();
  page->data[kPageHeaderSize + rid.slot / 8] |=
      static_cast<uint8_t>(1u << (rid.slot % 8));
  num_deleted_.fetch_add(1, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

}  // namespace smadb::storage
