#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/crc32c.h"
#include "util/fault.h"
#include "util/string_util.h"

namespace smadb::storage {

using util::Result;
using util::Status;

namespace {

constexpr char kWalMagic[8] = {'s', 'm', 'a', 'd', 'b', 'w', 'a', 'l'};
constexpr uint32_t kWalVersion = 1;
// magic[8] + version u32 + base_lsn u64.
constexpr uint64_t kHeaderBytes = 8 + 4 + 8;
// payload_len u32 + crc u32 + lsn u64 + type u8.
constexpr uint64_t kFrameBytes = 4 + 4 + 8 + 1;
// Sanity bound on a single payload; anything larger is a torn/corrupt frame.
constexpr uint32_t kMaxPayload = 1u << 28;

void EncodeU32(uint8_t* out, uint32_t v) {
  out[0] = static_cast<uint8_t>(v);
  out[1] = static_cast<uint8_t>(v >> 8);
  out[2] = static_cast<uint8_t>(v >> 16);
  out[3] = static_cast<uint8_t>(v >> 24);
}

void EncodeU64(uint8_t* out, uint64_t v) {
  EncodeU32(out, static_cast<uint32_t>(v));
  EncodeU32(out + 4, static_cast<uint32_t>(v >> 32));
}

uint32_t DecodeU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t DecodeU64(const uint8_t* p) {
  return static_cast<uint64_t>(DecodeU32(p)) |
         (static_cast<uint64_t>(DecodeU32(p + 4)) << 32);
}

Status ErrnoError(const std::string& op, const std::string& path) {
  const std::string msg = op + " '" + path + "': " + std::strerror(errno);
  if (errno == ENOSPC || errno == EDQUOT) return Status::DiskFull(msg);
  return Status::IOError(msg);
}

Status PReadFull(int fd, void* buf, size_t n, uint64_t off,
                 const std::string& path, bool* hit_eof) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  size_t done = 0;
  *hit_eof = false;
  while (done < n) {
    const ssize_t r = ::pread(fd, p + done, n - done,
                              static_cast<off_t>(off + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("pread", path);
    }
    if (r == 0) {
      *hit_eof = true;
      return Status::OK();
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status PWriteFull(int fd, const void* buf, size_t n, uint64_t off,
                  const std::string& path) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    const ssize_t r = ::pwrite(fd, p + done, n - done,
                               static_cast<off_t>(off + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("pwrite", path);
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

/// CRC-32C over the protected part of one frame: lsn, type, payload.
uint32_t FrameCrc(uint64_t lsn, uint8_t type, std::string_view payload) {
  uint8_t head[9];
  EncodeU64(head, lsn);
  head[8] = type;
  uint32_t crc = util::Crc32c(head, sizeof(head));
  return util::Crc32c(payload.data(), payload.size(), crc);
}

}  // namespace

// ---------------------------------------------------------------------------
// Payload builders / reader.

void WalPutU32(std::string* out, uint32_t v) {
  uint8_t b[4];
  EncodeU32(b, v);
  out->append(reinterpret_cast<const char*>(b), sizeof(b));
}

void WalPutU64(std::string* out, uint64_t v) {
  uint8_t b[8];
  EncodeU64(b, v);
  out->append(reinterpret_cast<const char*>(b), sizeof(b));
}

void WalPutI64(std::string* out, int64_t v) {
  WalPutU64(out, static_cast<uint64_t>(v));
}

void WalPutString(std::string* out, std::string_view s) {
  WalPutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool WalPayloadReader::GetU32(uint32_t* v) {
  if (rest_.size() < 4) return false;
  *v = DecodeU32(reinterpret_cast<const uint8_t*>(rest_.data()));
  rest_.remove_prefix(4);
  return true;
}

bool WalPayloadReader::GetU64(uint64_t* v) {
  if (rest_.size() < 8) return false;
  *v = DecodeU64(reinterpret_cast<const uint8_t*>(rest_.data()));
  rest_.remove_prefix(8);
  return true;
}

bool WalPayloadReader::GetI64(int64_t* v) {
  uint64_t u;
  if (!GetU64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool WalPayloadReader::GetString(std::string* s) {
  uint32_t len;
  if (!GetU32(&len)) return false;
  if (rest_.size() < len) return false;
  s->assign(rest_.data(), len);
  rest_.remove_prefix(len);
  return true;
}

// ---------------------------------------------------------------------------
// Wal.

Wal::Wal(std::string path) : path_(std::move(path)) {}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<Wal>> Wal::Open(std::string path) {
  auto wal = std::unique_ptr<Wal>(new Wal(std::move(path)));
  wal->fd_ = ::open(wal->path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (wal->fd_ < 0) return ErrnoError("open", wal->path_);
  struct stat st;
  if (::fstat(wal->fd_, &st) != 0) return ErrnoError("fstat", wal->path_);
  if (static_cast<uint64_t>(st.st_size) < kHeaderBytes) {
    // Fresh (or torn-at-birth) log: lay down a clean header, durably — a
    // crash before the header's sync must not leave a garbage file the next
    // Open rejects as corrupt.
    SMADB_RETURN_NOT_OK(wal->WriteHeader(1));
    if (::fdatasync(wal->fd_) != 0) {
      return ErrnoError("fdatasync", wal->path_);
    }
    wal->base_lsn_ = 1;
    wal->next_lsn_ = 1;
    wal->file_bytes_ = kHeaderBytes;
  } else {
    SMADB_RETURN_NOT_OK(wal->ScanExisting());
  }
  return wal;
}

Status Wal::WriteHeader(uint64_t base_lsn) {
  uint8_t header[kHeaderBytes];
  std::memcpy(header, kWalMagic, sizeof(kWalMagic));
  EncodeU32(header + 8, kWalVersion);
  EncodeU64(header + 12, base_lsn);
  return PWriteFull(fd_, header, sizeof(header), 0, path_);
}

Status Wal::ScanExisting() {
  uint8_t header[kHeaderBytes];
  bool eof = false;
  SMADB_RETURN_NOT_OK(PReadFull(fd_, header, sizeof(header), 0, path_, &eof));
  if (eof || std::memcmp(header, kWalMagic, sizeof(kWalMagic)) != 0) {
    // A header-sized file with bad magic is a torn header write (a fresh
    // Open or a Reset that crashed before its fdatasync). Such a log never
    // held a record, so no committed data is at stake: rewrite it as empty
    // rather than failing hard. Anything larger really is corruption.
    struct stat st;
    if (::fstat(fd_, &st) == 0 &&
        static_cast<uint64_t>(st.st_size) == kHeaderBytes) {
      SMADB_RETURN_NOT_OK(WriteHeader(1));
      if (::fdatasync(fd_) != 0) return ErrnoError("fdatasync", path_);
      base_lsn_ = 1;
      next_lsn_ = 1;
      flushed_lsn_ = 0;
      synced_lsn_ = 0;
      file_bytes_ = kHeaderBytes;
      return Status::OK();
    }
    return Status::Corruption("bad WAL magic in '" + path_ + "'");
  }
  const uint32_t version = DecodeU32(header + 8);
  if (version != kWalVersion) {
    return Status::Corruption(
        util::Format("unsupported WAL version %u in '%s'", version,
                     path_.c_str()));
  }
  base_lsn_ = DecodeU64(header + 12);

  // Walk the intact prefix. LSNs are dense, so a stale remnant beyond an
  // overwritten torn tail fails the expected-LSN check even if its CRC
  // happens to hold.
  uint64_t off = kHeaderBytes;
  uint64_t expected_lsn = base_lsn_;
  std::string payload;
  while (true) {
    uint8_t frame[kFrameBytes];
    SMADB_RETURN_NOT_OK(
        PReadFull(fd_, frame, sizeof(frame), off, path_, &eof));
    if (eof) break;
    const uint32_t payload_len = DecodeU32(frame);
    const uint32_t crc = DecodeU32(frame + 4);
    const uint64_t lsn = DecodeU64(frame + 8);
    const uint8_t type = frame[16];
    if (payload_len > kMaxPayload || lsn != expected_lsn) break;
    payload.resize(payload_len);
    SMADB_RETURN_NOT_OK(
        PReadFull(fd_, payload.data(), payload_len, off + kFrameBytes, path_,
                  &eof));
    if (eof) break;
    if (FrameCrc(lsn, type, payload) != crc) break;
    off += kFrameBytes + payload_len;
    expected_lsn = lsn + 1;
  }
  file_bytes_ = off;
  next_lsn_ = expected_lsn;
  // Whatever survived in the file is by definition the durable prefix.
  flushed_lsn_ = expected_lsn - 1;
  synced_lsn_ = expected_lsn - 1;
  return Status::OK();
}

Result<uint64_t> Wal::Append(WalRecordType type, std::string_view payload) {
  std::lock_guard<std::mutex> lk(mu_);
  if (auto fk = util::fault::Hit("wal.append", path_)) {
    return util::InjectedFaultStatus(*fk, "wal.append '" + path_ + "'");
  }
  const uint64_t lsn = next_lsn_++;
  uint8_t frame[kFrameBytes];
  EncodeU32(frame, static_cast<uint32_t>(payload.size()));
  EncodeU32(frame + 4, FrameCrc(lsn, static_cast<uint8_t>(type), payload));
  EncodeU64(frame + 8, lsn);
  frame[16] = static_cast<uint8_t>(type);
  buffer_.append(reinterpret_cast<const char*>(frame), sizeof(frame));
  buffer_.append(payload);
  ++stats_.appends;
  stats_.appended_bytes += kFrameBytes + payload.size();
  return lsn;
}

Status Wal::FlushLocked() {
  if (buffer_.empty()) return Status::OK();
  SMADB_RETURN_NOT_OK(
      PWriteFull(fd_, buffer_.data(), buffer_.size(), file_bytes_, path_));
  file_bytes_ += buffer_.size();
  buffer_.clear();
  flushed_lsn_ = next_lsn_ - 1;
  ++stats_.flushes;
  return Status::OK();
}

Status Wal::Flush() {
  std::lock_guard<std::mutex> lk(mu_);
  return FlushLocked();
}

Status Wal::Sync() {
  std::unique_lock<std::mutex> lk(mu_);
  if (auto fk = util::fault::Hit("wal.sync", path_)) {
    return util::InjectedFaultStatus(*fk, "wal.sync '" + path_ + "'");
  }
  // Everything this caller has appended so far is what it needs durable.
  const uint64_t target = next_lsn_ - 1;
  while (true) {
    if (!fsync_error_.ok()) return fsync_error_;
    if (synced_lsn_ >= target) return Status::OK();  // a leader covered us
    if (!sync_in_progress_) break;                   // become the leader
    sync_cv_.wait(lk);
  }
  // Leader: flush the staged bytes (ours plus any concurrent committer's)
  // under the mutex, then run the barrier with the mutex released so those
  // committers can keep staging while the disk works.
  SMADB_RETURN_NOT_OK(FlushLocked());
  const uint64_t covered = flushed_lsn_;
  sync_in_progress_ = true;
  lk.unlock();
  const bool ok = ::fdatasync(fd_) == 0;
  Status st = ok ? Status::OK() : ErrnoError("fdatasync", path_);
  lk.lock();
  sync_in_progress_ = false;
  if (ok) {
    if (covered > synced_lsn_) synced_lsn_ = covered;
    ++stats_.syncs;
  } else {
    fsync_error_ = st;  // fsyncgate: the barrier is poisoned for good
  }
  sync_cv_.notify_all();
  return st;
}

void Wal::DiscardUnflushed() {
  std::lock_guard<std::mutex> lk(mu_);
  buffer_.clear();
  next_lsn_ = flushed_lsn_ + 1;
}

Wal::AppendMark Wal::Mark() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {next_lsn_, buffer_.size()};
}

bool Wal::TryRollback(const AppendMark& mark) {
  std::lock_guard<std::mutex> lk(mu_);
  if (next_lsn_ <= mark.lsn) return true;  // nothing appended since the mark
  if (flushed_lsn_ >= mark.lsn) return false;
  stats_.appends -= next_lsn_ - mark.lsn;
  stats_.appended_bytes -= buffer_.size() - mark.buffer_bytes;
  buffer_.resize(mark.buffer_bytes);
  next_lsn_ = mark.lsn;
  return true;
}

uint64_t Wal::next_lsn() const {
  std::lock_guard<std::mutex> lk(mu_);
  return next_lsn_;
}

uint64_t Wal::synced_lsn() const {
  std::lock_guard<std::mutex> lk(mu_);
  return synced_lsn_;
}

uint64_t Wal::flushed_lsn() const {
  std::lock_guard<std::mutex> lk(mu_);
  return flushed_lsn_;
}

uint64_t Wal::base_lsn() const {
  std::lock_guard<std::mutex> lk(mu_);
  return base_lsn_;
}

uint64_t Wal::size_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return file_bytes_ + buffer_.size();
}

WalStats Wal::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

Status Wal::Replay(
    const std::function<Status(uint64_t, WalRecordType, std::string_view)>&
        apply) {
  // Recovery-time only; the bounds snapshot keeps TSan honest if a metric
  // callback polls the accessors concurrently.
  uint64_t off = kHeaderBytes;
  uint64_t expected_lsn;
  uint64_t bytes;
  {
    std::lock_guard<std::mutex> lk(mu_);
    expected_lsn = base_lsn_;
    bytes = file_bytes_;
  }
  std::string payload;
  bool eof = false;
  while (off < bytes) {
    uint8_t frame[kFrameBytes];
    SMADB_RETURN_NOT_OK(
        PReadFull(fd_, frame, sizeof(frame), off, path_, &eof));
    if (eof) break;
    const uint32_t payload_len = DecodeU32(frame);
    const uint32_t crc = DecodeU32(frame + 4);
    const uint64_t lsn = DecodeU64(frame + 8);
    const uint8_t type = frame[16];
    if (payload_len > kMaxPayload || lsn != expected_lsn) break;
    payload.resize(payload_len);
    SMADB_RETURN_NOT_OK(
        PReadFull(fd_, payload.data(), payload_len, off + kFrameBytes, path_,
                  &eof));
    if (eof) break;
    if (FrameCrc(lsn, type, payload) != crc) break;
    SMADB_RETURN_NOT_OK(
        apply(lsn, static_cast<WalRecordType>(type), payload));
    off += kFrameBytes + payload_len;
    expected_lsn = lsn + 1;
  }
  return Status::OK();
}

Status Wal::Reset(uint64_t base_lsn) {
  std::lock_guard<std::mutex> lk(mu_);
  buffer_.clear();
  if (auto fk = util::fault::Hit("wal.reset.truncate", path_)) {
    return util::InjectedFaultStatus(*fk, "wal.reset.truncate '" + path_ +
                                              "'");
  }
  if (::ftruncate(fd_, 0) != 0) return ErrnoError("ftruncate", path_);
  if (auto fk = util::fault::Hit("wal.reset.header", path_)) {
    // The truncate already happened: model the torn state the next Open must
    // repair (0-byte log, fresh header not yet written). The in-memory file
    // position tracks the truncated reality so the object stays consistent,
    // but the instance is expected to be discarded (this is a kill-point).
    file_bytes_ = 0;
    return util::InjectedFaultStatus(*fk, "wal.reset.header '" + path_ + "'");
  }
  SMADB_RETURN_NOT_OK(WriteHeader(base_lsn));
  if (::fdatasync(fd_) != 0) return ErrnoError("fdatasync", path_);
  base_lsn_ = base_lsn;
  next_lsn_ = base_lsn;
  flushed_lsn_ = base_lsn - 1;
  synced_lsn_ = base_lsn - 1;
  file_bytes_ = kHeaderBytes;
  return Status::OK();
}

}  // namespace smadb::storage
