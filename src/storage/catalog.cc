#include "storage/catalog.h"

namespace smadb::storage {

using util::Result;
using util::Status;

Result<Table*> Catalog::CreateTable(std::string name, Schema schema,
                                    TableOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (by_name_.count(name) != 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  SMADB_ASSIGN_OR_RETURN(
      std::unique_ptr<Table> table,
      Table::Create(pool_, name, std::move(schema), options));
  Table* raw = table.get();
  by_name_[name] = tables_.size();
  tables_.push_back(std::move(table));
  return raw;
}

Result<Table*> Catalog::AttachTable(std::unique_ptr<Table> table) {
  std::lock_guard<std::mutex> lock(mu_);
  if (by_name_.count(table->name()) != 0) {
    return Status::AlreadyExists("table '" + table->name() +
                                 "' already exists");
  }
  Table* raw = table.get();
  by_name_[table->name()] = tables_.size();
  tables_.push_back(std::move(table));
  return raw;
}

Result<Table*> Catalog::GetTable(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return Status::NotFound("no table named '" + std::string(name) + "'");
  }
  return tables_[it->second].get();
}

std::vector<Table*> Catalog::Tables() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Table*> out;
  out.reserve(tables_.size());
  for (const auto& t : tables_) out.push_back(t.get());
  return out;
}

}  // namespace smadb::storage
