// Columnar batches and selection vectors: the storage-side half of the
// vectorized execution path (DESIGN.md §9).
//
// A ColumnBatch holds the decoded columns of up to `capacity` tuples from
// one bucket, one typed vector per projected column: the integral family
// (int32/int64/date/decimal) widens to raw int64 payloads — the same
// uniform representation TupleRef::GetRawInt and the SMA layer use — so
// predicate and aggregate kernels run one int64 loop regardless of the
// declared width. Doubles keep their own vector; strings are stored as
// capacity-strided zero-padded byte runs (the on-page representation),
// which makes equality a memcmp.
//
// A SelVector names the rows of a batch that survive predicate evaluation:
// either *dense* ("all n rows", the state a qualifying bucket's grade maps
// to without looking at a single value) or an explicit sorted index list.
// Operators refine it in place (Filter for AND-composition, UnionWith for
// OR) so downstream kernels only ever visit surviving rows.

#ifndef SMADB_STORAGE_COLUMN_BATCH_H_
#define SMADB_STORAGE_COLUMN_BATCH_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "storage/schema.h"
#include "storage/tuple.h"
#include "util/dcheck.h"
#include "util/value.h"

namespace smadb::storage {

class Table;
struct Page;

/// The rows of a batch a predicate has (so far) kept. Indices are row
/// numbers within one ColumnBatch, always sorted ascending and unique.
class SelVector {
 public:
  /// All `n` rows selected, without materializing indices — the form a
  /// qualifying bucket grade produces for free.
  void SelectAll(uint32_t n) {
    dense_ = true;
    n_ = n;
    idx_.clear();
  }
  void SelectNone() {
    dense_ = false;
    n_ = 0;
    idx_.clear();
  }

  bool dense() const { return dense_; }
  size_t count() const { return dense_ ? n_ : idx_.size(); }
  bool empty() const { return count() == 0; }

  /// The `k`-th selected row (k < count()).
  uint32_t row(size_t k) const {
    return dense_ ? static_cast<uint32_t>(k) : idx_[k];
  }

  /// Explicit index list; only meaningful when !dense().
  const std::vector<uint32_t>& indices() const {
    SMADB_DCHECK(!dense_);
    return idx_;
  }

  /// Keeps only rows for which `keep(row)` holds (AND-refinement). Stays
  /// dense when every row survives, so fully-selective predicates cost no
  /// index materialization.
  template <typename Keep>
  void Filter(Keep keep) {
    if (dense_) {
      uint32_t r = 0;
      while (r < n_ && keep(r)) ++r;
      if (r == n_) return;  // all rows pass; stay dense
      idx_.clear();
      idx_.reserve(n_);
      for (uint32_t i = 0; i < r; ++i) idx_.push_back(i);
      for (uint32_t i = r + 1; i < n_; ++i) {
        if (keep(i)) idx_.push_back(i);
      }
      dense_ = false;
      n_ = 0;
      return;
    }
    size_t w = 0;
    for (size_t k = 0; k < idx_.size(); ++k) {
      if (keep(idx_[k])) idx_[w++] = idx_[k];
    }
    idx_.resize(w);
  }

  /// Merges another selection over the same batch into this one
  /// (OR-composition). Both lists are sorted, so this is a two-pointer
  /// merge; a dense side absorbs the other.
  void UnionWith(const SelVector& o) {
    if (dense_) return;
    if (o.dense_) {
      *this = o;
      return;
    }
    std::vector<uint32_t> merged;
    merged.reserve(idx_.size() + o.idx_.size());
    size_t a = 0, b = 0;
    while (a < idx_.size() && b < o.idx_.size()) {
      if (idx_[a] < o.idx_[b]) {
        merged.push_back(idx_[a++]);
      } else if (idx_[a] > o.idx_[b]) {
        merged.push_back(o.idx_[b++]);
      } else {
        merged.push_back(idx_[a]);
        ++a;
        ++b;
      }
    }
    while (a < idx_.size()) merged.push_back(idx_[a++]);
    while (b < o.idx_.size()) merged.push_back(o.idx_[b++]);
    idx_.swap(merged);
  }

 private:
  bool dense_ = false;
  uint32_t n_ = 0;                // row count when dense
  std::vector<uint32_t> idx_;     // sorted row indices when not dense
};

/// Decoded columns of up to `capacity` tuples. Reused across buckets:
/// Configure once, Clear per refill. Only projected columns are decoded;
/// touching an unprojected column is a programming error (DCHECK).
class ColumnBatch {
 public:
  /// Prepares the batch for `schema` with room for `capacity` rows.
  /// `projection` selects the columns to decode (empty = all columns); it
  /// must cover every column the consumer's predicates and expressions
  /// read.
  void Configure(const Schema* schema, size_t capacity,
                 std::vector<bool> projection = {});

  /// Drops all rows, keeping configuration and vector capacity.
  void Clear();

  const Schema& schema() const { return *schema_; }
  bool configured() const { return schema_ != nullptr; }
  size_t num_rows() const { return num_rows_; }
  size_t capacity() const { return capacity_; }
  bool full() const { return num_rows_ >= capacity_; }
  bool decoded(size_t col) const { return decoded_[col]; }
  const std::vector<bool>& projection() const { return decoded_; }

  /// Appends one tuple, decoding the projected columns (row-at-a-time
  /// fallback used by the generic Operator::NextBatch adapter).
  void AppendRow(const TupleRef& t);

  /// Bulk-decodes the live tuples of `page` (a data page of `table`, whose
  /// schema must match Configure's), starting at `first_slot`, stopping at
  /// `end_slot` or when the batch is full. Gathers column-at-a-time: one
  /// tight strided loop per projected column. Returns the first slot NOT
  /// consumed (== end_slot when the page is exhausted).
  uint16_t AppendFromPage(const Table& table, const Page& page,
                          uint16_t first_slot, uint16_t end_slot);

  /// Raw int64 payloads of an integral-family column (cents / days / ints),
  /// one per row.
  const int64_t* Ints(size_t col) const {
    SMADB_DCHECK(decoded_[col]);
    SMADB_DCHECK(schema_->field(col).type != util::TypeId::kDouble &&
                 schema_->field(col).type != util::TypeId::kString);
    return cols_[col].i64.data();
  }
  const double* Doubles(size_t col) const {
    SMADB_DCHECK(decoded_[col]);
    SMADB_DCHECK(schema_->field(col).type == util::TypeId::kDouble);
    return cols_[col].f64.data();
  }
  /// Zero-padded fixed-capacity string payloads, `capacity` bytes per row.
  const uint8_t* StringData(size_t col) const {
    SMADB_DCHECK(decoded_[col]);
    SMADB_DCHECK(schema_->field(col).type == util::TypeId::kString);
    return cols_[col].str.data();
  }
  std::string_view StringAt(size_t col, size_t row) const;

  /// Generic accessor; produces the same Value as TupleRef::GetValue on the
  /// source tuple (group keys serialized from either path must agree).
  util::Value GetValue(size_t col, size_t row) const;

  /// Re-materializes row `row` into `out` (schema must match). Requires a
  /// full projection — the row-adapter path.
  void MaterializeRow(size_t row, TupleBuffer* out) const;

  /// Estimated heap footprint of a configured batch: the bytes Configure
  /// reserves for the projected columns. Operators charge this against the
  /// query's MemoryTracker once per Configure (DESIGN.md §10).
  size_t ApproxBytes() const;

 private:
  /// Per-column storage; only the member matching the column type is used.
  struct ColumnVector {
    std::vector<int64_t> i64;
    std::vector<double> f64;
    std::vector<uint8_t> str;  // capacity-strided zero-padded bytes
  };

  const Schema* schema_ = nullptr;
  size_t capacity_ = 0;
  size_t num_rows_ = 0;
  std::vector<bool> decoded_;
  std::vector<ColumnVector> cols_;
  std::vector<uint16_t> live_slots_;  // per-page scratch for AppendFromPage
};

}  // namespace smadb::storage

#endif  // SMADB_STORAGE_COLUMN_BATCH_H_
