#include "storage/file_disk.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/crc32c.h"
#include "util/string_util.h"

namespace smadb::storage {

using util::Result;
using util::Status;

namespace {

constexpr const char kSuperblockName[] = "superblock.smadb";
constexpr const char kSuperblockMagic[] = "smadb-superblock v1";

Status ErrnoError(const std::string& op, const std::string& path) {
  const std::string msg = op + " '" + path + "': " + std::strerror(errno);
  if (errno == ENOSPC || errno == EDQUOT) return Status::DiskFull(msg);
  return Status::IOError(msg);
}

uint32_t ZeroPageCrc() {
  static const uint32_t crc = [] {
    Page p;
    p.Zero();
    return util::Crc32c(p.data, kPageSize);
  }();
  return crc;
}

Status PReadFull(int fd, void* buf, size_t n, uint64_t off,
                 const std::string& path) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    const ssize_t r = ::pread(fd, p + done, n - done,
                              static_cast<off_t>(off + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("pread", path);
    }
    if (r == 0) {
      return Status::IOError(util::Format(
          "short read from '%s': wanted %zu bytes at offset %llu, file ended",
          path.c_str(), n, static_cast<unsigned long long>(off)));
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status PWriteFull(int fd, const void* buf, size_t n, uint64_t off,
                  const std::string& path) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    const ssize_t r = ::pwrite(fd, p + done, n - done,
                               static_cast<off_t>(off + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("pwrite", path);
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

Result<uint64_t> FdSize(int fd, const std::string& path) {
  struct stat st;
  if (::fstat(fd, &st) != 0) return ErrnoError("fstat", path);
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace

FileDiskManager::FileDiskManager(std::string directory)
    : directory_(std::move(directory)) {}

FileDiskManager::~FileDiskManager() {
  for (File& f : files_) {
    if (f.pages_fd >= 0) ::close(f.pages_fd);
    if (f.crc_fd >= 0) ::close(f.crc_fd);
  }
  if (dir_fd_ >= 0) ::close(dir_fd_);
}

Result<std::unique_ptr<FileDiskManager>> FileDiskManager::Open(
    std::string directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::IOError("cannot create storage directory '" + directory +
                           "': " + ec.message());
  }
  auto mgr =
      std::unique_ptr<FileDiskManager>(new FileDiskManager(std::move(directory)));
  mgr->dir_fd_ = ::open(mgr->directory_.c_str(), O_RDONLY | O_DIRECTORY);
  if (mgr->dir_fd_ < 0) return ErrnoError("open", mgr->directory_);
  SMADB_RETURN_NOT_OK(mgr->Load());
  return mgr;
}

Status FileDiskManager::OpenSegment(FileId id, File* f, bool truncate) {
  const std::string base = directory_ + "/seg" + std::to_string(id);
  int flags = O_RDWR | O_CREAT | O_CLOEXEC;
  if (truncate) flags |= O_TRUNC;
  f->pages_fd = ::open((base + ".pages").c_str(), flags, 0644);
  if (f->pages_fd < 0) return ErrnoError("open", base + ".pages");
  f->crc_fd = ::open((base + ".crc").c_str(), flags, 0644);
  if (f->crc_fd < 0) return ErrnoError("open", base + ".crc");
  return Status::OK();
}

Status FileDiskManager::Load() {
  const std::string sb_path = directory_ + "/" + kSuperblockName;
  std::ifstream in(sb_path);
  if (!in.is_open()) return Status::OK();  // fresh directory
  std::string line;
  if (!std::getline(in, line) || line != kSuperblockMagic) {
    return Status::Corruption("bad superblock magic in '" + sb_path + "'");
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> tok = util::Split(line, ' ');
    if (tok.size() == 2 && tok[0] == "free") {
      // A removed file's id, kept so ids stay contiguous; the slot is a
      // tombstone until CreateFile reuses it.
      SMADB_ASSIGN_OR_RETURN(uint64_t free_id,
                             util::ParseU64(tok[1], "superblock"));
      if (free_id != files_.size()) {
        return Status::Corruption(util::Format(
            "superblock file ids not contiguous: got %s, expected %zu",
            tok[1].c_str(), files_.size()));
      }
      files_.emplace_back();
      continue;
    }
    if (tok.size() < 3 || tok[0] != "file") {
      return Status::Corruption("bad superblock line '" + line + "'");
    }
    SMADB_ASSIGN_OR_RETURN(uint64_t id, util::ParseU64(tok[1], "superblock"));
    if (id != files_.size()) {
      return Status::Corruption(util::Format(
          "superblock file ids not contiguous: got %llu, expected %zu",
          static_cast<unsigned long long>(id), files_.size()));
    }
    SMADB_ASSIGN_OR_RETURN(std::string name, util::UnescapeToken(tok[2]));
    File f;
    f.name = std::move(name);
    SMADB_RETURN_NOT_OK(OpenSegment(static_cast<FileId>(id), &f,
                                    /*truncate=*/false));
    const std::string base = directory_ + "/seg" + std::to_string(id);

    // Page count is derived from the segment size; a torn tail page (crash
    // mid-extension) is truncated away — WAL replay re-extends the file.
    SMADB_ASSIGN_OR_RETURN(uint64_t bytes, FdSize(f.pages_fd, base + ".pages"));
    f.num_pages = static_cast<uint32_t>(bytes / kPageSize);
    if (bytes % kPageSize != 0 &&
        ::ftruncate(f.pages_fd,
                    static_cast<off_t>(f.num_pages) * kPageSize) != 0) {
      return ErrnoError("ftruncate", base + ".pages");
    }

    // CRC sidecar: read what is covered; entries the crash lost are
    // recomputed from the stored bytes (the page itself is then the only
    // witness — acceptable, since WAL replay rewrites everything after the
    // last checkpoint).
    f.checksums.assign(f.num_pages, 0);
    SMADB_ASSIGN_OR_RETURN(uint64_t crc_bytes, FdSize(f.crc_fd, base + ".crc"));
    const uint32_t covered = std::min<uint32_t>(
        f.num_pages, static_cast<uint32_t>(crc_bytes / sizeof(uint32_t)));
    if (covered > 0) {
      SMADB_RETURN_NOT_OK(PReadFull(f.crc_fd, f.checksums.data(),
                                    covered * sizeof(uint32_t), 0,
                                    base + ".crc"));
    }
    for (uint32_t p = covered; p < f.num_pages; ++p) {
      Page page;
      SMADB_RETURN_NOT_OK(PReadFull(f.pages_fd, page.data, kPageSize,
                                    static_cast<uint64_t>(p) * kPageSize,
                                    base + ".pages"));
      f.checksums[p] = util::Crc32c(page.data, kPageSize);
    }
    if (crc_bytes > static_cast<uint64_t>(f.num_pages) * sizeof(uint32_t) &&
        ::ftruncate(f.crc_fd, static_cast<off_t>(f.num_pages) *
                                  sizeof(uint32_t)) != 0) {
      return ErrnoError("ftruncate", base + ".crc");
    }

    // Free-list entries past the derived page count are stale; drop them.
    for (size_t i = 3; i < tok.size(); ++i) {
      SMADB_ASSIGN_OR_RETURN(uint64_t page_no,
                             util::ParseU64(tok[i], "superblock"));
      if (page_no < f.num_pages) {
        f.free_pages.push_back(static_cast<uint32_t>(page_no));
      }
    }
    files_.push_back(std::move(f));
  }
  return Status::OK();
}

Status FileDiskManager::WriteSuperblock() {
  std::ostringstream out;
  out << kSuperblockMagic << "\n";
  for (size_t id = 0; id < files_.size(); ++id) {
    const File& f = files_[id];
    if (f.name.empty()) {
      out << "free " << id << "\n";
      continue;
    }
    out << "file " << id << " " << util::EscapeToken(f.name);
    for (uint32_t p : f.free_pages) out << " " << p;
    out << "\n";
  }
  const std::string text = out.str();

  const std::string tmp_path = directory_ + "/" + kSuperblockName + ".tmp";
  const std::string final_path = directory_ + "/" + kSuperblockName;
  const int fd =
      ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoError("open", tmp_path);
  Status st = PWriteFull(fd, text.data(), text.size(), 0, tmp_path);
  if (st.ok() && ::fsync(fd) != 0) st = ErrnoError("fsync", tmp_path);
  ::close(fd);
  SMADB_RETURN_NOT_OK(st);
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return ErrnoError("rename", tmp_path);
  }
  if (::fsync(dir_fd_) != 0) return ErrnoError("fsync", directory_);
  return Status::OK();
}

Status FileDiskManager::CheckBounds(FileId file, uint32_t page_no) const {
  if (file >= files_.size()) {
    return Status::InvalidArgument(util::Format("bad file id %u", file));
  }
  if (page_no >= files_[file].num_pages) {
    return Status::OutOfRange(
        util::Format("page %u out of range for file '%s' (%u pages)", page_no,
                     files_[file].name.c_str(), files_[file].num_pages));
  }
  return Status::OK();
}

Result<FileId> FileDiskManager::CreateFile(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (name.empty()) {
    return Status::InvalidArgument(
        "file name must be non-empty (empty marks a removed file)");
  }
  FileId reuse = kInvalidFile;
  for (size_t i = 0; i < files_.size(); ++i) {
    if (files_[i].name == name) {
      return Status::AlreadyExists("file '" + name + "' already exists");
    }
    if (files_[i].name.empty() && reuse == kInvalidFile) {
      reuse = static_cast<FileId>(i);
    }
  }
  const FileId id =
      reuse != kInvalidFile ? reuse : static_cast<FileId>(files_.size());
  File f;
  f.name = std::move(name);
  // O_TRUNC clobbers any orphan segment a crash left behind under this id.
  Status st = OpenSegment(id, &f, /*truncate=*/true);
  if (st.ok()) {
    if (reuse != kInvalidFile) {
      files_[id] = std::move(f);
    } else {
      files_.push_back(std::move(f));
    }
    st = WriteSuperblock();
    if (!st.ok()) {
      File& slot = files_[id];
      if (slot.pages_fd >= 0) ::close(slot.pages_fd);
      if (slot.crc_fd >= 0) ::close(slot.crc_fd);
      if (reuse != kInvalidFile) {
        slot = File();  // back to a tombstone
      } else {
        files_.pop_back();
      }
    }
  } else {
    if (f.pages_fd >= 0) ::close(f.pages_fd);
    if (f.crc_fd >= 0) ::close(f.crc_fd);
  }
  SMADB_RETURN_NOT_OK(st);
  return id;
}

Result<FileId> FileDiskManager::FindFile(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < files_.size(); ++i) {
    if (!files_[i].name.empty() && files_[i].name == name) {
      return static_cast<FileId>(i);
    }
  }
  return Status::NotFound("no file named '" + std::string(name) + "'");
}

Status FileDiskManager::RemoveFile(FileId file) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file >= files_.size() || files_[file].name.empty()) {
    return Status::InvalidArgument(util::Format("bad file id %u", file));
  }
  File& f = files_[file];
  const std::string base = directory_ + "/seg" + std::to_string(file);
  if (f.pages_fd >= 0) ::close(f.pages_fd);
  if (f.crc_fd >= 0) ::close(f.crc_fd);
  f = File();  // tombstone: empty name, fds closed, zero pages
  // A crash between the unlinks and the superblock write at worst leaves an
  // orphan segment under a tombstoned id; CreateFile's O_TRUNC clobbers it
  // when the id is reused.
  if (::unlink((base + ".pages").c_str()) != 0 && errno != ENOENT) {
    return ErrnoError("unlink", base + ".pages");
  }
  if (::unlink((base + ".crc").c_str()) != 0 && errno != ENOENT) {
    return ErrnoError("unlink", base + ".crc");
  }
  return WriteSuperblock();
}

Status FileDiskManager::RawWrite(FileId id, File& f, uint32_t page_no,
                                 const Page& page, uint32_t crc) {
  const std::string base = directory_ + "/seg" + std::to_string(id);
  SMADB_RETURN_NOT_OK(PWriteFull(f.pages_fd, page.data, kPageSize,
                                 static_cast<uint64_t>(page_no) * kPageSize,
                                 base + ".pages"));
  SMADB_RETURN_NOT_OK(PWriteFull(f.crc_fd, &crc, sizeof(crc),
                                 static_cast<uint64_t>(page_no) * sizeof(crc),
                                 base + ".crc"));
  if (page_no >= f.checksums.size()) f.checksums.resize(page_no + 1, 0);
  f.checksums[page_no] = crc;
  f.dirty = true;
  return Status::OK();
}

Result<uint32_t> FileDiskManager::AllocatePage(FileId file) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file >= files_.size() || files_[file].name.empty()) {
    return Status::InvalidArgument(util::Format("bad file id %u", file));
  }
  File& f = files_[file];
  Page zero;
  zero.Zero();
  if (!f.free_pages.empty()) {
    const uint32_t page_no = f.free_pages.back();
    f.free_pages.pop_back();
    SMADB_RETURN_NOT_OK(RawWrite(file, f, page_no, zero, ZeroPageCrc()));
    return page_no;
  }
  const uint32_t page_no = f.num_pages;
  SMADB_RETURN_NOT_OK(RawWrite(file, f, page_no, zero, ZeroPageCrc()));
  ++f.num_pages;
  return page_no;
}

Status FileDiskManager::FreePage(FileId file, uint32_t page_no) {
  std::lock_guard<std::mutex> lock(mu_);
  SMADB_RETURN_NOT_OK(CheckBounds(file, page_no));
  File& f = files_[file];
  if (std::find(f.free_pages.begin(), f.free_pages.end(), page_no) !=
      f.free_pages.end()) {
    return Status::InvalidArgument(
        util::Format("page %u of file '%s' is already free", page_no,
                     f.name.c_str()));
  }
  Page zero;
  zero.Zero();
  SMADB_RETURN_NOT_OK(RawWrite(file, f, page_no, zero, ZeroPageCrc()));
  f.free_pages.push_back(page_no);
  return Status::OK();
}

Status FileDiskManager::ReadPage(FileId file, uint32_t page_no, Page* out) {
  std::lock_guard<std::mutex> lock(mu_);
  SMADB_RETURN_NOT_OK(CheckBounds(file, page_no));
  File& f = files_[file];
  bool flip = false;
  SMADB_RETURN_NOT_OK(ConsultReadFaults(f.name, page_no, &flip));
  SMADB_RETURN_NOT_OK(PReadFull(f.pages_fd, out->data, kPageSize,
                                static_cast<uint64_t>(page_no) * kPageSize,
                                f.name));
  if (flip) FaultFlipBit(out, FaultFlipBitOf(file, page_no));
  AccountRead(&f.last_read, page_no);
  return Status::OK();
}

Status FileDiskManager::WritePage(FileId file, uint32_t page_no,
                                  const Page& page) {
  std::lock_guard<std::mutex> lock(mu_);
  SMADB_RETURN_NOT_OK(CheckBounds(file, page_no));
  File& f = files_[file];
  bool flip = false;
  SMADB_RETURN_NOT_OK(ConsultWriteFaults(f.name, page_no, &flip));
  const uint32_t crc = util::Crc32c(page.data, kPageSize);
  if (flip) {
    // Stamp the intended checksum but store corrupted bytes: the next
    // verified read detects the silent flip.
    Page corrupted = page;
    FaultFlipBit(&corrupted, FaultFlipBitOf(file, page_no));
    SMADB_RETURN_NOT_OK(RawWrite(file, f, page_no, corrupted, crc));
  } else {
    SMADB_RETURN_NOT_OK(RawWrite(file, f, page_no, page, crc));
  }
  AccountWrite(&f.last_write, page_no);
  return Status::OK();
}

Status FileDiskManager::TruncateFile(FileId file) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file >= files_.size()) {
    return Status::InvalidArgument(util::Format("bad file id %u", file));
  }
  File& f = files_[file];
  const std::string base = directory_ + "/seg" + std::to_string(file);
  if (::ftruncate(f.pages_fd, 0) != 0) {
    return ErrnoError("ftruncate", base + ".pages");
  }
  if (::ftruncate(f.crc_fd, 0) != 0) {
    return ErrnoError("ftruncate", base + ".crc");
  }
  f.num_pages = 0;
  f.checksums.clear();
  f.free_pages.clear();
  f.last_read = -2;
  f.last_write = -2;
  f.dirty = true;
  return WriteSuperblock();
}

Status FileDiskManager::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  SMADB_RETURN_NOT_OK(ConsultSyncFaults());
  for (size_t id = 0; id < files_.size(); ++id) {
    File& f = files_[id];
    if (!f.dirty) continue;
    const std::string base = directory_ + "/seg" + std::to_string(id);
    if (::fsync(f.pages_fd) != 0) return ErrnoError("fsync", base + ".pages");
    if (::fsync(f.crc_fd) != 0) return ErrnoError("fsync", base + ".crc");
    f.dirty = false;
  }
  SMADB_RETURN_NOT_OK(WriteSuperblock());
  ++stats_.syncs;
  return Status::OK();
}

Result<uint32_t> FileDiskManager::NumPages(FileId file) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (file >= files_.size()) {
    return Status::InvalidArgument(util::Format("bad file id %u", file));
  }
  return files_[file].num_pages;
}

Result<uint32_t> FileDiskManager::PageChecksum(FileId file,
                                               uint32_t page_no) const {
  std::lock_guard<std::mutex> lock(mu_);
  SMADB_RETURN_NOT_OK(CheckBounds(file, page_no));
  return files_[file].checksums[page_no];
}

Status FileDiskManager::CorruptPageForTesting(FileId file, uint32_t page_no,
                                              uint64_t bit) {
  std::lock_guard<std::mutex> lock(mu_);
  SMADB_RETURN_NOT_OK(CheckBounds(file, page_no));
  File& f = files_[file];
  const std::string base = directory_ + "/seg" + std::to_string(file);
  Page page;
  SMADB_RETURN_NOT_OK(PReadFull(f.pages_fd, page.data, kPageSize,
                                static_cast<uint64_t>(page_no) * kPageSize,
                                base + ".pages"));
  FaultFlipBit(&page, bit);
  // Deliberately leaves the CRC sidecar stamped with the pre-flip checksum:
  // at-rest media corruption the next verified read must catch.
  SMADB_RETURN_NOT_OK(PWriteFull(f.pages_fd, page.data, kPageSize,
                                 static_cast<uint64_t>(page_no) * kPageSize,
                                 base + ".pages"));
  f.dirty = true;
  return Status::OK();
}

void FileDiskManager::ResetAccessPositions() {
  std::lock_guard<std::mutex> lock(mu_);
  for (File& f : files_) {
    f.last_read = -2;
    f.last_write = -2;
  }
}

}  // namespace smadb::storage
