// Fixed-size page: the unit of simulated I/O and the default SMA bucket.

#ifndef SMADB_STORAGE_PAGE_H_
#define SMADB_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>

namespace smadb::storage {

/// Page size in bytes. The paper assumes 4 K pages throughout ("Assume that a
/// bucket corresponds to a 4K-page ...").
inline constexpr size_t kPageSize = 4096;

/// Raw page buffer. Layout interpretation is up to the owner (slotted data
/// page, SMA-entry page, B+-tree node, ...).
struct alignas(64) Page {
  uint8_t data[kPageSize];

  void Zero() { std::memset(data, 0, kPageSize); }

  template <typename T>
  T ReadAt(size_t offset) const {
    T v;
    std::memcpy(&v, data + offset, sizeof(T));
    return v;
  }
  template <typename T>
  void WriteAt(size_t offset, const T& v) {
    std::memcpy(data + offset, &v, sizeof(T));
  }
};

static_assert(sizeof(Page) == kPageSize);

}  // namespace smadb::storage

#endif  // SMADB_STORAGE_PAGE_H_
