// Bucket-granular reader-writer latching for concurrent sessions.
//
// Concurrency in smadb is bucket-shaped: appends touch exactly the tail
// bucket, updates/deletes exactly the bucket holding the rid, and scans walk
// buckets one at a time. A BucketLatchTable maps bucket ids onto a fixed
// array of shared_mutex shards (bucket % shards), so a writer folding an
// append into the tail bucket's SMA entries excludes only readers of that
// bucket — every other bucket keeps streaming.
//
// Deadlock freedom: latches are leaf locks. A thread holds at most ONE
// bucket latch at a time (readers release bucket b before acquiring b+1;
// writers latch the single bucket their mutation lands in), except for the
// whole-table paths (Vacuum, SMA Rebuild) which use LockAllExclusive — and
// that acquires shards in ascending index order, so two whole-table lockers
// cannot deadlock each other or any single-bucket locker. Lock order with
// the rest of the engine: Database::write_mu_ -> bucket latch ->
// BufferPool::mu_ -> Wal::mu_ (the pool's pre_writeback barrier is the
// pool->wal edge; nothing goes the other way).
//
// Sharding makes collisions possible (bucket 0 and bucket `shards` share a
// mutex). That is a throughput hit, never a correctness one: a collision
// only ever serializes two operations that would have been safe to overlap.

#ifndef SMADB_STORAGE_LATCH_H_
#define SMADB_STORAGE_LATCH_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "obs/metrics.h"

namespace smadb::storage {

/// Cumulative latch counters (mirrored into the obs registry by Database).
struct LatchStats {
  uint64_t shared_acquires = 0;
  uint64_t exclusive_acquires = 0;
  /// Acquires that found the shard held and had to block.
  uint64_t contended = 0;
  /// Total nanoseconds spent blocked across contended acquires.
  uint64_t wait_ns = 0;
};

class BucketLatchTable {
 public:
  // 32 keeps whole-table holds under ThreadSanitizer's per-thread cap of 64
  // simultaneously held locks: LockAllExclusive pins every shard while the
  // caller already holds the engine mutexes above it in the lock order, and
  // TSan's deadlock detector CHECK-aborts past 64. Collision rates at 32
  // shards are indistinguishable from 64 for bucket-grained traffic.
  static constexpr size_t kDefaultShards = 32;

  explicit BucketLatchTable(size_t shards = kDefaultShards)
      : shards_(shards == 0 ? 1 : shards),
        mutexes_(std::make_unique<std::shared_mutex[]>(
            shards == 0 ? 1 : shards)) {}

  BucketLatchTable(const BucketLatchTable&) = delete;
  BucketLatchTable& operator=(const BucketLatchTable&) = delete;

  /// Optional wait-time histogram (nanoseconds per contended acquire);
  /// null = counters only. Set once at attach time, before concurrency.
  void set_wait_histogram(obs::Histogram* h) { wait_histogram_ = h; }

  size_t shards() const { return shards_; }

  /// Movable RAII shared (reader) hold on one bucket's shard.
  class SharedGuard {
   public:
    SharedGuard() = default;
    SharedGuard(SharedGuard&&) = default;
    SharedGuard& operator=(SharedGuard&&) = default;
    void Release() { lock_ = {}; }
    bool held() const { return lock_.owns_lock(); }

   private:
    friend class BucketLatchTable;
    explicit SharedGuard(std::shared_lock<std::shared_mutex> lock)
        : lock_(std::move(lock)) {}
    std::shared_lock<std::shared_mutex> lock_;
  };

  /// Movable RAII exclusive (writer) hold on one bucket's shard.
  class ExclusiveGuard {
   public:
    ExclusiveGuard() = default;
    ExclusiveGuard(ExclusiveGuard&&) = default;
    ExclusiveGuard& operator=(ExclusiveGuard&&) = default;
    void Release() { lock_ = {}; }
    bool held() const { return lock_.owns_lock(); }

   private:
    friend class BucketLatchTable;
    explicit ExclusiveGuard(std::unique_lock<std::shared_mutex> lock)
        : lock_(std::move(lock)) {}
    std::unique_lock<std::shared_mutex> lock_;
  };

  /// Exclusive hold on EVERY shard (whole-table mutations: Vacuum, SMA
  /// rebuild). Acquired in ascending shard order — see the header comment.
  class AllGuard {
   public:
    AllGuard() = default;
    AllGuard(AllGuard&&) = default;
    AllGuard& operator=(AllGuard&&) = default;

   private:
    friend class BucketLatchTable;
    std::vector<std::unique_lock<std::shared_mutex>> locks_;
  };

  SharedGuard LockShared(uint64_t bucket) {
    std::shared_mutex& m = mutexes_[bucket % shards_];
    std::shared_lock<std::shared_mutex> lock(m, std::try_to_lock);
    if (!lock.owns_lock()) {
      const uint64_t ns = TimedAcquire([&] { lock.lock(); });
      NoteContention(ns);
    }
    shared_acquires_.fetch_add(1, std::memory_order_relaxed);
    return SharedGuard(std::move(lock));
  }

  ExclusiveGuard LockExclusive(uint64_t bucket) {
    std::shared_mutex& m = mutexes_[bucket % shards_];
    std::unique_lock<std::shared_mutex> lock(m, std::try_to_lock);
    if (!lock.owns_lock()) {
      const uint64_t ns = TimedAcquire([&] { lock.lock(); });
      NoteContention(ns);
    }
    exclusive_acquires_.fetch_add(1, std::memory_order_relaxed);
    return ExclusiveGuard(std::move(lock));
  }

  AllGuard LockAllExclusive() {
    AllGuard guard;
    guard.locks_.reserve(shards_);
    for (size_t i = 0; i < shards_; ++i) {
      guard.locks_.emplace_back(mutexes_[i]);
    }
    exclusive_acquires_.fetch_add(shards_, std::memory_order_relaxed);
    return guard;
  }

  LatchStats stats() const {
    LatchStats s;
    s.shared_acquires = shared_acquires_.load(std::memory_order_relaxed);
    s.exclusive_acquires = exclusive_acquires_.load(std::memory_order_relaxed);
    s.contended = contended_.load(std::memory_order_relaxed);
    s.wait_ns = wait_ns_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  template <typename Fn>
  static uint64_t TimedAcquire(Fn&& acquire) {
    const auto t0 = std::chrono::steady_clock::now();
    acquire();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }

  void NoteContention(uint64_t ns) {
    contended_.fetch_add(1, std::memory_order_relaxed);
    wait_ns_.fetch_add(ns, std::memory_order_relaxed);
    if (wait_histogram_ != nullptr) {
      wait_histogram_->Observe(static_cast<int64_t>(ns));
    }
  }

  const size_t shards_;
  std::unique_ptr<std::shared_mutex[]> mutexes_;
  std::atomic<uint64_t> shared_acquires_{0};
  std::atomic<uint64_t> exclusive_acquires_{0};
  std::atomic<uint64_t> contended_{0};
  std::atomic<uint64_t> wait_ns_{0};
  obs::Histogram* wait_histogram_ = nullptr;
};

}  // namespace smadb::storage

#endif  // SMADB_STORAGE_LATCH_H_
