// FileDiskManager: the durable DiskBackend — real files, pread/pwrite,
// fsync.
//
// On-disk layout (inside one storage directory):
//
//   superblock.smadb   text manifest of the backend: one line per file
//                      mapping id -> name plus the page free list (removed
//                      files keep their id as a "free <id>" tombstone line
//                      until CreateFile reuses it). Written atomically
//                      (tmp + rename + directory fsync) on
//                      CreateFile/RemoveFile/TruncateFile/Sync.
//   seg<id>.pages      the pages of file <id>, a flat array of 4 K pages.
//   seg<id>.crc        CRC-32C sidecar, 4 bytes per page, parallel to
//                      seg<id>.pages — the out-of-band checksum the
//                      DiskBackend contract requires without stealing page
//                      payload (the paper's SMA-file sizes stay exact).
//
// Crash behavior: the number of pages in a file is *derived from the segment
// file size* at Open (torn tail pages are truncated away), so the superblock
// never needs to be crash-consistent about sizes — it only has to name files
// and carry the free list, both of which are re-persisted at every Sync
// (= checkpoint). Free-list entries lost to a crash merely leak zeroed pages
// until the next checkpoint rewrites the superblock. Orphan segment files
// (created after the last superblock write) are clobbered with O_TRUNC when
// their id is reused.
//
// Fault injection: ReadPage/WritePage route through the same
// "disk.read"/"disk.write"/"disk.page_bitflip" failpoints as SimulatedDisk
// (shared base-class helpers), so the whole fault matrix runs identically
// against real files.

#ifndef SMADB_STORAGE_FILE_DISK_H_
#define SMADB_STORAGE_FILE_DISK_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "storage/disk.h"

namespace smadb::storage {

/// Durable page store over a directory of per-file segments. See file
/// comment for the layout and crash contract. Thread-safe, like every
/// DiskBackend: all state is behind the backend mutex.
class FileDiskManager final : public DiskBackend {
 public:
  /// Opens (or creates) the backend rooted at `directory`. An existing
  /// superblock is loaded and every listed segment re-attached, with page
  /// counts derived from segment sizes.
  static util::Result<std::unique_ptr<FileDiskManager>> Open(
      std::string directory);

  ~FileDiskManager() override;

  BackendKind kind() const override { return BackendKind::kFile; }

  util::Result<FileId> CreateFile(std::string name) override;
  util::Result<FileId> FindFile(std::string_view name) const override;
  util::Status RemoveFile(FileId file) override;
  util::Result<uint32_t> AllocatePage(FileId file) override;
  util::Status FreePage(FileId file, uint32_t page_no) override;
  util::Status ReadPage(FileId file, uint32_t page_no, Page* out) override;
  util::Status WritePage(FileId file, uint32_t page_no,
                         const Page& page) override;
  util::Status TruncateFile(FileId file) override;
  util::Status Sync() override;
  util::Result<uint32_t> NumPages(FileId file) const override;

  // Deque keeps File references stable across CreateFile, so the returned
  // name cannot dangle when DDL races a diagnostic path.
  const std::string& FileName(FileId file) const override {
    std::lock_guard<std::mutex> lock(mu_);
    return files_[file].name;
  }
  size_t NumFiles() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return files_.size();
  }

  util::Result<uint32_t> PageChecksum(FileId file,
                                      uint32_t page_no) const override;
  util::Status CorruptPageForTesting(FileId file, uint32_t page_no,
                                     uint64_t bit) override;

  uint64_t FileBytes(FileId file) const override {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<uint64_t>(files_[file].num_pages) * kPageSize;
  }

  void ResetAccessPositions() override;

  const std::string& directory() const { return directory_; }

 private:
  struct File {
    std::string name;
    int pages_fd = -1;
    int crc_fd = -1;
    uint32_t num_pages = 0;
    // In-memory copy of the CRC sidecar, parallel to the pages.
    std::vector<uint32_t> checksums;
    std::vector<uint32_t> free_pages;
    // Anything written since the last fsync of this segment.
    bool dirty = false;
    int64_t last_read = -2;
    int64_t last_write = -2;
  };

  explicit FileDiskManager(std::string directory);

  /// Caller must hold `mu_` (as for every private helper below).
  util::Status CheckBounds(FileId file, uint32_t page_no) const;

  /// Opens (creating if needed) the two segment fds of `f` for file id `id`.
  /// `truncate` clobbers any orphan left by a crash.
  util::Status OpenSegment(FileId id, File* f, bool truncate);

  /// Loads the superblock and re-attaches every listed segment.
  util::Status Load();

  /// Writes the superblock atomically (tmp + rename + dir fsync).
  util::Status WriteSuperblock();

  /// Writes `page` and its checksum at `page_no` of file `id` without fault
  /// consultation or accounting (allocation zero-fill, corruption helper).
  util::Status RawWrite(FileId id, File& f, uint32_t page_no, const Page& page,
                        uint32_t crc);

  std::string directory_;
  int dir_fd_ = -1;
  std::deque<File> files_;
};

}  // namespace smadb::storage

#endif  // SMADB_STORAGE_FILE_DISK_H_
