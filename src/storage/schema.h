// Schema: ordered, fixed-width column layout.
//
// Every column occupies a fixed slot so that page capacity is deterministic
// and bucket aggregation is branch-free — a prerequisite for the paper's
// SMA-file size accounting (§2.4 size table).

#ifndef SMADB_STORAGE_SCHEMA_H_
#define SMADB_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/value.h"

namespace smadb::storage {

/// One column: name, type, and (for strings) inline capacity in bytes.
struct Field {
  std::string name;
  util::TypeId type;
  /// Capacity for kString columns; ignored otherwise. Strings are stored
  /// zero-padded, so the contents must not contain NUL bytes.
  uint16_t capacity = 0;

  static Field Int32(std::string name) {
    return Field{std::move(name), util::TypeId::kInt32, 0};
  }
  static Field Int64(std::string name) {
    return Field{std::move(name), util::TypeId::kInt64, 0};
  }
  static Field Double(std::string name) {
    return Field{std::move(name), util::TypeId::kDouble, 0};
  }
  static Field Decimal(std::string name) {
    return Field{std::move(name), util::TypeId::kDecimal, 0};
  }
  static Field Date(std::string name) {
    return Field{std::move(name), util::TypeId::kDate, 0};
  }
  static Field String(std::string name, uint16_t capacity) {
    return Field{std::move(name), util::TypeId::kString, capacity};
  }

  /// Bytes this field occupies in a tuple.
  size_t width() const;
};

/// Immutable column layout. Construct once, share by const reference.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Byte offset of field `i` within a tuple.
  size_t offset(size_t i) const { return offsets_[i]; }

  /// Total tuple width in bytes.
  size_t tuple_size() const { return tuple_size_; }

  /// Index of the column named `name` (case-sensitive).
  util::Result<size_t> FieldIndex(std::string_view name) const;

  /// True if `other` has the same fields in the same order.
  bool Equals(const Schema& other) const;

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::vector<size_t> offsets_;
  size_t tuple_size_ = 0;
};

}  // namespace smadb::storage

#endif  // SMADB_STORAGE_SCHEMA_H_
