// Bucketed heap table.
//
// A table is a sequence of fixed-layout data pages in one simulated file.
// Pages are grouped into *buckets* of `bucket_pages` consecutive pages — the
// unit the SMA layer summarizes (paper §2.1: "buckets can only be sets of
// consecutive tuples on disk"). The heap is append-ordered, which is exactly
// what gives time-of-creation clustering its power (§2.2).

#ifndef SMADB_STORAGE_TABLE_H_
#define SMADB_STORAGE_TABLE_H_

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "storage/buffer_pool.h"
#include "storage/latch.h"
#include "storage/schema.h"
#include "storage/tuple.h"
#include "util/status.h"

namespace smadb::storage {

/// Table creation knobs.
struct TableOptions {
  /// Pages per bucket (paper §4 tuning dimension). 1 = bucket == page.
  uint32_t bucket_pages = 1;
};

/// Physical tuple address.
struct Rid {
  uint32_t page_no = 0;
  uint16_t slot = 0;

  bool operator==(const Rid&) const = default;
};

/// Data-page layout: an 8-byte header (uint16 slot count), a tombstone
/// bitmap of ceil(capacity/8) bytes, then fixed-width tuple slots. Deleted
/// tuples keep their slot (stable Rids, positional SMA correspondence) and
/// are skipped by iteration.
inline constexpr size_t kPageHeaderSize = 8;

/// A consistent prefix of the heap captured at one instant: everything up to
/// slot `tail_count` of page `pages - 1`. Appends only ever grow the tail
/// page's slot count or add pages beyond it, so the prefix stays stable
/// while a scan runs — the scan never observes half-applied appends.
///
/// `demote_boundary` marks the one bucket whose SMA entries a concurrent
/// appender may still be folding into (the bucket holding the snapshot's
/// tail page, unless the snapshot ends exactly on a full bucket). Grading
/// from such an entry is still sound for skip decisions (the entry covers a
/// superset of the snapshot rows, and superset min/max bounds imply the
/// subset's), but DIRECT answers from its values (SMA_GAggr reading
/// count/sum out of the entry) would include post-snapshot rows — so scans
/// grade that bucket ambivalent and inspect its (snapshot-clamped) rows
/// instead.
struct TableSnapshot {
  uint32_t pages = 0;       ///< pages in the snapshot prefix
  uint16_t tail_count = 0;  ///< slots visible on page pages-1
  uint32_t buckets = 0;     ///< buckets covering those pages
  uint32_t boundary_bucket = 0;  ///< meaningful iff demote_boundary
  bool demote_boundary = false;

  /// Slots of `page_no` inside the snapshot, given the page's live header
  /// count (caller reads it under the bucket latch).
  uint16_t VisibleSlots(uint32_t page_no, uint16_t header_count) const {
    if (page_no + 1 > pages) return 0;
    if (page_no + 1 == pages) return std::min(header_count, tail_count);
    return header_count;
  }
};

class Table {
 public:
  /// Creates an empty table backed by a fresh file named "tbl.<name>".
  static util::Result<std::unique_ptr<Table>> Create(BufferPool* pool,
                                                     std::string name,
                                                     Schema schema,
                                                     TableOptions options = {});

  /// Re-attaches to an existing file "tbl.<name>" (recovery path): restores
  /// the manifest's counters without touching pages. WAL replay then applies
  /// post-checkpoint mutations via Apply*.
  static util::Result<std::unique_ptr<Table>> Restore(
      BufferPool* pool, std::string name, Schema schema, TableOptions options,
      uint64_t num_tuples, uint64_t num_deleted, uint32_t num_pages,
      uint64_t epoch);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  FileId file() const { return file_; }
  BufferPool* pool() const { return pool_; }
  uint32_t bucket_pages() const { return options_.bucket_pages; }

  /// Tuples that fit on one page.
  uint32_t tuples_per_page() const { return tuples_per_page_; }

  uint64_t num_tuples() const {
    return num_tuples_.load(std::memory_order_acquire);
  }
  uint32_t num_pages() const {
    return num_pages_.load(std::memory_order_acquire);
  }

  /// Modification epoch: bumped by every Append/UpdateColumn/DeleteTuple.
  /// SMAs record the epoch they were built/maintained at; an SMA behind the
  /// table epoch is stale (the table was mutated behind the maintainer's
  /// back) and the planner demotes to a plain scan until it is rebuilt.
  /// Vacuum does not bump it: compaction preserves live tuple contents and
  /// the bucket ↔ SMA-entry correspondence.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  /// Buckets currently present (last one may be partial).
  uint32_t num_buckets() const {
    return (num_pages() + options_.bucket_pages - 1) / options_.bucket_pages;
  }

  /// Captures the current consistent append prefix — one atomic load of the
  /// (pages, tail slot count) word Append publishes after the tuple bytes.
  /// Scans bound themselves by a snapshot instead of the live counters.
  TableSnapshot CaptureSnapshot() const;

  /// Bucket-granular reader-writer latches for this table. Writers latch
  /// the single bucket a mutation lands in exclusively while splicing page
  /// bytes and folding SMA entries; readers latch the bucket they are
  /// scanning shared. See storage/latch.h for the lock-order contract.
  BucketLatchTable* latches() const { return &latches_; }

  /// Bucket the next Append will land in. Stable only under the writer
  /// lock (appends are single-writer), where the maintainer uses it to
  /// latch the target bucket exclusively *before* the page write.
  uint64_t AppendTargetBucket() const {
    const TableSnapshot snap = CaptureSnapshot();
    if (snap.pages == 0 || snap.tail_count >= tuples_per_page_) {
      return static_cast<uint64_t>(snap.pages) / options_.bucket_pages;
    }
    return static_cast<uint64_t>(snap.pages - 1) / options_.bucket_pages;
  }

  /// Appends one tuple at the tail (bulk-load path). Optionally reports the
  /// assigned Rid.
  util::Status Append(const TupleBuffer& tuple, Rid* rid = nullptr);

  /// Rid the next Append will assign — what the WAL logs *before* applying,
  /// so a crash between log and apply replays to the same position.
  util::Result<Rid> NextRid() const;

  /// WAL replay: re-applies an insert at its logged absolute position.
  /// Idempotent — overwriting already-flushed bytes with the same bytes —
  /// and creates any missing tail pages. `tuple_bytes` is the raw
  /// fixed-width tuple image; `epoch_after` the table epoch the original
  /// mutation produced.
  util::Status ApplyInsert(Rid rid, std::string_view tuple_bytes,
                           uint64_t epoch_after);

  /// WAL replay: re-applies a column update (ignores tombstones a
  /// later-replaying delete will restore).
  util::Status ApplyUpdate(Rid rid, size_t col, const util::Value& v,
                           uint64_t epoch_after);

  /// WAL replay: re-applies a delete (idempotent on the bitmap bit).
  util::Status ApplyDelete(Rid rid, uint64_t epoch_after);

  /// Pins a data page. Const: reading mutates only the buffer pool.
  util::Result<PageGuard> FetchPage(uint32_t page_no) const {
    return pool_->Fetch(file_, page_no);
  }

  /// Slots used on a page (including tombstoned ones).
  static uint16_t PageTupleCount(const Page& page) {
    return page.ReadAt<uint16_t>(0);
  }

  /// True when slot `slot` of `page` holds a deleted tuple.
  static bool PageSlotDeleted(const Page& page, uint16_t slot) {
    return (page.data[kPageHeaderSize + slot / 8] >> (slot % 8)) & 1;
  }

  /// Byte offset where tuple slots start (header + tombstone bitmap).
  size_t TupleAreaOffset() const { return tuple_area_offset_; }

  /// View of tuple `slot` on `page` (page must stay pinned). The caller is
  /// responsible for skipping deleted slots.
  TupleRef PageTuple(const Page& page, uint16_t slot) const {
    return TupleRef(
        page.data + tuple_area_offset_ + slot * schema_.tuple_size(),
        &schema_);
  }

  /// Copies tuple `rid` out of its page.
  util::Result<TupleBuffer> ReadTuple(Rid rid);

  /// Overwrites column `col` of tuple `rid` in place. Fails on deleted
  /// tuples.
  util::Status UpdateColumn(Rid rid, size_t col, const util::Value& v);

  /// Tombstones tuple `rid`. Idempotent-error: deleting twice fails with
  /// NotFound. The slot is not reused; Rids of other tuples are stable.
  util::Status DeleteTuple(Rid rid);

  /// Live tuples (appends minus deletes).
  uint64_t num_live_tuples() const { return num_tuples() - num_deleted(); }
  uint64_t num_deleted() const {
    return num_deleted_.load(std::memory_order_acquire);
  }

  /// Vacuum: compacts every page in place, squeezing out tombstoned slots.
  /// Pages keep their position, so the bucket ↔ SMA-entry correspondence —
  /// and therefore every SMA — stays valid without a rebuild. Rids of
  /// tuples behind a removed slot shift down; callers holding Rids must
  /// refresh them. Slots freed on the last page become appendable again.
  util::Status Vacuum();

  /// Bucket of a page / first-and-end page of a bucket [first, end).
  uint32_t BucketOfPage(uint32_t page_no) const {
    return page_no / options_.bucket_pages;
  }
  std::pair<uint32_t, uint32_t> BucketPageRange(uint32_t bucket) const {
    const uint32_t first = bucket * options_.bucket_pages;
    const uint32_t end =
        std::min(first + options_.bucket_pages, num_pages());
    return {first, end};
  }

  /// Invokes `fn(TupleRef, Rid)` for every *live* tuple of `bucket`, in
  /// physical order. `fn` must not retain the TupleRef beyond the call.
  /// Const: a read-only walk (verification paths hold const Table*).
  /// Unsynchronized: the caller must hold the bucket's latch or run in a
  /// writer-serialized context (build/load/vacuum/verify); concurrent query
  /// paths stream through exec::BucketReader instead, which latches and
  /// snapshot-clamps.
  template <typename Fn>
  util::Status ForEachTupleInBucket(uint32_t bucket, Fn&& fn) const {
    const auto [first, end] = BucketPageRange(bucket);
    for (uint32_t p = first; p < end; ++p) {
      SMADB_ASSIGN_OR_RETURN(PageGuard guard, FetchPage(p));
      const uint16_t n = PageTupleCount(*guard.page());
      for (uint16_t s = 0; s < n; ++s) {
        if (PageSlotDeleted(*guard.page(), s)) continue;
        fn(PageTuple(*guard.page(), s), Rid{p, s});
      }
    }
    return util::Status::OK();
  }

  /// Total base-data bytes (pages * page size).
  uint64_t SizeBytes() const {
    return static_cast<uint64_t>(num_pages()) * kPageSize;
  }

 private:
  Table(BufferPool* pool, FileId file, std::string name, Schema schema,
        TableOptions options);

  /// Re-derives append_state_ from the tail page header (Restore, Vacuum,
  /// replay — contexts where the word can't be maintained incrementally).
  util::Status RefreshAppendState();

  BufferPool* pool_;
  FileId file_;
  std::string name_;
  Schema schema_;
  TableOptions options_;
  uint32_t tuples_per_page_;
  size_t tuple_area_offset_;
  std::atomic<uint64_t> num_tuples_{0};
  std::atomic<uint64_t> num_deleted_{0};
  std::atomic<uint32_t> num_pages_{0};
  std::atomic<uint64_t> epoch_{0};
  /// Packed (pages << 16) | tail_slot_count, release-published by Append
  /// AFTER the tuple bytes and slot-count header land in the page — the one
  /// word CaptureSnapshot acquire-loads. Readers that bound themselves by a
  /// snapshot therefore always see fully-written tuples.
  std::atomic<uint64_t> append_state_{0};
  mutable BucketLatchTable latches_;
};

}  // namespace smadb::storage

#endif  // SMADB_STORAGE_TABLE_H_
