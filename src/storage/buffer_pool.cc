#include "storage/buffer_pool.h"

#include <cassert>

#include "util/string_util.h"

namespace smadb::storage {

using util::Result;
using util::Status;

PageGuard& PageGuard::operator=(PageGuard&& o) noexcept {
  if (this == &o) return *this;  // self-move keeps the pin
  Release();                     // drop the old pin before adopting
  pool_ = o.pool_;
  frame_ = o.frame_;
  page_ = o.page_;
  o.pool_ = nullptr;
  o.page_ = nullptr;
  return *this;
}

PageGuard::~PageGuard() { Release(); }

Page* PageGuard::MutablePage() {
  assert(valid());
  pool_->MarkDirty(frame_);
  return page_;
}

void PageGuard::Release() {
  if (pool_ != nullptr && page_ != nullptr) {
    pool_->Unpin(frame_, /*dirty=*/false);
  }
  pool_ = nullptr;
  page_ = nullptr;
}

BufferPool::BufferPool(SimulatedDisk* disk, size_t capacity_pages)
    : disk_(disk), frames_(capacity_pages) {
  assert(capacity_pages > 0);
  free_list_.reserve(capacity_pages);
  // Hand out low indices first.
  for (size_t i = capacity_pages; i > 0; --i) free_list_.push_back(i - 1);
}

Result<PageGuard> BufferPool::Fetch(FileId file, uint32_t page_no) {
  const uint64_t key = Key(file, page_no);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(key);
  if (it != table_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    Frame& fr = frames_[it->second];
    if (fr.pin_count == 0 && fr.in_lru) {
      lru_.erase(fr.lru_pos);
      fr.in_lru = false;
    }
    ++fr.pin_count;
    return PageGuard(this, it->second, &fr.page);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  SMADB_ASSIGN_OR_RETURN(size_t idx, GetFreeFrameLocked());
  Frame& fr = frames_[idx];
  // The disk read happens under the pool mutex: the SimulatedDisk is an
  // in-memory copy (thread-compatible, not thread-safe), and serializing
  // here keeps its sequential/near/random accounting well-defined.
  Status read = disk_->ReadPage(file, page_no, &fr.page);
  if (!read.ok()) {
    free_list_.push_back(idx);
    return read;
  }
  fr.file = file;
  fr.page_no = page_no;
  fr.pin_count = 1;
  fr.dirty = false;
  fr.used = true;
  fr.in_lru = false;
  table_[key] = idx;
  return PageGuard(this, idx, &fr.page);
}

Result<PageGuard> BufferPool::NewPage(FileId file, uint32_t* page_no_out) {
  std::lock_guard<std::mutex> lock(mu_);
  SMADB_ASSIGN_OR_RETURN(uint32_t page_no, disk_->AllocatePage(file));
  if (page_no_out != nullptr) *page_no_out = page_no;
  SMADB_ASSIGN_OR_RETURN(size_t idx, GetFreeFrameLocked());
  Frame& fr = frames_[idx];
  fr.page.Zero();
  fr.file = file;
  fr.page_no = page_no;
  fr.pin_count = 1;
  fr.dirty = true;  // must reach disk eventually
  fr.used = true;
  fr.in_lru = false;
  table_[Key(file, page_no)] = idx;
  return PageGuard(this, idx, &fr.page);
}

void BufferPool::Unpin(size_t frame, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& fr = frames_[frame];
  assert(fr.pin_count > 0);
  if (dirty) fr.dirty = true;
  if (--fr.pin_count == 0) {
    lru_.push_front(frame);
    fr.lru_pos = lru_.begin();
    fr.in_lru = true;
  }
}

void BufferPool::MarkDirty(size_t frame) {
  std::lock_guard<std::mutex> lock(mu_);
  frames_[frame].dirty = true;
}

Result<size_t> BufferPool::GetFreeFrameLocked() {
  if (!free_list_.empty()) {
    const size_t idx = free_list_.back();
    free_list_.pop_back();
    return idx;
  }
  // Evict the least recently used unpinned frame.
  if (lru_.empty()) {
    return Status::Internal("buffer pool exhausted: all frames pinned");
  }
  const size_t victim = lru_.back();
  lru_.pop_back();
  frames_[victim].in_lru = false;
  evictions_.fetch_add(1, std::memory_order_relaxed);
  SMADB_RETURN_NOT_OK(EvictFrameLocked(victim));
  return victim;
}

Status BufferPool::EvictFrameLocked(size_t idx) {
  Frame& fr = frames_[idx];
  assert(fr.used && fr.pin_count == 0);
  if (fr.dirty) {
    SMADB_RETURN_NOT_OK(disk_->WritePage(fr.file, fr.page_no, fr.page));
    dirty_writebacks_.fetch_add(1, std::memory_order_relaxed);
    fr.dirty = false;
  }
  table_.erase(Key(fr.file, fr.page_no));
  fr.used = false;
  return Status::OK();
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& fr : frames_) {
    if (fr.used && fr.dirty) {
      SMADB_RETURN_NOT_OK(disk_->WritePage(fr.file, fr.page_no, fr.page));
      dirty_writebacks_.fetch_add(1, std::memory_order_relaxed);
      fr.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferPool::DropAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& fr = frames_[i];
    if (!fr.used) continue;
    if (fr.pin_count > 0) {
      return Status::Internal(
          util::Format("DropAll with pinned page (file %u page %u)", fr.file,
                       fr.page_no));
    }
    if (fr.in_lru) {
      lru_.erase(fr.lru_pos);
      fr.in_lru = false;
    }
    SMADB_RETURN_NOT_OK(EvictFrameLocked(i));
    free_list_.push_back(i);
  }
  return Status::OK();
}

Status BufferPool::DropFile(FileId file) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& fr = frames_[i];
    if (!fr.used || fr.file != file) continue;
    if (fr.pin_count > 0) {
      return Status::Internal(
          util::Format("DropFile with pinned page (file %u page %u)", fr.file,
                       fr.page_no));
    }
    if (fr.in_lru) {
      lru_.erase(fr.lru_pos);
      fr.in_lru = false;
    }
    SMADB_RETURN_NOT_OK(EvictFrameLocked(i));
    free_list_.push_back(i);
  }
  return Status::OK();
}

}  // namespace smadb::storage
