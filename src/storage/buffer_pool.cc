#include "storage/buffer_pool.h"

#include <cassert>
#include <thread>

#include "util/crc32c.h"
#include "util/string_util.h"

namespace smadb::storage {

using util::Result;
using util::Status;
using util::StatusCode;

PageGuard& PageGuard::operator=(PageGuard&& o) noexcept {
  if (this == &o) return *this;  // self-move keeps the pin
  Release();                     // drop the old pin before adopting
  pool_ = o.pool_;
  frame_ = o.frame_;
  page_ = o.page_;
  o.pool_ = nullptr;
  o.page_ = nullptr;
  return *this;
}

PageGuard::~PageGuard() { Release(); }

Page* PageGuard::MutablePage() {
  assert(valid());
  pool_->MarkDirty(frame_);
  return page_;
}

void PageGuard::Release() {
  if (pool_ != nullptr && page_ != nullptr) {
    pool_->Unpin(frame_, /*dirty=*/false);
  }
  pool_ = nullptr;
  page_ = nullptr;
}

BufferPool::BufferPool(DiskBackend* disk, BufferPoolOptions options)
    : disk_(disk), options_(options), frames_(options.capacity_pages) {
  assert(options.capacity_pages > 0);
  free_list_.reserve(options.capacity_pages);
  // Hand out low indices first.
  for (size_t i = options.capacity_pages; i > 0; --i) {
    free_list_.push_back(i - 1);
  }
}

Status BufferPool::LoadFrameLocked(size_t idx, FileId file, uint32_t page_no) {
  Frame& fr = frames_[idx];
  // The disk read happens under the pool mutex: the SimulatedDisk is an
  // in-memory copy (thread-compatible, not thread-safe), and serializing
  // here keeps its sequential/near/random accounting well-defined. The
  // retry backoff is bounded (at most retries × backoff × 2^retries) and
  // only taken on injected/transient I/O errors, so holding the mutex
  // across it is acceptable.
  Status read;
  auto backoff = options_.retry_backoff;
  for (int attempt = 0;; ++attempt) {
    read = disk_->ReadPage(file, page_no, &fr.page);
    if (read.ok() || read.code() != StatusCode::kIOError ||
        attempt >= options_.max_read_retries) {
      break;
    }
    read_retries_.fetch_add(1, std::memory_order_relaxed);
    if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    backoff *= 2;
  }
  if (!read.ok()) {
    free_list_.push_back(idx);
    return read;
  }
  if (options_.verify_checksums) {
    const uint32_t computed = util::Crc32c(fr.page.data, kPageSize);
    SMADB_ASSIGN_OR_RETURN(const uint32_t stored,
                           disk_->PageChecksum(file, page_no));
    if (computed != stored) {
      checksum_failures_.fetch_add(1, std::memory_order_relaxed);
      free_list_.push_back(idx);
      return Status::Corruption(util::Format(
          "checksum mismatch on file '%s' page %u (stored %08x, read %08x)",
          disk_->FileName(file).c_str(), page_no, stored, computed));
    }
  }
  return Status::OK();
}

Result<PageGuard> BufferPool::Fetch(FileId file, uint32_t page_no) {
  const uint64_t key = Key(file, page_no);
  std::unique_lock<std::mutex> lock(mu_);
  int wait_rounds = 0;
  while (true) {
    // Re-checked after every frame wait: another thread may have loaded the
    // page (or freed a frame) while we slept.
    auto it = table_.find(key);
    if (it != table_.end()) {
      Frame& fr = frames_[it->second];
      // Pin transition 0 -> 1 charges the page against the governor's
      // tracker; rejection leaves the frame cached and unpinned.
      if (fr.pin_count == 0 && options_.pin_tracker != nullptr) {
        SMADB_RETURN_NOT_OK(
            options_.pin_tracker->TryCharge(kPageSize, "BufferPool.pins"));
      }
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (fr.pin_count == 0 && fr.in_lru) {
        lru_.erase(fr.lru_pos);
        fr.in_lru = false;
      }
      ++fr.pin_count;
      return PageGuard(this, it->second, &fr.page);
    }
    Result<size_t> idx_r = GetFreeFrameLocked();
    if (!idx_r.ok()) {
      if (idx_r.status().code() != StatusCode::kResourceExhausted) {
        return idx_r.status();
      }
      // All frames pinned: wait (bounded) for a pin release, then retry.
      if (wait_rounds >= options_.pinned_wait_rounds) {
        return Status::ResourceExhausted(util::Format(
            "all %zu buffer frames pinned while fetching file '%s' page %u "
            "(waited %d x %lld ms)",
            frames_.size(), disk_->FileName(file).c_str(), page_no,
            options_.pinned_wait_rounds,
            static_cast<long long>(options_.pinned_wait_quantum.count())));
      }
      ++wait_rounds;
      frame_available_.wait_for(lock, options_.pinned_wait_quantum);
      continue;
    }
    const size_t idx = *idx_r;
    misses_.fetch_add(1, std::memory_order_relaxed);
    SMADB_RETURN_NOT_OK(LoadFrameLocked(idx, file, page_no));
    if (options_.pin_tracker != nullptr) {
      Status charge =
          options_.pin_tracker->TryCharge(kPageSize, "BufferPool.pins");
      if (!charge.ok()) {
        free_list_.push_back(idx);
        return charge;
      }
    }
    Frame& fr = frames_[idx];
    fr.file = file;
    fr.page_no = page_no;
    fr.pin_count = 1;
    fr.dirty = false;
    fr.used = true;
    fr.in_lru = false;
    table_[key] = idx;
    return PageGuard(this, idx, &fr.page);
  }
}

Result<PageGuard> BufferPool::NewPage(FileId file, uint32_t* page_no_out) {
  std::unique_lock<std::mutex> lock(mu_);
  Result<size_t> idx_r = GetFreeFrameLocked();
  int wait_rounds = 0;
  while (!idx_r.ok() &&
         idx_r.status().code() == StatusCode::kResourceExhausted &&
         wait_rounds < options_.pinned_wait_rounds) {
    ++wait_rounds;
    frame_available_.wait_for(lock, options_.pinned_wait_quantum);
    idx_r = GetFreeFrameLocked();
  }
  if (!idx_r.ok()) {
    if (idx_r.status().code() == StatusCode::kResourceExhausted) {
      return Status::ResourceExhausted(util::Format(
          "all %zu buffer frames pinned while allocating a page of file '%s'",
          frames_.size(), disk_->FileName(file).c_str()));
    }
    return idx_r.status();
  }
  if (options_.pin_tracker != nullptr) {
    Status charge =
        options_.pin_tracker->TryCharge(kPageSize, "BufferPool.pins");
    if (!charge.ok()) {
      free_list_.push_back(*idx_r);
      return charge;
    }
  }
  Result<uint32_t> page_no_r = disk_->AllocatePage(file);
  if (!page_no_r.ok()) {
    if (options_.pin_tracker != nullptr) {
      options_.pin_tracker->Release(kPageSize, "BufferPool.pins");
    }
    free_list_.push_back(*idx_r);
    return page_no_r.status();
  }
  const uint32_t page_no = *page_no_r;
  if (page_no_out != nullptr) *page_no_out = page_no;
  Frame& fr = frames_[*idx_r];
  fr.page.Zero();
  fr.file = file;
  fr.page_no = page_no;
  fr.pin_count = 1;
  fr.dirty = true;  // must reach disk eventually
  fr.used = true;
  fr.in_lru = false;
  table_[Key(file, page_no)] = *idx_r;
  return PageGuard(this, *idx_r, &fr.page);
}

void BufferPool::Unpin(size_t frame, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& fr = frames_[frame];
  assert(fr.pin_count > 0);
  if (dirty) fr.dirty = true;
  if (--fr.pin_count == 0) {
    if (options_.pin_tracker != nullptr) {
      options_.pin_tracker->Release(kPageSize, "BufferPool.pins");
    }
    lru_.push_front(frame);
    fr.lru_pos = lru_.begin();
    fr.in_lru = true;
    frame_available_.notify_one();
  }
}

void BufferPool::MarkDirty(size_t frame) {
  std::lock_guard<std::mutex> lock(mu_);
  frames_[frame].dirty = true;
}

Result<size_t> BufferPool::GetFreeFrameLocked() {
  if (!free_list_.empty()) {
    const size_t idx = free_list_.back();
    free_list_.pop_back();
    return idx;
  }
  // Evict the least recently used unpinned frame.
  if (lru_.empty()) {
    return Status::ResourceExhausted("buffer pool exhausted: all frames pinned");
  }
  const size_t victim = lru_.back();
  lru_.pop_back();
  frames_[victim].in_lru = false;
  evictions_.fetch_add(1, std::memory_order_relaxed);
  SMADB_RETURN_NOT_OK(EvictFrameLocked(victim));
  return victim;
}

Status BufferPool::BarrierLocked() {
  if (options_.pre_writeback) {
    SMADB_RETURN_NOT_OK(options_.pre_writeback());
  }
  return Status::OK();
}

Status BufferPool::EvictFrameLocked(size_t idx) {
  Frame& fr = frames_[idx];
  assert(fr.used && fr.pin_count == 0);
  if (fr.dirty) {
    // WAL-before-data: the log must be durable before the mutation it
    // describes can reach the backend.
    SMADB_RETURN_NOT_OK(BarrierLocked());
    SMADB_RETURN_NOT_OK(disk_->WritePage(fr.file, fr.page_no, fr.page));
    dirty_writebacks_.fetch_add(1, std::memory_order_relaxed);
    fr.dirty = false;
  }
  table_.erase(Key(fr.file, fr.page_no));
  fr.used = false;
  return Status::OK();
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  bool barriered = false;
  for (Frame& fr : frames_) {
    if (fr.used && fr.dirty) {
      if (!barriered) {
        // One WAL barrier covers the whole flush: nothing can dirty a frame
        // while we hold the pool mutex.
        SMADB_RETURN_NOT_OK(BarrierLocked());
        barriered = true;
      }
      SMADB_RETURN_NOT_OK(disk_->WritePage(fr.file, fr.page_no, fr.page));
      dirty_writebacks_.fetch_add(1, std::memory_order_relaxed);
      fr.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferPool::DropAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& fr = frames_[i];
    if (!fr.used) continue;
    if (fr.pin_count > 0) {
      return Status::Internal(
          util::Format("DropAll with pinned page (file %u page %u)", fr.file,
                       fr.page_no));
    }
    if (fr.in_lru) {
      lru_.erase(fr.lru_pos);
      fr.in_lru = false;
    }
    SMADB_RETURN_NOT_OK(EvictFrameLocked(i));
    free_list_.push_back(i);
  }
  frame_available_.notify_all();
  return Status::OK();
}

Status BufferPool::DropFileLocked(FileId file, bool writeback) {
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& fr = frames_[i];
    if (!fr.used || fr.file != file) continue;
    if (fr.pin_count > 0) {
      return Status::Internal(
          util::Format("DropFile with pinned page (file %u page %u)", fr.file,
                       fr.page_no));
    }
    if (fr.in_lru) {
      lru_.erase(fr.lru_pos);
      fr.in_lru = false;
    }
    if (!writeback) fr.dirty = false;
    SMADB_RETURN_NOT_OK(EvictFrameLocked(i));
    free_list_.push_back(i);
  }
  frame_available_.notify_all();
  return Status::OK();
}

Status BufferPool::DropFile(FileId file) {
  std::lock_guard<std::mutex> lock(mu_);
  return DropFileLocked(file, /*writeback=*/true);
}

Status BufferPool::DiscardFile(FileId file) {
  std::lock_guard<std::mutex> lock(mu_);
  return DropFileLocked(file, /*writeback=*/false);
}

Status BufferPool::DiscardAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& fr = frames_[i];
    if (!fr.used) continue;
    if (fr.pin_count > 0) {
      return Status::Internal(
          util::Format("DiscardAll with pinned page (file %u page %u)",
                       fr.file, fr.page_no));
    }
    if (fr.in_lru) {
      lru_.erase(fr.lru_pos);
      fr.in_lru = false;
    }
    fr.dirty = false;  // drop the mutation on the floor, like a crash would
    SMADB_RETURN_NOT_OK(EvictFrameLocked(i));
    free_list_.push_back(i);
  }
  frame_available_.notify_all();
  return Status::OK();
}

}  // namespace smadb::storage
