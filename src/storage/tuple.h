// Zero-copy views over fixed-layout tuples.
//
// TupleRef reads a tuple in place on a (pinned) page; TupleBuffer owns the
// bytes of one tuple being assembled. Hot code paths use the typed getters
// directly; GetValue() is the generic escape hatch.
//
// The typed accessors guard their column/type preconditions with
// SMADB_DCHECK (util/dcheck.h): violated invariants — e.g. driven by a
// corrupt page — fail stop with a diagnostic in release builds instead of
// reading out of bounds.

#ifndef SMADB_STORAGE_TUPLE_H_
#define SMADB_STORAGE_TUPLE_H_

#include <cstring>
#include <string_view>
#include <vector>

#include "storage/schema.h"
#include "util/dcheck.h"
#include "util/value.h"

namespace smadb::storage {

/// Read-only view of one tuple. Valid only while the underlying page stays
/// pinned / the underlying buffer stays alive.
class TupleRef {
 public:
  TupleRef() : data_(nullptr), schema_(nullptr) {}
  TupleRef(const uint8_t* data, const Schema* schema)
      : data_(data), schema_(schema) {}

  bool valid() const { return data_ != nullptr; }
  const Schema& schema() const { return *schema_; }
  const uint8_t* data() const { return data_; }

  int32_t GetInt32(size_t col) const {
    SMADB_DCHECK(col < schema_->num_fields());
    SMADB_DCHECK(schema_->field(col).type == util::TypeId::kInt32);
    return Load<int32_t>(col);
  }
  int64_t GetInt64(size_t col) const {
    SMADB_DCHECK(col < schema_->num_fields());
    SMADB_DCHECK(schema_->field(col).type == util::TypeId::kInt64);
    return Load<int64_t>(col);
  }
  double GetDouble(size_t col) const {
    SMADB_DCHECK(col < schema_->num_fields());
    SMADB_DCHECK(schema_->field(col).type == util::TypeId::kDouble);
    return Load<double>(col);
  }
  util::Decimal GetDecimal(size_t col) const {
    SMADB_DCHECK(col < schema_->num_fields());
    SMADB_DCHECK(schema_->field(col).type == util::TypeId::kDecimal);
    return util::Decimal(Load<int64_t>(col));
  }
  util::Date GetDate(size_t col) const {
    SMADB_DCHECK(col < schema_->num_fields());
    SMADB_DCHECK(schema_->field(col).type == util::TypeId::kDate);
    return util::Date(Load<int32_t>(col));
  }
  std::string_view GetString(size_t col) const {
    SMADB_DCHECK(col < schema_->num_fields());
    SMADB_DCHECK(schema_->field(col).type == util::TypeId::kString);
    const Field& f = schema_->field(col);
    const char* p =
        reinterpret_cast<const char*>(data_ + schema_->offset(col));
    return std::string_view(p, strnlen(p, f.capacity));
  }

  /// Generic accessor (allocates for strings).
  util::Value GetValue(size_t col) const {
    const Field& f = schema_->field(col);
    switch (f.type) {
      case util::TypeId::kInt32:
        return util::Value::Int32(GetInt32(col));
      case util::TypeId::kInt64:
        return util::Value::Int64(GetInt64(col));
      case util::TypeId::kDouble:
        return util::Value::MakeDouble(GetDouble(col));
      case util::TypeId::kDecimal:
        return util::Value::MakeDecimal(GetDecimal(col));
      case util::TypeId::kDate:
        return util::Value::MakeDate(GetDate(col));
      case util::TypeId::kString:
        return util::Value::String(std::string(GetString(col)));
    }
    return util::Value();
  }

  /// Integral payload of a non-double, non-string column as int64 — the
  /// uniform representation the SMA layer aggregates over.
  int64_t GetRawInt(size_t col) const {
    const Field& f = schema_->field(col);
    switch (f.type) {
      case util::TypeId::kInt32:
      case util::TypeId::kDate:
        return Load<int32_t>(col);
      case util::TypeId::kInt64:
      case util::TypeId::kDecimal:
        return Load<int64_t>(col);
      default:
        SMADB_DCHECK(false && "GetRawInt on double/string column");
        return 0;
    }
  }

 private:
  template <typename T>
  T Load(size_t col) const {
    T v;
    std::memcpy(&v, data_ + schema_->offset(col), sizeof(T));
    return v;
  }

  const uint8_t* data_;
  const Schema* schema_;
};

/// Owning buffer for assembling one tuple before Append().
class TupleBuffer {
 public:
  explicit TupleBuffer(const Schema* schema)
      : schema_(schema), bytes_(schema->tuple_size(), 0) {}

  const Schema& schema() const { return *schema_; }
  const uint8_t* data() const { return bytes_.data(); }
  size_t size() const { return bytes_.size(); }

  TupleRef AsRef() const { return TupleRef(bytes_.data(), schema_); }

  void SetInt32(size_t col, int32_t v) {
    SMADB_DCHECK(col < schema_->num_fields());
    SMADB_DCHECK(schema_->field(col).type == util::TypeId::kInt32);
    Store(col, v);
  }
  void SetInt64(size_t col, int64_t v) {
    SMADB_DCHECK(col < schema_->num_fields());
    SMADB_DCHECK(schema_->field(col).type == util::TypeId::kInt64);
    Store(col, v);
  }
  void SetDouble(size_t col, double v) {
    SMADB_DCHECK(col < schema_->num_fields());
    SMADB_DCHECK(schema_->field(col).type == util::TypeId::kDouble);
    Store(col, v);
  }
  void SetDecimal(size_t col, util::Decimal v) {
    SMADB_DCHECK(col < schema_->num_fields());
    SMADB_DCHECK(schema_->field(col).type == util::TypeId::kDecimal);
    Store(col, v.cents());
  }
  void SetDate(size_t col, util::Date v) {
    SMADB_DCHECK(col < schema_->num_fields());
    SMADB_DCHECK(schema_->field(col).type == util::TypeId::kDate);
    Store(col, v.days());
  }
  void SetString(size_t col, std::string_view v) {
    SMADB_DCHECK(col < schema_->num_fields());
    const Field& f = schema_->field(col);
    SMADB_DCHECK(f.type == util::TypeId::kString);
    SMADB_DCHECK(v.size() <= f.capacity);
    uint8_t* dst = bytes_.data() + schema_->offset(col);
    std::memset(dst, 0, f.capacity);
    std::memcpy(dst, v.data(), v.size());
  }

  void SetValue(size_t col, const util::Value& v) {
    switch (schema_->field(col).type) {
      case util::TypeId::kInt32:
        SetInt32(col, v.AsInt32());
        break;
      case util::TypeId::kInt64:
        SetInt64(col, v.AsInt64());
        break;
      case util::TypeId::kDouble:
        SetDouble(col, v.AsDouble());
        break;
      case util::TypeId::kDecimal:
        SetDecimal(col, v.AsDecimal());
        break;
      case util::TypeId::kDate:
        SetDate(col, v.AsDate());
        break;
      case util::TypeId::kString:
        SetString(col, v.AsString());
        break;
    }
  }

 private:
  template <typename T>
  void Store(size_t col, T v) {
    std::memcpy(bytes_.data() + schema_->offset(col), &v, sizeof(T));
  }

  const Schema* schema_;
  std::vector<uint8_t> bytes_;
};

}  // namespace smadb::storage

#endif  // SMADB_STORAGE_TUPLE_H_
