#include "storage/column_batch.h"

#include <cstring>

#include "storage/page.h"
#include "storage/table.h"

namespace smadb::storage {

using util::TypeId;
using util::Value;

void ColumnBatch::Configure(const Schema* schema, size_t capacity,
                            std::vector<bool> projection) {
  SMADB_DCHECK(schema != nullptr && capacity > 0);
  SMADB_DCHECK(projection.empty() ||
               projection.size() == schema->num_fields());
  schema_ = schema;
  capacity_ = capacity;
  num_rows_ = 0;
  if (projection.empty()) {
    decoded_.assign(schema->num_fields(), true);
  } else {
    decoded_ = std::move(projection);
  }
  cols_.assign(schema->num_fields(), ColumnVector{});
  for (size_t c = 0; c < schema->num_fields(); ++c) {
    if (!decoded_[c]) continue;
    switch (schema->field(c).type) {
      case TypeId::kDouble:
        cols_[c].f64.reserve(capacity);
        break;
      case TypeId::kString:
        cols_[c].str.reserve(capacity * schema->field(c).capacity);
        break;
      default:
        cols_[c].i64.reserve(capacity);
        break;
    }
  }
}

size_t ColumnBatch::ApproxBytes() const {
  if (schema_ == nullptr) return 0;
  size_t bytes = 0;
  for (size_t c = 0; c < schema_->num_fields(); ++c) {
    if (!decoded_[c]) continue;
    switch (schema_->field(c).type) {
      case TypeId::kDouble:
        bytes += capacity_ * sizeof(double);
        break;
      case TypeId::kString:
        bytes += capacity_ * schema_->field(c).capacity;
        break;
      default:
        bytes += capacity_ * sizeof(int64_t);
        break;
    }
  }
  return bytes;
}

void ColumnBatch::Clear() {
  num_rows_ = 0;
  for (ColumnVector& cv : cols_) {
    cv.i64.clear();
    cv.f64.clear();
    cv.str.clear();
  }
}

void ColumnBatch::AppendRow(const TupleRef& t) {
  SMADB_DCHECK(configured() && !full());
  for (size_t c = 0; c < schema_->num_fields(); ++c) {
    if (!decoded_[c]) continue;
    const Field& f = schema_->field(c);
    ColumnVector& cv = cols_[c];
    switch (f.type) {
      case TypeId::kDouble:
        cv.f64.push_back(t.GetDouble(c));
        break;
      case TypeId::kString: {
        const size_t n0 = cv.str.size();
        cv.str.resize(n0 + f.capacity);
        std::memcpy(cv.str.data() + n0, t.data() + schema_->offset(c),
                    f.capacity);
        break;
      }
      default:
        cv.i64.push_back(t.GetRawInt(c));
        break;
    }
  }
  ++num_rows_;
}

uint16_t ColumnBatch::AppendFromPage(const Table& table, const Page& page,
                                     uint16_t first_slot,
                                     uint16_t end_slot) {
  SMADB_DCHECK(configured());
  const size_t room = capacity_ - num_rows_;
  if (room == 0) return first_slot;

  // Pass 1: collect live slots (bounded by the remaining batch room).
  live_slots_.clear();
  uint16_t s = first_slot;
  for (; s < end_slot && live_slots_.size() < room; ++s) {
    if (!Table::PageSlotDeleted(page, s)) live_slots_.push_back(s);
  }
  const size_t k = live_slots_.size();
  if (k == 0) return s;

  // Pass 2: one strided gather per projected column.
  const uint8_t* base = page.data + table.TupleAreaOffset();
  const size_t tsz = schema_->tuple_size();
  for (size_t c = 0; c < schema_->num_fields(); ++c) {
    if (!decoded_[c]) continue;
    const Field& f = schema_->field(c);
    const size_t off = schema_->offset(c);
    ColumnVector& cv = cols_[c];
    switch (f.type) {
      case TypeId::kInt32:
      case TypeId::kDate: {
        const size_t n0 = cv.i64.size();
        cv.i64.resize(n0 + k);
        for (size_t j = 0; j < k; ++j) {
          int32_t v;
          std::memcpy(&v, base + live_slots_[j] * tsz + off, sizeof(v));
          cv.i64[n0 + j] = v;
        }
        break;
      }
      case TypeId::kInt64:
      case TypeId::kDecimal: {
        const size_t n0 = cv.i64.size();
        cv.i64.resize(n0 + k);
        for (size_t j = 0; j < k; ++j) {
          int64_t v;
          std::memcpy(&v, base + live_slots_[j] * tsz + off, sizeof(v));
          cv.i64[n0 + j] = v;
        }
        break;
      }
      case TypeId::kDouble: {
        const size_t n0 = cv.f64.size();
        cv.f64.resize(n0 + k);
        for (size_t j = 0; j < k; ++j) {
          double v;
          std::memcpy(&v, base + live_slots_[j] * tsz + off, sizeof(v));
          cv.f64[n0 + j] = v;
        }
        break;
      }
      case TypeId::kString: {
        const size_t n0 = cv.str.size();
        cv.str.resize(n0 + k * f.capacity);
        for (size_t j = 0; j < k; ++j) {
          std::memcpy(cv.str.data() + n0 + j * f.capacity,
                      base + live_slots_[j] * tsz + off, f.capacity);
        }
        break;
      }
    }
  }
  num_rows_ += k;
  return s;
}

std::string_view ColumnBatch::StringAt(size_t col, size_t row) const {
  SMADB_DCHECK(row < num_rows_);
  const uint16_t cap = schema_->field(col).capacity;
  const char* p =
      reinterpret_cast<const char*>(StringData(col) + row * cap);
  return std::string_view(p, strnlen(p, cap));
}

Value ColumnBatch::GetValue(size_t col, size_t row) const {
  SMADB_DCHECK(row < num_rows_ && decoded_[col]);
  switch (schema_->field(col).type) {
    case TypeId::kInt32:
      return Value::Int32(static_cast<int32_t>(cols_[col].i64[row]));
    case TypeId::kInt64:
      return Value::Int64(cols_[col].i64[row]);
    case TypeId::kDouble:
      return Value::MakeDouble(cols_[col].f64[row]);
    case TypeId::kDecimal:
      return Value::MakeDecimal(util::Decimal(cols_[col].i64[row]));
    case TypeId::kDate:
      return Value::MakeDate(util::Date(
          static_cast<int32_t>(cols_[col].i64[row])));
    case TypeId::kString:
      return Value::String(std::string(StringAt(col, row)));
  }
  return Value();
}

void ColumnBatch::MaterializeRow(size_t row, TupleBuffer* out) const {
  SMADB_DCHECK(row < num_rows_);
  for (size_t c = 0; c < schema_->num_fields(); ++c) {
    SMADB_DCHECK(decoded_[c] && "MaterializeRow needs a full projection");
    const Field& f = schema_->field(c);
    switch (f.type) {
      case TypeId::kInt32:
        out->SetInt32(c, static_cast<int32_t>(cols_[c].i64[row]));
        break;
      case TypeId::kInt64:
        out->SetInt64(c, cols_[c].i64[row]);
        break;
      case TypeId::kDouble:
        out->SetDouble(c, cols_[c].f64[row]);
        break;
      case TypeId::kDecimal:
        out->SetDecimal(c, util::Decimal(cols_[c].i64[row]));
        break;
      case TypeId::kDate:
        out->SetDate(c, util::Date(
            static_cast<int32_t>(cols_[c].i64[row])));
        break;
      case TypeId::kString:
        out->SetString(c, StringAt(c, row));
        break;
    }
  }
}

}  // namespace smadb::storage
