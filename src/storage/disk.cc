#include "storage/disk.h"

#include <algorithm>

#include "util/crc32c.h"
#include "util/fault.h"
#include "util/string_util.h"

namespace smadb::storage {

using util::FaultKind;
using util::Result;
using util::Status;

namespace {

// Checksum of an all-zero page (what AllocatePage hands out), computed once.
uint32_t ZeroPageCrc() {
  static const uint32_t crc = [] {
    Page p;
    p.Zero();
    return util::Crc32c(p.data, kPageSize);
  }();
  return crc;
}

}  // namespace

std::string_view BackendKindToString(BackendKind k) {
  switch (k) {
    case BackendKind::kSimulated:
      return "sim";
    case BackendKind::kFile:
      return "file";
  }
  return "unknown";
}

uint64_t FaultFlipBitOf(FileId file, uint32_t page_no) {
  uint64_t h = (static_cast<uint64_t>(file) << 32) | page_no;
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  return h % (kPageSize * 8);
}

void FaultFlipBit(Page* page, uint64_t bit) {
  bit %= kPageSize * 8;
  page->data[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
}

// ---------------------------------------------------------------------------
// Shared failpoint routing and access accounting (every backend).

Status DiskBackend::ConsultReadFaults(const std::string& file_name,
                                      uint32_t page_no, bool* flip_delivered) {
  *flip_delivered = false;
  auto fk = util::fault::Hit("disk.read", file_name);
  if (fk && *fk != FaultKind::kBitFlip) {
    return util::InjectedFaultStatus(
        *fk, util::Format("disk.read '%s' page %u", file_name.c_str(),
                          page_no));
  }
  if (fk == FaultKind::kBitFlip ||
      util::fault::Hit("disk.page_bitflip", file_name).has_value()) {
    *flip_delivered = true;
  }
  return Status::OK();
}

Status DiskBackend::ConsultWriteFaults(const std::string& file_name,
                                       uint32_t page_no, bool* flip_stored) {
  *flip_stored = false;
  auto fk = util::fault::Hit("disk.write", file_name);
  if (fk && *fk != FaultKind::kBitFlip) {
    return util::InjectedFaultStatus(
        *fk, util::Format("disk.write '%s' page %u", file_name.c_str(),
                          page_no));
  }
  if (fk == FaultKind::kBitFlip) *flip_stored = true;
  return Status::OK();
}

Status DiskBackend::ConsultSyncFaults() {
  if (auto fk = util::fault::Hit("disk.sync")) {
    return util::InjectedFaultStatus(*fk, "disk.sync");
  }
  return Status::OK();
}

void DiskBackend::AccountRead(int64_t* last, uint32_t page_no) {
  ++stats_.page_reads;
  const int64_t gap = static_cast<int64_t>(page_no) - *last;
  if (gap == 1) {
    ++stats_.sequential_reads;
  } else if (gap > 1 && gap <= kNearSeekWindowPages) {
    ++stats_.near_reads;
  } else {
    ++stats_.random_reads;
  }
  *last = page_no;
}

void DiskBackend::AccountWrite(int64_t* last, uint32_t page_no) {
  ++stats_.page_writes;
  const int64_t gap = static_cast<int64_t>(page_no) - *last;
  if (gap == 1) {
    ++stats_.sequential_writes;
  } else if (gap > 1 && gap <= kNearSeekWindowPages) {
    ++stats_.near_writes;
  } else {
    ++stats_.random_writes;
  }
  *last = page_no;
}

// ---------------------------------------------------------------------------
// SimulatedDisk.

Result<FileId> SimulatedDisk::CreateFile(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (name.empty()) {
    return Status::InvalidArgument(
        "file name must be non-empty (empty marks a removed file)");
  }
  FileId reuse = kInvalidFile;
  for (size_t i = 0; i < files_.size(); ++i) {
    if (files_[i].name == name) {
      return Status::AlreadyExists("file '" + name + "' already exists");
    }
    if (files_[i].name.empty() && reuse == kInvalidFile) {
      reuse = static_cast<FileId>(i);
    }
  }
  File file;
  file.name = std::move(name);
  if (reuse != kInvalidFile) {
    files_[reuse] = std::move(file);
    return reuse;
  }
  files_.push_back(std::move(file));
  return static_cast<FileId>(files_.size() - 1);
}

Result<FileId> SimulatedDisk::FindFile(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < files_.size(); ++i) {
    if (!files_[i].name.empty() && files_[i].name == name) {
      return static_cast<FileId>(i);
    }
  }
  return Status::NotFound("no file named '" + std::string(name) + "'");
}

Status SimulatedDisk::RemoveFile(FileId file) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file >= files_.size() || files_[file].name.empty()) {
    return Status::InvalidArgument(util::Format("bad file id %u", file));
  }
  File& f = files_[file];
  f.name.clear();
  f.pages.clear();
  f.checksums.clear();
  f.free_pages.clear();
  f.last_read = -2;
  f.last_write = -2;
  return Status::OK();
}

Result<uint32_t> SimulatedDisk::AllocatePage(FileId file) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file >= files_.size() || files_[file].name.empty()) {
    return Status::InvalidArgument(util::Format("bad file id %u", file));
  }
  File& f = files_[file];
  if (!f.free_pages.empty()) {
    const uint32_t page_no = f.free_pages.back();
    f.free_pages.pop_back();
    f.pages[page_no]->Zero();
    f.checksums[page_no] = ZeroPageCrc();
    return page_no;
  }
  auto page = std::make_unique<Page>();
  page->Zero();
  f.pages.push_back(std::move(page));
  f.checksums.push_back(ZeroPageCrc());
  return static_cast<uint32_t>(f.pages.size() - 1);
}

Status SimulatedDisk::FreePage(FileId file, uint32_t page_no) {
  std::lock_guard<std::mutex> lock(mu_);
  SMADB_RETURN_NOT_OK(CheckBounds(file, page_no));
  File& f = files_[file];
  if (std::find(f.free_pages.begin(), f.free_pages.end(), page_no) !=
      f.free_pages.end()) {
    return Status::InvalidArgument(
        util::Format("page %u of file '%s' is already free", page_no,
                     f.name.c_str()));
  }
  f.pages[page_no]->Zero();
  f.checksums[page_no] = ZeroPageCrc();
  f.free_pages.push_back(page_no);
  return Status::OK();
}

Status SimulatedDisk::CheckBounds(FileId file, uint32_t page_no) const {
  if (file >= files_.size()) {
    return Status::InvalidArgument(util::Format("bad file id %u", file));
  }
  if (page_no >= files_[file].pages.size()) {
    return Status::OutOfRange(
        util::Format("page %u out of range for file '%s' (%zu pages)", page_no,
                     files_[file].name.c_str(), files_[file].pages.size()));
  }
  return Status::OK();
}

Status SimulatedDisk::ReadPage(FileId file, uint32_t page_no, Page* out) {
  std::lock_guard<std::mutex> lock(mu_);
  SMADB_RETURN_NOT_OK(CheckBounds(file, page_no));
  File& f = files_[file];
  // Failpoints: errors abort the read before any transfer is accounted;
  // bit flips corrupt only the delivered copy (the stored page — and its
  // checksum — stay intact, so the flip is silent until verified).
  bool flip = false;
  SMADB_RETURN_NOT_OK(ConsultReadFaults(f.name, page_no, &flip));
  *out = *f.pages[page_no];
  if (flip) FaultFlipBit(out, FaultFlipBitOf(file, page_no));
  AccountRead(&f.last_read, page_no);
  return Status::OK();
}

Status SimulatedDisk::WritePage(FileId file, uint32_t page_no,
                                const Page& page) {
  std::lock_guard<std::mutex> lock(mu_);
  SMADB_RETURN_NOT_OK(CheckBounds(file, page_no));
  File& f = files_[file];
  bool flip = false;
  SMADB_RETURN_NOT_OK(ConsultWriteFaults(f.name, page_no, &flip));
  *f.pages[page_no] = page;
  // Stamp the checksum of what the writer *meant* to store; a bit-flip
  // fault then corrupts the stored bytes underneath it, which the next
  // verified read detects.
  f.checksums[page_no] = util::Crc32c(page.data, kPageSize);
  if (flip) {
    FaultFlipBit(f.pages[page_no].get(), FaultFlipBitOf(file, page_no));
  }
  AccountWrite(&f.last_write, page_no);
  return Status::OK();
}

Status SimulatedDisk::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  SMADB_RETURN_NOT_OK(ConsultSyncFaults());
  ++stats_.syncs;
  return Status::OK();
}

Result<uint32_t> SimulatedDisk::PageChecksum(FileId file,
                                             uint32_t page_no) const {
  std::lock_guard<std::mutex> lock(mu_);
  SMADB_RETURN_NOT_OK(CheckBounds(file, page_no));
  return files_[file].checksums[page_no];
}

Status SimulatedDisk::CorruptPageForTesting(FileId file, uint32_t page_no,
                                            uint64_t bit) {
  std::lock_guard<std::mutex> lock(mu_);
  SMADB_RETURN_NOT_OK(CheckBounds(file, page_no));
  FaultFlipBit(files_[file].pages[page_no].get(), bit);
  return Status::OK();
}

Status SimulatedDisk::TruncateFile(FileId file) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file >= files_.size()) {
    return Status::InvalidArgument(util::Format("bad file id %u", file));
  }
  files_[file].pages.clear();
  files_[file].checksums.clear();
  files_[file].free_pages.clear();
  files_[file].last_read = -2;
  files_[file].last_write = -2;
  return Status::OK();
}

Result<uint32_t> SimulatedDisk::NumPages(FileId file) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (file >= files_.size()) {
    return Status::InvalidArgument(util::Format("bad file id %u", file));
  }
  return static_cast<uint32_t>(files_[file].pages.size());
}

}  // namespace smadb::storage
