#include "storage/disk.h"

#include "util/string_util.h"

namespace smadb::storage {

using util::Result;
using util::Status;

Result<FileId> SimulatedDisk::CreateFile(std::string name) {
  for (const File& f : files_) {
    if (f.name == name) {
      return Status::AlreadyExists("file '" + name + "' already exists");
    }
  }
  files_.push_back(File{std::move(name), {}, -2, -2});
  return static_cast<FileId>(files_.size() - 1);
}

Result<FileId> SimulatedDisk::FindFile(std::string_view name) const {
  for (size_t i = 0; i < files_.size(); ++i) {
    if (files_[i].name == name) return static_cast<FileId>(i);
  }
  return Status::NotFound("no file named '" + std::string(name) + "'");
}

Result<uint32_t> SimulatedDisk::AllocatePage(FileId file) {
  if (file >= files_.size()) {
    return Status::InvalidArgument(util::Format("bad file id %u", file));
  }
  auto page = std::make_unique<Page>();
  page->Zero();
  files_[file].pages.push_back(std::move(page));
  return static_cast<uint32_t>(files_[file].pages.size() - 1);
}

Status SimulatedDisk::CheckBounds(FileId file, uint32_t page_no) const {
  if (file >= files_.size()) {
    return Status::InvalidArgument(util::Format("bad file id %u", file));
  }
  if (page_no >= files_[file].pages.size()) {
    return Status::OutOfRange(
        util::Format("page %u out of range for file '%s' (%zu pages)", page_no,
                     files_[file].name.c_str(), files_[file].pages.size()));
  }
  return Status::OK();
}

Status SimulatedDisk::ReadPage(FileId file, uint32_t page_no, Page* out) {
  SMADB_RETURN_NOT_OK(CheckBounds(file, page_no));
  File& f = files_[file];
  *out = *f.pages[page_no];
  ++stats_.page_reads;
  const int64_t gap = static_cast<int64_t>(page_no) - f.last_read;
  if (gap == 1) {
    ++stats_.sequential_reads;
  } else if (gap > 1 && gap <= kNearSeekWindowPages) {
    ++stats_.near_reads;
  } else {
    ++stats_.random_reads;
  }
  f.last_read = page_no;
  return Status::OK();
}

Status SimulatedDisk::WritePage(FileId file, uint32_t page_no,
                                const Page& page) {
  SMADB_RETURN_NOT_OK(CheckBounds(file, page_no));
  File& f = files_[file];
  *f.pages[page_no] = page;
  ++stats_.page_writes;
  const int64_t gap = static_cast<int64_t>(page_no) - f.last_write;
  if (gap == 1) {
    ++stats_.sequential_writes;
  } else if (gap > 1 && gap <= kNearSeekWindowPages) {
    ++stats_.near_writes;
  } else {
    ++stats_.random_writes;
  }
  f.last_write = page_no;
  return Status::OK();
}

Status SimulatedDisk::TruncateFile(FileId file) {
  if (file >= files_.size()) {
    return Status::InvalidArgument(util::Format("bad file id %u", file));
  }
  files_[file].pages.clear();
  files_[file].last_read = -2;
  files_[file].last_write = -2;
  return Status::OK();
}

Result<uint32_t> SimulatedDisk::NumPages(FileId file) const {
  if (file >= files_.size()) {
    return Status::InvalidArgument(util::Format("bad file id %u", file));
  }
  return static_cast<uint32_t>(files_[file].pages.size());
}

}  // namespace smadb::storage
