#include "storage/disk.h"

#include "util/crc32c.h"
#include "util/fault.h"
#include "util/string_util.h"

namespace smadb::storage {

using util::FaultKind;
using util::Result;
using util::Status;

namespace {

// Checksum of an all-zero page (what AllocatePage hands out), computed once.
uint32_t ZeroPageCrc() {
  static const uint32_t crc = [] {
    Page p;
    p.Zero();
    return util::Crc32c(p.data, kPageSize);
  }();
  return crc;
}

// Deterministic bit position for injected single-bit flips: a cheap mix of
// (file, page) so repeated runs corrupt the same bit.
uint64_t FlipBitOf(FileId file, uint32_t page_no) {
  uint64_t h = (static_cast<uint64_t>(file) << 32) | page_no;
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  return h % (kPageSize * 8);
}

void FlipBit(Page* page, uint64_t bit) {
  page->data[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
}

}  // namespace

Result<FileId> SimulatedDisk::CreateFile(std::string name) {
  for (const File& f : files_) {
    if (f.name == name) {
      return Status::AlreadyExists("file '" + name + "' already exists");
    }
  }
  File file;
  file.name = std::move(name);
  files_.push_back(std::move(file));
  return static_cast<FileId>(files_.size() - 1);
}

Result<FileId> SimulatedDisk::FindFile(std::string_view name) const {
  for (size_t i = 0; i < files_.size(); ++i) {
    if (files_[i].name == name) return static_cast<FileId>(i);
  }
  return Status::NotFound("no file named '" + std::string(name) + "'");
}

Result<uint32_t> SimulatedDisk::AllocatePage(FileId file) {
  if (file >= files_.size()) {
    return Status::InvalidArgument(util::Format("bad file id %u", file));
  }
  auto page = std::make_unique<Page>();
  page->Zero();
  files_[file].pages.push_back(std::move(page));
  files_[file].checksums.push_back(ZeroPageCrc());
  return static_cast<uint32_t>(files_[file].pages.size() - 1);
}

Status SimulatedDisk::CheckBounds(FileId file, uint32_t page_no) const {
  if (file >= files_.size()) {
    return Status::InvalidArgument(util::Format("bad file id %u", file));
  }
  if (page_no >= files_[file].pages.size()) {
    return Status::OutOfRange(
        util::Format("page %u out of range for file '%s' (%zu pages)", page_no,
                     files_[file].name.c_str(), files_[file].pages.size()));
  }
  return Status::OK();
}

Status SimulatedDisk::ReadPage(FileId file, uint32_t page_no, Page* out) {
  SMADB_RETURN_NOT_OK(CheckBounds(file, page_no));
  File& f = files_[file];
  // Failpoints: errors abort the read before any transfer is accounted;
  // bit flips corrupt only the delivered copy (the stored page — and its
  // checksum — stay intact, so the flip is silent until verified).
  auto fk = util::fault::Hit("disk.read", f.name);
  if (fk == FaultKind::kTransient || fk == FaultKind::kPermanent) {
    return Status::IOError(util::Format(
        "injected %s fault reading file '%s' page %u",
        std::string(util::FaultKindToString(*fk)).c_str(), f.name.c_str(),
        page_no));
  }
  *out = *f.pages[page_no];
  if (fk == FaultKind::kBitFlip ||
      util::fault::Hit("disk.page_bitflip", f.name).has_value()) {
    FlipBit(out, FlipBitOf(file, page_no));
  }
  ++stats_.page_reads;
  const int64_t gap = static_cast<int64_t>(page_no) - f.last_read;
  if (gap == 1) {
    ++stats_.sequential_reads;
  } else if (gap > 1 && gap <= kNearSeekWindowPages) {
    ++stats_.near_reads;
  } else {
    ++stats_.random_reads;
  }
  f.last_read = page_no;
  return Status::OK();
}

Status SimulatedDisk::WritePage(FileId file, uint32_t page_no,
                                const Page& page) {
  SMADB_RETURN_NOT_OK(CheckBounds(file, page_no));
  File& f = files_[file];
  auto fk = util::fault::Hit("disk.write", f.name);
  if (fk == FaultKind::kTransient || fk == FaultKind::kPermanent) {
    return Status::IOError(util::Format(
        "injected %s fault writing file '%s' page %u",
        std::string(util::FaultKindToString(*fk)).c_str(), f.name.c_str(),
        page_no));
  }
  *f.pages[page_no] = page;
  // Stamp the checksum of what the writer *meant* to store; a bit-flip
  // fault then corrupts the stored bytes underneath it, which the next
  // verified read detects.
  f.checksums[page_no] = util::Crc32c(page.data, kPageSize);
  if (fk == FaultKind::kBitFlip) {
    FlipBit(f.pages[page_no].get(), FlipBitOf(file, page_no));
  }
  ++stats_.page_writes;
  const int64_t gap = static_cast<int64_t>(page_no) - f.last_write;
  if (gap == 1) {
    ++stats_.sequential_writes;
  } else if (gap > 1 && gap <= kNearSeekWindowPages) {
    ++stats_.near_writes;
  } else {
    ++stats_.random_writes;
  }
  f.last_write = page_no;
  return Status::OK();
}

Result<uint32_t> SimulatedDisk::PageChecksum(FileId file,
                                             uint32_t page_no) const {
  SMADB_RETURN_NOT_OK(CheckBounds(file, page_no));
  return files_[file].checksums[page_no];
}

Status SimulatedDisk::CorruptPageForTesting(FileId file, uint32_t page_no,
                                            uint64_t bit) {
  SMADB_RETURN_NOT_OK(CheckBounds(file, page_no));
  FlipBit(files_[file].pages[page_no].get(), bit % (kPageSize * 8));
  return Status::OK();
}

Status SimulatedDisk::TruncateFile(FileId file) {
  if (file >= files_.size()) {
    return Status::InvalidArgument(util::Format("bad file id %u", file));
  }
  files_[file].pages.clear();
  files_[file].checksums.clear();
  files_[file].last_read = -2;
  files_[file].last_write = -2;
  return Status::OK();
}

Result<uint32_t> SimulatedDisk::NumPages(FileId file) const {
  if (file >= files_.size()) {
    return Status::InvalidArgument(util::Format("bad file id %u", file));
  }
  return static_cast<uint32_t>(files_[file].pages.size());
}

}  // namespace smadb::storage
