// Catalog: owns the tables of one database instance.

#ifndef SMADB_STORAGE_CATALOG_H_
#define SMADB_STORAGE_CATALOG_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/table.h"
#include "util/status.h"

namespace smadb::storage {

/// Name → Table registry. The SMA layer keeps its own per-table registry
/// (sma::SmaSet); the catalog is deliberately index-agnostic. Thread-safe:
/// DDL is serialized by the database writer lock, but lookups race with it
/// from query sessions, so the registry is guarded internally.
class Catalog {
 public:
  explicit Catalog(BufferPool* pool) : pool_(pool) {}

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates and registers a table.
  util::Result<Table*> CreateTable(std::string name, Schema schema,
                                   TableOptions options = {});

  /// Registers an already-restored table (recovery path).
  util::Result<Table*> AttachTable(std::unique_ptr<Table> table);

  /// Looks up a table by name.
  util::Result<Table*> GetTable(std::string_view name) const;

  /// All registered tables, in creation order.
  std::vector<Table*> Tables() const;

  BufferPool* pool() const { return pool_; }

 private:
  BufferPool* pool_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace smadb::storage

#endif  // SMADB_STORAGE_CATALOG_H_
