#include "storage/schema.h"

namespace smadb::storage {

using util::Result;
using util::Status;
using util::TypeId;

size_t Field::width() const {
  switch (type) {
    case TypeId::kInt32:
    case TypeId::kDate:
      return 4;
    case TypeId::kInt64:
    case TypeId::kDouble:
    case TypeId::kDecimal:
      return 8;
    case TypeId::kString:
      return capacity;
  }
  return 0;
}

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  offsets_.reserve(fields_.size());
  size_t off = 0;
  for (const Field& f : fields_) {
    offsets_.push_back(off);
    off += f.width();
  }
  tuple_size_ = off;
}

Result<size_t> Schema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + std::string(name) + "'");
}

bool Schema::Equals(const Schema& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name != other.fields_[i].name ||
        fields_[i].type != other.fields_[i].type ||
        fields_[i].width() != other.fields_[i].width()) {
      return false;
    }
  }
  return true;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ' ';
    out += util::TypeIdToString(fields_[i].type);
    if (fields_[i].type == TypeId::kString) {
      out += '(' + std::to_string(fields_[i].capacity) + ')';
    }
  }
  out += ')';
  return out;
}

}  // namespace smadb::storage
