#include "expr/predicate.h"

#include <cstring>

#include "util/string_util.h"

namespace smadb::expr {

using storage::Schema;
using storage::TupleRef;
using util::Result;
using util::Status;
using util::TypeId;
using util::Value;

std::string_view CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {

Status CheckGradableColumn(const Schema* schema, size_t idx) {
  const TypeId t = schema->field(idx).type;
  if (t == TypeId::kDouble || t == TypeId::kString) {
    return Status::NotSupported(util::Format(
        "predicate column '%s' must be integral-family (int/date/decimal)",
        schema->field(idx).name.c_str()));
  }
  return Status::OK();
}

}  // namespace

std::shared_ptr<const Predicate> Predicate::True() {
  static const std::shared_ptr<const Predicate> kTrue(
      new Predicate(Kind::kTrue));
  return kTrue;
}

Result<PredicatePtr> Predicate::AtomConst(const Schema* schema,
                                          std::string_view column, CmpOp op,
                                          Value constant) {
  SMADB_ASSIGN_OR_RETURN(size_t idx, schema->FieldIndex(column));
  SMADB_RETURN_NOT_OK(CheckGradableColumn(schema, idx));
  const TypeId col_type = schema->field(idx).type;
  const TypeId const_type = constant.type();
  // Allow identical types, plus int literals against any integer width.
  const bool both_plain_int =
      (col_type == TypeId::kInt32 || col_type == TypeId::kInt64) &&
      (const_type == TypeId::kInt32 || const_type == TypeId::kInt64);
  if (col_type != const_type && !both_plain_int) {
    return Status::InvalidArgument(util::Format(
        "constant type %s does not match column '%s' of type %s",
        std::string(util::TypeIdToString(const_type)).c_str(),
        schema->field(idx).name.c_str(),
        std::string(util::TypeIdToString(col_type)).c_str()));
  }
  auto p = std::shared_ptr<Predicate>(new Predicate(Kind::kAtomConst));
  p->column_ = idx;
  p->op_ = op;
  p->constant_ = constant.RawInt();
  return PredicatePtr(p);
}

Result<PredicatePtr> Predicate::AtomTwoCols(const Schema* schema,
                                            std::string_view column_a,
                                            CmpOp op,
                                            std::string_view column_b) {
  SMADB_ASSIGN_OR_RETURN(size_t a, schema->FieldIndex(column_a));
  SMADB_ASSIGN_OR_RETURN(size_t b, schema->FieldIndex(column_b));
  SMADB_RETURN_NOT_OK(CheckGradableColumn(schema, a));
  SMADB_RETURN_NOT_OK(CheckGradableColumn(schema, b));
  if (schema->field(a).type != schema->field(b).type) {
    return Status::InvalidArgument(util::Format(
        "columns '%s' and '%s' have different types",
        schema->field(a).name.c_str(), schema->field(b).name.c_str()));
  }
  auto p = std::shared_ptr<Predicate>(new Predicate(Kind::kAtomTwoCols));
  p->column_ = a;
  p->op_ = op;
  p->rhs_column_ = b;
  return PredicatePtr(p);
}

Result<PredicatePtr> Predicate::AtomString(const Schema* schema,
                                           std::string_view column, CmpOp op,
                                           std::string literal) {
  SMADB_ASSIGN_OR_RETURN(size_t idx, schema->FieldIndex(column));
  if (schema->field(idx).type != TypeId::kString) {
    return Status::InvalidArgument(
        "AtomString needs a string column; '" + std::string(column) +
        "' is " + std::string(util::TypeIdToString(schema->field(idx).type)));
  }
  if (op != CmpOp::kEq && op != CmpOp::kNe) {
    return Status::NotSupported(
        "string atoms support equality comparisons only");
  }
  if (literal.size() > schema->field(idx).capacity) {
    return Status::InvalidArgument("literal exceeds column capacity");
  }
  auto p = std::shared_ptr<Predicate>(new Predicate(Kind::kAtomString));
  p->column_ = idx;
  p->op_ = op;
  p->str_constant_ = std::move(literal);
  return PredicatePtr(p);
}

PredicatePtr Predicate::And(PredicatePtr a, PredicatePtr b) {
  auto p = std::shared_ptr<Predicate>(new Predicate(Kind::kAnd));
  p->left_ = std::move(a);
  p->right_ = std::move(b);
  return p;
}

PredicatePtr Predicate::Or(PredicatePtr a, PredicatePtr b) {
  auto p = std::shared_ptr<Predicate>(new Predicate(Kind::kOr));
  p->left_ = std::move(a);
  p->right_ = std::move(b);
  return p;
}

bool Predicate::Eval(const TupleRef& t) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kAtomConst:
      return CompareInt(t.GetRawInt(column_), op_, constant_);
    case Kind::kAtomTwoCols:
      return CompareInt(t.GetRawInt(column_), op_, t.GetRawInt(rhs_column_));
    case Kind::kAtomString: {
      const bool eq = t.GetString(column_) == str_constant_;
      return op_ == CmpOp::kEq ? eq : !eq;
    }
    case Kind::kAnd:
      return left_->Eval(t) && right_->Eval(t);
    case Kind::kOr:
      return left_->Eval(t) || right_->Eval(t);
  }
  return false;
}

namespace {

// Dispatches on `op` once, so each row loop runs a single fused compare —
// the point of the vectorized path.
template <typename Lhs, typename Rhs>
void FilterCompare(storage::SelVector* sel, CmpOp op, Lhs lhs, Rhs rhs) {
  switch (op) {
    case CmpOp::kEq:
      sel->Filter([&](uint32_t r) { return lhs(r) == rhs(r); });
      break;
    case CmpOp::kNe:
      sel->Filter([&](uint32_t r) { return lhs(r) != rhs(r); });
      break;
    case CmpOp::kLt:
      sel->Filter([&](uint32_t r) { return lhs(r) < rhs(r); });
      break;
    case CmpOp::kLe:
      sel->Filter([&](uint32_t r) { return lhs(r) <= rhs(r); });
      break;
    case CmpOp::kGt:
      sel->Filter([&](uint32_t r) { return lhs(r) > rhs(r); });
      break;
    case CmpOp::kGe:
      sel->Filter([&](uint32_t r) { return lhs(r) >= rhs(r); });
      break;
  }
}

}  // namespace

void Predicate::EvalBatch(const storage::ColumnBatch& batch,
                          storage::SelVector* sel) const {
  switch (kind_) {
    case Kind::kTrue:
      return;  // keeps sel untouched — same rows as per-tuple true
    case Kind::kAtomConst: {
      const int64_t* v = batch.Ints(column_);
      const int64_t c = constant_;
      FilterCompare(
          sel, op_, [v](uint32_t r) { return v[r]; },
          [c](uint32_t) { return c; });
      return;
    }
    case Kind::kAtomTwoCols: {
      const int64_t* a = batch.Ints(column_);
      const int64_t* b = batch.Ints(rhs_column_);
      FilterCompare(
          sel, op_, [a](uint32_t r) { return a[r]; },
          [b](uint32_t r) { return b[r]; });
      return;
    }
    case Kind::kAtomString: {
      // Stored strings are zero-padded with no interior NULs, so comparing
      // the full capacity against the zero-padded literal is exactly the
      // scalar strnlen-view equality.
      const uint8_t* data = batch.StringData(column_);
      const uint16_t cap = batch.schema().field(column_).capacity;
      std::string padded(cap, '\0');
      std::memcpy(padded.data(), str_constant_.data(), str_constant_.size());
      const bool want_eq = op_ == CmpOp::kEq;
      sel->Filter([&](uint32_t r) {
        return (std::memcmp(data + static_cast<size_t>(r) * cap,
                            padded.data(), cap) == 0) == want_eq;
      });
      return;
    }
    case Kind::kAnd:
      left_->EvalBatch(batch, sel);
      if (!sel->empty()) right_->EvalBatch(batch, sel);
      return;
    case Kind::kOr: {
      storage::SelVector right_sel = *sel;
      left_->EvalBatch(batch, sel);
      right_->EvalBatch(batch, &right_sel);
      sel->UnionWith(right_sel);
      return;
    }
  }
}

void Predicate::AddReferencedColumns(std::vector<bool>* mask) const {
  switch (kind_) {
    case Kind::kTrue:
      return;
    case Kind::kAtomConst:
    case Kind::kAtomString:
      (*mask)[column_] = true;
      return;
    case Kind::kAtomTwoCols:
      (*mask)[column_] = true;
      (*mask)[rhs_column_] = true;
      return;
    case Kind::kAnd:
    case Kind::kOr:
      left_->AddReferencedColumns(mask);
      right_->AddReferencedColumns(mask);
      return;
  }
}

std::string Predicate::ToString(const Schema* schema) const {
  auto col_name = [&](size_t idx) {
    return schema != nullptr ? schema->field(idx).name
                             : "#" + std::to_string(idx);
  };
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kAtomConst:
      return col_name(column_) + " " + std::string(CmpOpToString(op_)) + " " +
             std::to_string(constant_);
    case Kind::kAtomTwoCols:
      return col_name(column_) + " " + std::string(CmpOpToString(op_)) + " " +
             col_name(rhs_column_);
    case Kind::kAtomString:
      return col_name(column_) + " " + std::string(CmpOpToString(op_)) +
             " '" + str_constant_ + "'";
    case Kind::kAnd:
      return "(" + left_->ToString(schema) + " and " +
             right_->ToString(schema) + ")";
    case Kind::kOr:
      return "(" + left_->ToString(schema) + " or " +
             right_->ToString(schema) + ")";
  }
  return "?";
}

}  // namespace smadb::expr
