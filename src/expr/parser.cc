#include "expr/parser.h"

#include <cctype>

#include "util/string_util.h"

namespace smadb::expr {

using internal::Token;
using internal::TokKind;
using storage::Schema;
using util::Result;
using util::Status;
using util::Value;

namespace internal {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

char ToLower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> out;
  size_t i = 0;
  const auto peek = [&](size_t off = 0) -> char {
    return i + off < text.size() ? text[i + off] : '\0';
  };
  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    Token tok;
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      // Number: integer or two-digit decimal.
      size_t j = i;
      while (std::isdigit(static_cast<unsigned char>(peek(j - i))) != 0) ++j;
      if (j < text.size() && text[j] == '.') {
        size_t k = j + 1;
        while (k < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[k])) != 0) {
          ++k;
        }
        const std::string_view frac = text.substr(j + 1, k - j - 1);
        if (frac.empty() || frac.size() > 2) {
          return Status::InvalidArgument(
              "decimal literals carry at most two fractional digits: '" +
              std::string(text.substr(i, k - i)) + "'");
        }
        int64_t whole = 0;
        for (size_t p = i; p < j; ++p) whole = whole * 10 + (text[p] - '0');
        int64_t cents = 0;
        for (char f : frac) cents = cents * 10 + (f - '0');
        if (frac.size() == 1) cents *= 10;
        tok.kind = TokKind::kDecimal;
        tok.value = whole * 100 + cents;
        i = k;
      } else {
        int64_t v = 0;
        for (size_t p = i; p < j; ++p) v = v * 10 + (text[p] - '0');
        tok.kind = TokKind::kInt;
        tok.value = v;
        i = j;
      }
      out.push_back(std::move(tok));
      continue;
    }
    if (IsIdentChar(c)) {
      size_t j = i;
      std::string ident;
      while (j < text.size() && IsIdentChar(text[j])) {
        ident += ToLower(text[j]);
        ++j;
      }
      i = j;
      // `date '....'` — the keyword is folded into the literal.
      if (ident == "date") {
        while (i < text.size() &&
               std::isspace(static_cast<unsigned char>(text[i])) != 0) {
          ++i;
        }
        if (i >= text.size() || text[i] != '\'') {
          return Status::InvalidArgument(
              "expected quoted literal after 'date'");
        }
        // Fall through to the quoted-literal case below; the kDate kind
        // records that a date literal is mandatory here.
        tok.kind = TokKind::kDate;
      } else {
        tok.kind = TokKind::kIdent;
        tok.text = std::move(ident);
        out.push_back(std::move(tok));
        continue;
      }
    }
    if (peek() == '\'') {
      const size_t close = text.find('\'', i + 1);
      if (close == std::string_view::npos) {
        return Status::InvalidArgument("unterminated quoted literal");
      }
      const std::string_view body = text.substr(i + 1, close - i - 1);
      const bool forced_date = tok.kind == TokKind::kDate;
      auto d = util::Date::Parse(body);
      if (d.ok()) {
        tok.kind = TokKind::kDate;
        tok.value = d->days();
      } else if (forced_date) {
        return d.status();  // `date '...'` with a malformed literal
      } else {
        tok.kind = TokKind::kString;
        tok.text = std::string(body);
      }
      out.push_back(std::move(tok));
      i = close + 1;
      continue;
    }
    switch (c) {
      case '(':
        tok.kind = TokKind::kLParen;
        ++i;
        break;
      case ')':
        tok.kind = TokKind::kRParen;
        ++i;
        break;
      case ',':
        tok.kind = TokKind::kComma;
        ++i;
        break;
      case '*':
        tok.kind = TokKind::kStar;
        ++i;
        break;
      case '+':
        tok.kind = TokKind::kPlus;
        ++i;
        break;
      case '-':
        tok.kind = TokKind::kMinus;
        ++i;
        break;
      case '=':
        tok.kind = TokKind::kCmp;
        tok.text = "=";
        ++i;
        break;
      case '!':
        if (peek(1) != '=') {
          return Status::InvalidArgument("stray '!' (did you mean '!=') ");
        }
        tok.kind = TokKind::kCmp;
        tok.text = "!=";
        i += 2;
        break;
      case '<':
        tok.kind = TokKind::kCmp;
        if (peek(1) == '=') {
          tok.text = "<=";
          i += 2;
        } else if (peek(1) == '>') {
          tok.text = "!=";
          i += 2;
        } else {
          tok.text = "<";
          ++i;
        }
        break;
      case '>':
        tok.kind = TokKind::kCmp;
        if (peek(1) == '=') {
          tok.text = ">=";
          i += 2;
        } else {
          tok.text = ">";
          ++i;
        }
        break;
      default:
        return Status::InvalidArgument(
            util::Format("unexpected character '%c' in '%s'", c,
                         std::string(text).c_str()));
    }
    out.push_back(std::move(tok));
  }
  out.push_back(Token{});  // kEnd sentinel
  return out;
}

std::string TokensToText(const std::vector<Token>& tokens, size_t begin,
                         size_t end) {
  std::string out;
  for (size_t i = begin; i < end && i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (!out.empty()) out += ' ';
    switch (t.kind) {
      case TokKind::kIdent:
        out += t.text;
        break;
      case TokKind::kInt:
        out += std::to_string(t.value);
        break;
      case TokKind::kDecimal:
        out += util::Decimal(t.value).ToString();
        break;
      case TokKind::kDate:
        out += "'" + util::Date(static_cast<int32_t>(t.value)).ToString() +
               "'";
        break;
      case TokKind::kString:
        out += "'" + t.text + "'";
        break;
      case TokKind::kLParen:
        out += '(';
        break;
      case TokKind::kRParen:
        out += ')';
        break;
      case TokKind::kComma:
        out += ',';
        break;
      case TokKind::kStar:
        out += '*';
        break;
      case TokKind::kPlus:
        out += '+';
        break;
      case TokKind::kMinus:
        out += '-';
        break;
      case TokKind::kCmp:
        out += t.text;
        break;
      case TokKind::kEnd:
        break;
    }
  }
  return out;
}

}  // namespace internal

namespace {

// Recursive-descent parser over the token stream.
class Parser {
 public:
  Parser(const Schema* schema, std::vector<Token> tokens)
      : schema_(schema), tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  Token Take() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == TokKind::kEnd; }

  bool TakeIdent(std::string_view kw) {
    if (Peek().kind == TokKind::kIdent && Peek().text == kw) {
      ++pos_;
      return true;
    }
    return false;
  }

  // expr := term (('+'|'-') term)*
  Result<ExprPtr> ParseExpression() {
    SMADB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseTerm());
    while (Peek().kind == TokKind::kPlus || Peek().kind == TokKind::kMinus) {
      const ArithOp op =
          Take().kind == TokKind::kPlus ? ArithOp::kAdd : ArithOp::kSub;
      SMADB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseTerm());
      SMADB_ASSIGN_OR_RETURN(lhs, Arith(op, std::move(lhs), std::move(rhs)));
    }
    return lhs;
  }

  // term := factor ('*' factor)*
  Result<ExprPtr> ParseTerm() {
    SMADB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseFactor());
    while (Peek().kind == TokKind::kStar) {
      Take();
      SMADB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseFactor());
      SMADB_ASSIGN_OR_RETURN(
          lhs, Arith(ArithOp::kMul, std::move(lhs), std::move(rhs)));
    }
    return lhs;
  }

  // factor := ['-'] (literal | column | '(' expr ')')
  Result<ExprPtr> ParseFactor() {
    if (Peek().kind == TokKind::kMinus) {
      Take();
      SMADB_ASSIGN_OR_RETURN(ExprPtr inner, ParseFactor());
      // 0 - inner (or 0.00 - inner for decimals) keeps types consistent.
      const bool decimal = inner->type() == util::TypeId::kDecimal;
      return Arith(ArithOp::kSub,
                   Literal(decimal ? Value::MakeDecimal(util::Decimal(0))
                                   : Value::Int64(0)),
                   std::move(inner));
    }
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokKind::kInt: {
        const int64_t v = Take().value;
        return Literal(Value::Int64(v));
      }
      case TokKind::kDecimal: {
        const int64_t v = Take().value;
        return Literal(Value::MakeDecimal(util::Decimal(v)));
      }
      case TokKind::kDate: {
        const int64_t v = Take().value;
        return Literal(Value::MakeDate(util::Date(static_cast<int32_t>(v))));
      }
      case TokKind::kIdent: {
        const std::string name = Take().text;
        return Column(schema_, name);
      }
      case TokKind::kLParen: {
        Take();
        SMADB_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpression());
        if (Peek().kind != TokKind::kRParen) {
          return Status::InvalidArgument("expected ')'");
        }
        Take();
        return inner;
      }
      default:
        return Status::InvalidArgument("expected literal, column, or '('");
    }
  }

  // pred := conj ('or' conj)*
  Result<PredicatePtr> ParseOr() {
    SMADB_ASSIGN_OR_RETURN(PredicatePtr lhs, ParseAnd());
    while (TakeIdent("or")) {
      SMADB_ASSIGN_OR_RETURN(PredicatePtr rhs, ParseAnd());
      lhs = Predicate::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  // conj := atom ('and' atom)*
  Result<PredicatePtr> ParseAnd() {
    SMADB_ASSIGN_OR_RETURN(PredicatePtr lhs, ParseAtom());
    while (TakeIdent("and")) {
      SMADB_ASSIGN_OR_RETURN(PredicatePtr rhs, ParseAtom());
      lhs = Predicate::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  // atom := 'true' | '(' pred ')' | operand cmp operand
  Result<PredicatePtr> ParseAtom() {
    if (TakeIdent("true")) return Predicate::True();
    if (Peek().kind == TokKind::kLParen) {
      // Could be a parenthesized predicate; try it and fall back to an
      // expression operand on failure is ambiguous — predicates inside
      // parens always contain a comparison, so scan ahead for one before
      // the matching close.
      size_t depth = 0;
      bool has_cmp = false;
      for (size_t j = pos_; j < tokens_.size(); ++j) {
        if (tokens_[j].kind == TokKind::kLParen) ++depth;
        if (tokens_[j].kind == TokKind::kRParen) {
          if (--depth == 0) break;
        }
        if (depth >= 1 && tokens_[j].kind == TokKind::kCmp) {
          has_cmp = true;
          break;
        }
      }
      if (has_cmp) {
        Take();  // '('
        SMADB_ASSIGN_OR_RETURN(PredicatePtr inner, ParseOr());
        if (Peek().kind != TokKind::kRParen) {
          return Status::InvalidArgument("expected ')' after predicate");
        }
        Take();
        return inner;
      }
    }
    // operand cmp operand — operands are a column name or a literal
    // (general expressions on either side are outside the paper's atom
    // forms A θ c / A θ B).
    SMADB_ASSIGN_OR_RETURN(Operand lhs, ParseOperand());
    if (Peek().kind != TokKind::kCmp) {
      return Status::InvalidArgument("expected comparison operator");
    }
    const Token op_tok = Take();
    const std::string& op_text = op_tok.text;
    CmpOp op;
    if (op_text == "=") {
      op = CmpOp::kEq;
    } else if (op_text == "!=") {
      op = CmpOp::kNe;
    } else if (op_text == "<") {
      op = CmpOp::kLt;
    } else if (op_text == "<=") {
      op = CmpOp::kLe;
    } else if (op_text == ">") {
      op = CmpOp::kGt;
    } else {
      op = CmpOp::kGe;
    }
    SMADB_ASSIGN_OR_RETURN(Operand rhs, ParseOperand());

    if (lhs.is_column && rhs.is_column) {
      return Predicate::AtomTwoCols(schema_, lhs.column, op, rhs.column);
    }
    if (lhs.is_string || rhs.is_string) {
      // String equality: column on one side, quoted literal on the other.
      const Operand& col_side = lhs.is_column ? lhs : rhs;
      const Operand& lit_side = lhs.is_string ? lhs : rhs;
      if (!col_side.is_column || !lit_side.is_string) {
        return Status::InvalidArgument(
            "string comparison needs a column and a quoted literal");
      }
      return Predicate::AtomString(schema_, col_side.column, op,
                                   lit_side.text);
    }
    if (lhs.is_column) {
      return Predicate::AtomConst(schema_, lhs.column, op, rhs.literal);
    }
    if (rhs.is_column) {
      // c op A  ==  A op' c with the comparison mirrored.
      CmpOp mirrored;
      switch (op) {
        case CmpOp::kLt:
          mirrored = CmpOp::kGt;
          break;
        case CmpOp::kLe:
          mirrored = CmpOp::kGe;
          break;
        case CmpOp::kGt:
          mirrored = CmpOp::kLt;
          break;
        case CmpOp::kGe:
          mirrored = CmpOp::kLe;
          break;
        default:
          mirrored = op;
          break;
      }
      return Predicate::AtomConst(schema_, rhs.column, mirrored, lhs.literal);
    }
    return Status::InvalidArgument(
        "comparison needs at least one column operand");
  }

 private:
  struct Operand {
    bool is_column = false;
    bool is_string = false;
    std::string column;
    std::string text;  // string literal body
    Value literal;
  };

  Result<Operand> ParseOperand() {
    Operand out;
    // Unary minus on numeric literals.
    if (Peek().kind == TokKind::kMinus) {
      Take();
      const Token& num = Peek();
      if (num.kind == TokKind::kInt) {
        out.literal = Value::Int64(-Take().value);
        return out;
      }
      if (num.kind == TokKind::kDecimal) {
        out.literal = Value::MakeDecimal(util::Decimal(-Take().value));
        return out;
      }
      return Status::InvalidArgument("'-' must precede a numeric literal");
    }
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokKind::kIdent:
        out.is_column = true;
        out.column = Take().text;
        return out;
      case TokKind::kString:
        out.is_string = true;
        out.text = Take().text;
        return out;
      case TokKind::kInt:
        out.literal = Value::Int64(Take().value);
        return out;
      case TokKind::kDecimal:
        out.literal = Value::MakeDecimal(util::Decimal(Take().value));
        return out;
      case TokKind::kDate:
        out.literal =
            Value::MakeDate(util::Date(static_cast<int32_t>(Take().value)));
        return out;
      default:
        return Status::InvalidArgument("expected column or literal");
    }
  }

  const Schema* schema_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

// Int literals compared against decimal/date columns: AtomConst validates
// types, so promote plain ints to the column's family first.
Result<PredicatePtr> FixupAndParsePredicate(const Schema* schema,
                                            std::vector<Token> tokens) {
  // Promote `col <= 24` against decimal columns: look for
  // ident cmp int / int cmp ident patterns and retype the int.
  for (size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i + 1].kind != TokKind::kCmp) continue;
    const Token* ident = nullptr;
    Token* num = nullptr;
    if (tokens[i].kind == TokKind::kIdent &&
        tokens[i + 2].kind == TokKind::kInt) {
      ident = &tokens[i];
      num = &tokens[i + 2];
    } else if (tokens[i].kind == TokKind::kIdent && i + 3 < tokens.size() &&
               tokens[i + 2].kind == TokKind::kMinus &&
               tokens[i + 3].kind == TokKind::kInt) {
      // col cmp -int
      ident = &tokens[i];
      num = &tokens[i + 3];
    } else if (tokens[i].kind == TokKind::kInt &&
               tokens[i + 2].kind == TokKind::kIdent) {
      ident = &tokens[i + 2];
      num = &tokens[i];
    } else {
      continue;
    }
    auto idx = schema->FieldIndex(ident->text);
    if (!idx.ok()) continue;
    const util::TypeId t = schema->field(*idx).type;
    if (t == util::TypeId::kDecimal) {
      num->kind = TokKind::kDecimal;
      num->value *= 100;
    } else if (t == util::TypeId::kInt32) {
      // AtomConst accepts int64 literals for int32 columns already.
    }
  }
  Parser parser(schema, std::move(tokens));
  SMADB_ASSIGN_OR_RETURN(PredicatePtr pred, parser.ParseOr());
  if (!parser.AtEnd()) {
    return Status::InvalidArgument("trailing tokens after predicate");
  }
  return pred;
}

}  // namespace

Result<ExprPtr> ParseExpr(const Schema* schema, std::string_view text) {
  SMADB_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                         internal::Tokenize(text));
  Parser parser(schema, std::move(tokens));
  SMADB_ASSIGN_OR_RETURN(ExprPtr e, parser.ParseExpression());
  if (!parser.AtEnd()) {
    return Status::InvalidArgument("trailing tokens after expression");
  }
  return e;
}

Result<PredicatePtr> ParsePredicate(const Schema* schema,
                                    std::string_view text) {
  SMADB_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                         internal::Tokenize(text));
  return FixupAndParsePredicate(schema, std::move(tokens));
}

}  // namespace smadb::expr
