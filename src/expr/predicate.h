// Selection predicates: atomic comparisons composed with AND / OR.
//
// Exactly the predicate language of paper §3.1 — atoms of the forms
//   A = c,  A <= c,  A < c,  A >= c,  A > c,  A <= B,  A < B
// (plus A != c as a documented extension), conjunctively or disjunctively
// combined. The same tree drives tuple-level evaluation here and
// bucket-level grading in sma/grade.h.

#ifndef SMADB_EXPR_PREDICATE_H_
#define SMADB_EXPR_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "storage/schema.h"
#include "storage/tuple.h"
#include "util/status.h"

namespace smadb::expr {

/// Comparison operator of an atom.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view CmpOpToString(CmpOp op);

/// Applies `op` to an exact integral comparison.
inline bool CompareInt(int64_t a, CmpOp op, int64_t b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
  }
  return false;
}

/// Boolean predicate tree.
class Predicate {
 public:
  enum class Kind { kTrue, kAtomConst, kAtomTwoCols, kAtomString, kAnd, kOr };

  /// The always-true predicate (unrestricted query, e.g. pure aggregation).
  static std::shared_ptr<const Predicate> True();

  /// Atom `column op constant`. The column must be integral-family and the
  /// constant of a compatible type (date vs date, decimal vs decimal, ...).
  static util::Result<std::shared_ptr<const Predicate>> AtomConst(
      const storage::Schema* schema, std::string_view column, CmpOp op,
      util::Value constant);

  /// Atom `columnA op columnB`, both integral-family, same type.
  static util::Result<std::shared_ptr<const Predicate>> AtomTwoCols(
      const storage::Schema* schema, std::string_view column_a, CmpOp op,
      std::string_view column_b);

  /// Atom `column = 'literal'` or `column != 'literal'` over a string
  /// column (equality only — the op must be kEq or kNe). Gradeable through
  /// a count-by-value SMA on the column.
  static util::Result<std::shared_ptr<const Predicate>> AtomString(
      const storage::Schema* schema, std::string_view column, CmpOp op,
      std::string literal);

  static std::shared_ptr<const Predicate> And(
      std::shared_ptr<const Predicate> a, std::shared_ptr<const Predicate> b);
  static std::shared_ptr<const Predicate> Or(
      std::shared_ptr<const Predicate> a, std::shared_ptr<const Predicate> b);

  Kind kind() const { return kind_; }

  /// Tuple-level evaluation.
  bool Eval(const storage::TupleRef& t) const;

  /// Batch-level evaluation: refines `sel` (AND-semantics) to the rows of
  /// `batch` satisfying this predicate, agreeing row-for-row with Eval().
  /// Callers seed `sel` from the bucket's grade — SelectAll for qualifying
  /// and ambivalent buckets (qualifying buckets simply skip the call) —
  /// and every referenced column must be decoded in `batch`.
  void EvalBatch(const storage::ColumnBatch& batch,
                 storage::SelVector* sel) const;

  /// Sets `mask[c]` for every column this predicate reads (`mask` sized to
  /// the schema). Consumers use it to build batch projections.
  void AddReferencedColumns(std::vector<bool>* mask) const;

  /// Atom accessors (valid for the atom kinds).
  size_t column() const { return column_; }
  CmpOp op() const { return op_; }
  int64_t constant() const { return constant_; }
  size_t rhs_column() const { return rhs_column_; }
  /// The literal of a kAtomString atom.
  const std::string& string_constant() const { return str_constant_; }

  /// Children (valid for kAnd / kOr).
  const Predicate* left() const { return left_.get(); }
  const Predicate* right() const { return right_.get(); }

  std::string ToString(const storage::Schema* schema = nullptr) const;

 private:
  explicit Predicate(Kind kind) : kind_(kind) {}

  Kind kind_;
  // Atom state. Constants are raw integral payloads (cents / days / ints).
  size_t column_ = 0;
  CmpOp op_ = CmpOp::kEq;
  int64_t constant_ = 0;
  size_t rhs_column_ = 0;
  std::string str_constant_;
  // Composite state.
  std::shared_ptr<const Predicate> left_;
  std::shared_ptr<const Predicate> right_;
};

using PredicatePtr = std::shared_ptr<const Predicate>;

}  // namespace smadb::expr

#endif  // SMADB_EXPR_PREDICATE_H_
