#include "expr/expr.h"

#include <cassert>

#include "util/string_util.h"

namespace smadb::expr {

using storage::Schema;
using storage::TupleRef;
using util::Result;
using util::Status;
using util::TypeId;
using util::Value;

namespace {

class ColumnExpr final : public Expr {
 public:
  ColumnExpr(const Schema* schema, size_t index)
      : schema_(schema), index_(index) {}

  TypeId type() const override { return schema_->field(index_).type; }

  int64_t EvalInt(const TupleRef& t) const override {
    return t.GetRawInt(index_);
  }

  void EvalIntBatch(const storage::ColumnBatch& batch,
                    const storage::SelVector& sel,
                    int64_t* out) const override {
    const int64_t* v = batch.Ints(index_);
    if (sel.dense()) {
      const size_t n = sel.count();
      for (size_t k = 0; k < n; ++k) out[k] = v[k];
    } else {
      const std::vector<uint32_t>& idx = sel.indices();
      for (size_t k = 0; k < idx.size(); ++k) out[k] = v[idx[k]];
    }
  }

  Value Eval(const TupleRef& t) const override { return t.GetValue(index_); }

  std::string ToString() const override {
    return schema_->field(index_).name;
  }

  bool ReferencesColumn(size_t col) const override { return col == index_; }

 private:
  const Schema* schema_;
  size_t index_;
};

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value v) : value_(std::move(v)) {}

  TypeId type() const override { return value_.type(); }

  int64_t EvalInt(const TupleRef&) const override { return value_.RawInt(); }

  void EvalIntBatch(const storage::ColumnBatch&,
                    const storage::SelVector& sel,
                    int64_t* out) const override {
    const int64_t v = value_.RawInt();
    const size_t n = sel.count();
    for (size_t k = 0; k < n; ++k) out[k] = v;
  }

  Value Eval(const TupleRef&) const override { return value_; }

  std::string ToString() const override { return value_.ToString(); }

  bool ReferencesColumn(size_t) const override { return false; }

 private:
  Value value_;
};

// Result type of integral arithmetic: decimal if either side is decimal
// (cents-scaled), otherwise int64.
TypeId ArithResultType(TypeId a, TypeId b) {
  if (a == TypeId::kDecimal || b == TypeId::kDecimal) return TypeId::kDecimal;
  return TypeId::kInt64;
}

class ArithExpr final : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)),
        type_(ArithResultType(lhs_->type(), rhs_->type())),
        lhs_decimal_(lhs_->type() == TypeId::kDecimal),
        rhs_decimal_(rhs_->type() == TypeId::kDecimal) {}

  TypeId type() const override { return type_; }

  int64_t EvalInt(const TupleRef& t) const override {
    return Combine(lhs_->EvalInt(t), rhs_->EvalInt(t));
  }

  void EvalIntBatch(const storage::ColumnBatch& batch,
                    const storage::SelVector& sel,
                    int64_t* out) const override {
    // Expr trees are shared read-only across workers, so the rhs scratch
    // is a local (one allocation per batch, amortized to nothing).
    const size_t n = sel.count();
    lhs_->EvalIntBatch(batch, sel, out);
    std::vector<int64_t> rhs(n);
    rhs_->EvalIntBatch(batch, sel, rhs.data());
    for (size_t k = 0; k < n; ++k) out[k] = Combine(out[k], rhs[k]);
  }

  Value Eval(const TupleRef& t) const override {
    const int64_t v = EvalInt(t);
    return type_ == TypeId::kDecimal ? Value::MakeDecimal(util::Decimal(v))
                                     : Value::Int64(v);
  }

  std::string ToString() const override {
    const char* sym = op_ == ArithOp::kAdd   ? "+"
                      : op_ == ArithOp::kSub ? "-"
                                             : "*";
    return "(" + lhs_->ToString() + " " + sym + " " + rhs_->ToString() + ")";
  }

  bool ReferencesColumn(size_t col) const override {
    return lhs_->ReferencesColumn(col) || rhs_->ReferencesColumn(col);
  }

 private:
  /// The single arithmetic kernel both scalar and batch evaluation share —
  /// one definition, so the paths agree bit for bit.
  int64_t Combine(int64_t a, int64_t b) const {
    if (type_ == TypeId::kDecimal) {
      // Promote plain integers to cents so 3 + 0.25 etc. is well-defined.
      if (!lhs_decimal_) a *= 100;
      if (!rhs_decimal_) b *= 100;
      switch (op_) {
        case ArithOp::kAdd:
          return a + b;
        case ArithOp::kSub:
          return a - b;
        case ArithOp::kMul: {
          // cents * cents has scale 10^4; round half away from zero.
          const int64_t raw = a * b;
          const int64_t half = raw >= 0 ? 50 : -50;
          return (raw + half) / 100;
        }
      }
    }
    switch (op_) {
      case ArithOp::kAdd:
        return a + b;
      case ArithOp::kSub:
        return a - b;
      case ArithOp::kMul:
        return a * b;
    }
    return 0;
  }

  ArithOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
  TypeId type_;
  bool lhs_decimal_;
  bool rhs_decimal_;
};

Status CheckIntegral(const Expr& e, const char* what) {
  const TypeId t = e.type();
  if (t == TypeId::kDouble || t == TypeId::kString) {
    return Status::NotSupported(
        util::Format("%s requires an integral-family expression, got %s (%s)",
                     what, std::string(util::TypeIdToString(t)).c_str(),
                     e.ToString().c_str()));
  }
  return Status::OK();
}

}  // namespace

Result<ExprPtr> Column(const Schema* schema, std::string_view name) {
  SMADB_ASSIGN_OR_RETURN(size_t idx, schema->FieldIndex(name));
  return ExprPtr(std::make_shared<ColumnExpr>(schema, idx));
}

ExprPtr ColumnAt(const Schema* schema, size_t index) {
  assert(index < schema->num_fields());
  return std::make_shared<ColumnExpr>(schema, index);
}

ExprPtr Literal(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }

Result<ExprPtr> Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  SMADB_RETURN_NOT_OK(CheckIntegral(*lhs, "arithmetic"));
  SMADB_RETURN_NOT_OK(CheckIntegral(*rhs, "arithmetic"));
  return ExprPtr(std::make_shared<ArithExpr>(op, std::move(lhs),
                                             std::move(rhs)));
}

Result<ExprPtr> OneMinus(ExprPtr e) {
  return Arith(ArithOp::kSub,
               Literal(Value::MakeDecimal(util::Decimal(100))), std::move(e));
}

Result<ExprPtr> OnePlus(ExprPtr e) {
  return Arith(ArithOp::kAdd,
               Literal(Value::MakeDecimal(util::Decimal(100))), std::move(e));
}

}  // namespace smadb::expr
