// Text parsers for scalar expressions and selection predicates, so SMAs and
// queries can be written the way the paper writes them:
//
//     l_extendedprice * (1.00 - l_discount)
//     l_shipdate <= date '1998-09-02' and l_quantity < 24
//
// Literals: integers (42), decimals (0.06 — two-digit fixed point),
// date 'YYYY-MM-DD' (the keyword is optional: '1998-09-02' also parses as a
// date). Operators: + - * for expressions; = != < <= > >= composed with
// `and` / `or` (and parentheses) for predicates. Keywords and column names
// are case-insensitive; columns resolve against the given schema.

#ifndef SMADB_EXPR_PARSER_H_
#define SMADB_EXPR_PARSER_H_

#include <string_view>
#include <vector>

#include "expr/expr.h"
#include "expr/predicate.h"

namespace smadb::expr {

/// Parses a scalar expression over `schema`.
util::Result<ExprPtr> ParseExpr(const storage::Schema* schema,
                                std::string_view text);

/// Parses a boolean selection predicate over `schema`.
util::Result<PredicatePtr> ParsePredicate(const storage::Schema* schema,
                                          std::string_view text);

namespace internal {

/// Token kinds exposed for the SMA-definition parser built on top.
enum class TokKind {
  kEnd,
  kIdent,    // column names and keywords (lower-cased)
  kInt,      // 42
  kDecimal,  // 0.06  (cents payload)
  kDate,     // '1998-09-02' or date '1998-09-02' (days payload)
  kString,   // 'BUILDING' (any quoted literal that is not a date)
  kLParen,
  kRParen,
  kComma,
  kStar,
  kPlus,
  kMinus,
  kCmp,      // = != < <= > >=
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // identifier (lower-cased) or comparison symbol
  int64_t value = 0;  // numeric/date payload
};

/// Splits `text` into tokens. Fails on unknown characters or malformed
/// literals.
util::Result<std::vector<Token>> Tokenize(std::string_view text);

/// Reconstructs parsable source text for the token span [begin, end).
std::string TokensToText(const std::vector<Token>& tokens, size_t begin,
                         size_t end);

}  // namespace internal

}  // namespace smadb::expr

#endif  // SMADB_EXPR_PARSER_H_
