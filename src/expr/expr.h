// Scalar expression trees over tuples, bound to a schema at construction.
//
// SMA definitions aggregate expressions ("sum(l_extendedprice *
// (1 - l_discount))", paper Fig. 4) and queries evaluate the same
// expressions per tuple; sharing one Expr type guarantees the SMA-
// precomputed aggregate and the scan-computed aggregate agree bit-for-bit.
//
// The integral family (int32/int64/date/decimal) evaluates in exact int64
// arithmetic (decimals as cents); doubles evaluate in double. SMA aggregation
// is restricted to the integral family, so precomputed sums are exact.

#ifndef SMADB_EXPR_EXPR_H_
#define SMADB_EXPR_EXPR_H_

#include <memory>
#include <string>

#include "storage/column_batch.h"
#include "storage/schema.h"
#include "storage/tuple.h"
#include "util/status.h"
#include "util/value.h"

namespace smadb::expr {

/// A bound scalar expression. Immutable and shareable.
class Expr {
 public:
  virtual ~Expr() = default;

  /// Static result type of the expression.
  virtual util::TypeId type() const = 0;

  /// Exact integral evaluation (decimals in cents, dates in days). Only
  /// valid when type() is in the integral family.
  virtual int64_t EvalInt(const storage::TupleRef& t) const = 0;

  /// Vectorized EvalInt: writes one value per *selected* row of `batch`
  /// into `out[0..sel.count())`, in selection order, with arithmetic
  /// bit-identical to the scalar path. Every referenced column must be
  /// decoded in `batch`. Only valid when type() is integral-family.
  virtual void EvalIntBatch(const storage::ColumnBatch& batch,
                            const storage::SelVector& sel,
                            int64_t* out) const = 0;

  /// Generic evaluation (allocates for strings).
  virtual util::Value Eval(const storage::TupleRef& t) const = 0;

  /// Canonical display form; also used for SMA/query expression matching.
  virtual std::string ToString() const = 0;

  /// True if the expression reads column `col`.
  virtual bool ReferencesColumn(size_t col) const = 0;
};

using ExprPtr = std::shared_ptr<const Expr>;

/// Arithmetic operators.
enum class ArithOp { kAdd, kSub, kMul };

/// Column reference. Fails at construction time for unknown names.
util::Result<ExprPtr> Column(const storage::Schema* schema,
                             std::string_view name);
/// Column reference by ordinal.
ExprPtr ColumnAt(const storage::Schema* schema, size_t index);

/// Integral-family literal (int/date/decimal, passed as a Value).
ExprPtr Literal(util::Value v);

/// lhs op rhs. Decimal semantics: +,- exact; * rounds to cents, matching
/// util::Decimal. Mixing decimal and plain-integer operands follows the
/// decimal side.
util::Result<ExprPtr> Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);

/// Convenience for TPC-D money math: (1 - expr) with decimal 1.00.
util::Result<ExprPtr> OneMinus(ExprPtr e);
/// (1 + expr) with decimal 1.00.
util::Result<ExprPtr> OnePlus(ExprPtr e);

}  // namespace smadb::expr

#endif  // SMADB_EXPR_EXPR_H_
