// exec::Batch: the unit of batch-at-a-time data flow (DESIGN.md §9).
//
// A Batch pairs a storage::ColumnBatch (decoded column vectors of up to
// `capacity` tuples, never spanning buckets when produced by the scan
// operators) with a storage::SelVector naming the rows that survived
// predicate evaluation so far. The SMA grade verdict (§3.1) maps onto the
// selection vector directly:
//
//   kQualifies    -> SelectAll, predicate never evaluated
//   kDisqualifies -> bucket skipped, no batch produced
//   kAmbivalent   -> SelectAll, then Predicate::EvalBatch refines
//
// Conventions (see Operator::NextBatch):
//   * A returned batch may have an empty selection; consumers skip it and
//     pull again (NextBatch returning true means "rows were decoded", not
//     "rows survived").
//   * Batch contents stay valid until the next NextBatch/Init on the same
//     operator.
//   * The consumer configures the projection; it must include every column
//     the producer itself reads (AddRequiredBatchColumns reports those).

#ifndef SMADB_EXEC_BATCH_H_
#define SMADB_EXEC_BATCH_H_

#include <utility>
#include <vector>

#include "storage/column_batch.h"
#include "storage/schema.h"

namespace smadb::exec {

/// Default rows per batch: big enough to amortize per-batch overhead,
/// small enough that a few decoded columns stay L1/L2-resident.
inline constexpr size_t kDefaultBatchSize = 1024;

struct Batch {
  storage::ColumnBatch cols;
  storage::SelVector sel;

  /// One-time setup (re-Configure to change shape). Empty projection =
  /// decode all columns.
  void Configure(const storage::Schema* schema, size_t capacity,
                 std::vector<bool> projection = {}) {
    cols.Configure(schema, capacity, std::move(projection));
    sel.SelectNone();
  }

  bool configured() const { return cols.configured(); }
  size_t capacity() const { return cols.capacity(); }
  size_t num_rows() const { return cols.num_rows(); }

  void Clear() {
    cols.Clear();
    sel.SelectNone();
  }

  /// Marks every decoded row selected (the qualifying-grade state).
  void SelectAll() {
    sel.SelectAll(static_cast<uint32_t>(cols.num_rows()));
  }
};

}  // namespace smadb::exec

#endif  // SMADB_EXEC_BATCH_H_
