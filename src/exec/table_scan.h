// Plain sequential scan with tuple-at-a-time predicate evaluation — the
// paper's baseline ("a sequential scan is the only possibility to
// 'efficiently' evaluate this query").

#ifndef SMADB_EXEC_TABLE_SCAN_H_
#define SMADB_EXEC_TABLE_SCAN_H_

#include "exec/bucket_source.h"
#include "exec/operator.h"
#include "expr/predicate.h"
#include "storage/table.h"

namespace smadb::exec {

class TableScan final : public Operator {
 public:
  /// Scans `table`, returning tuples satisfying `pred` (Predicate::True()
  /// for all).
  TableScan(storage::Table* table, expr::PredicatePtr pred)
      : table_(table), pred_(std::move(pred)), reader_(table) {}

  const storage::Schema& output_schema() const override {
    return table_->schema();
  }

  util::Status Init() override;
  util::Result<bool> Next(storage::TupleRef* out) override;

  /// Native batch path: bulk column decode, then one vectorized predicate
  /// pass refining the selection vector.
  util::Result<bool> NextBatch(Batch* out) override;

  void AddRequiredBatchColumns(std::vector<bool>* mask) const override {
    pred_->AddReferencedColumns(mask);
  }

  void BindContext(util::QueryContext* ctx) override {
    Operator::BindContext(ctx);
    BindProfile("TableScan");
  }

 private:
  /// Feeds the reader's page-fetch delta to the profile node (idempotent:
  /// only new fetches since the last call are added).
  void FeedPages() {
    if (prof_ == nullptr) return;
    prof_->AddPagesRead(reader_.pages_opened() - pages_fed_);
    pages_fed_ = reader_.pages_opened();
  }

  storage::Table* table_;
  expr::PredicatePtr pred_;
  BucketReader reader_;
  size_t rows_since_check_ = 0;
  uint64_t pages_fed_ = 0;
};

}  // namespace smadb::exec

#endif  // SMADB_EXEC_TABLE_SCAN_H_
