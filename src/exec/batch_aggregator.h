// BatchAggregator: fused grouping-aggregation kernels over column batches.
//
// The batch-at-a-time counterpart of GroupState::AddTuple. Per batch it
// runs two passes: (1) one pass over the selection vector resolving each
// row's group id from fixed-width raw key bytes (with a last-key cache that
// exploits the paper's time-of-creation clustering — consecutive tuples
// usually share a group), then (2) one tight accumulate loop per aggregate
// over pre-evaluated argument vectors. This replaces, per row, a
// Value/serialize/std::map lookup and a per-aggregate expression-tree walk
// with array arithmetic.
//
// Exactness: sums/min/max accumulate in the same int64 arithmetic as the
// row path, and FlushInto folds the partials through GroupState::
// AddBucketCount/AddSummary — the same entry points the SMA path uses — so
// a flush-then-Emit reproduces the row path bit for bit, in the same
// deterministic key order.

#ifndef SMADB_EXEC_BATCH_AGGREGATOR_H_
#define SMADB_EXEC_BATCH_AGGREGATOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "exec/aggregate.h"
#include "exec/batch.h"
#include "storage/schema.h"

namespace smadb::exec {

class BatchAggregator {
 public:
  /// `input` is the child/batch schema; `group_by` and `aggs` must outlive
  /// the aggregator (they belong to the owning operator).
  BatchAggregator(const storage::Schema* input,
                  const std::vector<size_t>* group_by,
                  const std::vector<AggSpec>* aggs);

  /// Projection covering the group-by columns and every aggregate-argument
  /// column — the minimum a batch fed to AddBatch must decode.
  std::vector<bool> RequiredColumns() const;

  /// Folds the selected rows of `batch` into the internal partial groups.
  void AddBatch(const Batch& batch);

  /// Folds the partial groups into `table` (via the same AddBucketCount /
  /// AddSummary entry points the SMA path uses) and resets this aggregator.
  void FlushInto(GroupTable* table);

 private:
  /// One group's partial state: raw accumulators parallel to *aggs_
  /// (min/max seeded with sentinels — every existing group has >= 1 row,
  /// so the sentinel never leaks into results).
  struct Group {
    std::vector<int64_t> acc;
    int64_t rows = 0;
  };

  /// Per-batch decoded base pointers of one group-by column.
  struct KeyPtr {
    const int64_t* i64 = nullptr;
    const double* f64 = nullptr;
    const uint8_t* str = nullptr;
    uint16_t bytes = 0;  // raw width within the serialized key
  };

  Group MakeGroup() const;
  void BuildKey(size_t k_row);
  void DecodeKey(const std::string& raw, std::vector<util::Value>* key) const;

  const storage::Schema* input_;
  const std::vector<size_t>* group_by_;
  const std::vector<AggSpec>* aggs_;
  size_t key_width_ = 0;
  std::vector<uint16_t> key_bytes_;  // per group-by column

  std::unordered_map<std::string, uint32_t> gids_;
  std::vector<std::string> keys_;  // gid -> raw key bytes
  std::vector<Group> groups_;

  // Per-batch scratch (reused; sized to the selection).
  std::vector<KeyPtr> key_ptrs_;
  std::string key_scratch_;
  std::vector<uint32_t> row_gids_;
  std::vector<int64_t> vals_;
};

}  // namespace smadb::exec

#endif  // SMADB_EXEC_BATCH_AGGREGATOR_H_
