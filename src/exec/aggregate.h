// Shared grouping-aggregation machinery for GAggr and SMA_GAggr.
//
// Aggregate state is exact: sums/min/max of the integral family accumulate
// in int64 (decimals as cents); averages are finalized as sum/count in the
// last phase, exactly as the paper describes ("for the latter, we first
// compute the sum and divide by the count in the last phase").

#ifndef SMADB_EXEC_AGGREGATE_H_
#define SMADB_EXEC_AGGREGATE_H_

#include <map>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "storage/schema.h"
#include "storage/tuple.h"
#include "util/status.h"

namespace smadb::exec {

/// Aggregate functions a query's select clause may request.
enum class AggKind { kSum, kCount, kAvg, kMin, kMax };

std::string_view AggKindToString(AggKind k);

/// One requested aggregate.
struct AggSpec {
  AggKind kind;
  /// Argument expression; null exactly for count(*).
  expr::ExprPtr arg;
  /// Output column name ("sum_qty", ...).
  std::string name;

  static AggSpec Sum(expr::ExprPtr arg, std::string name) {
    return {AggKind::kSum, std::move(arg), std::move(name)};
  }
  static AggSpec Avg(expr::ExprPtr arg, std::string name) {
    return {AggKind::kAvg, std::move(arg), std::move(name)};
  }
  static AggSpec Min(expr::ExprPtr arg, std::string name) {
    return {AggKind::kMin, std::move(arg), std::move(name)};
  }
  static AggSpec Max(expr::ExprPtr arg, std::string name) {
    return {AggKind::kMax, std::move(arg), std::move(name)};
  }
  static AggSpec Count(std::string name) {
    return {AggKind::kCount, nullptr, std::move(name)};
  }

  /// Output type: sum keeps the argument's family (decimal/int64), count is
  /// int64, avg is double, min/max keep the argument type.
  util::TypeId OutputType() const;
};

/// Result schema: the group-by columns (same definitions as the input),
/// followed by one column per aggregate.
util::Result<storage::Schema> AggResultSchema(
    const storage::Schema& input, const std::vector<size_t>& group_by,
    const std::vector<AggSpec>& aggs);

/// Validates aggregate specs (count has no arg, others integral-family arg).
util::Status ValidateAggs(const std::vector<AggSpec>& aggs);

/// Accumulated state of one group.
class GroupState {
 public:
  explicit GroupState(const std::vector<AggSpec>* aggs)
      : aggs_(aggs),
        acc_(aggs->size(), 0),
        defined_(aggs->size(), false) {}

  /// Phase 2, tuple path: folds one input tuple.
  void AddTuple(const storage::TupleRef& t);

  /// Phase 2, SMA path: folds one bucket summary for aggregate `idx`.
  /// For sum/avg pass the summed value, for min/max the extreme, for count
  /// the bucket count. `bucket_count` is the group's count(*) in the bucket
  /// (needed once per bucket for averages — pass it via AddBucketCount).
  void AddSummary(size_t idx, int64_t value);

  /// Phase 2, SMA path: adds the group's tuple count of one bucket.
  void AddBucketCount(int64_t count) { row_count_ += count; }

  /// Folds another partial state for the same group into this one. Exact:
  /// sums/counts add, min/max combine, and averages are finalized from the
  /// merged sum and count, so per-worker partial aggregation over disjoint
  /// bucket sets reproduces the serial result bit for bit.
  void MergeFrom(const GroupState& o);

  int64_t row_count() const { return row_count_; }

  /// Phase 3: materializes group key + finalized aggregates into `out`,
  /// whose schema must be AggResultSchema(...). `key` are the group-by
  /// values in declaration order.
  void Finalize(const std::vector<util::Value>& key,
                storage::TupleBuffer* out) const;

 private:
  const std::vector<AggSpec>* aggs_;
  std::vector<int64_t> acc_;
  std::vector<bool> defined_;  // for min/max: any value seen yet?
  int64_t row_count_ = 0;
};

/// Deterministically ordered group map (serialized key → state); shared by
/// both aggregation operators so their outputs are comparable row-by-row.
class GroupTable {
 public:
  explicit GroupTable(const std::vector<AggSpec>* aggs) : aggs_(aggs) {}

  /// State for `key`, created on first use.
  GroupState* Get(const std::vector<util::Value>& key);

  /// Emits all groups in key order into tuple buffers of `schema`.
  util::Status Emit(const storage::Schema* schema,
                    std::vector<storage::TupleBuffer>* out) const;

  /// Merges another table's partial groups (parallel workers aggregate into
  /// private tables over disjoint bucket sets, then merge). The key-ordered
  /// map makes the merged Emit order independent of worker interleaving.
  void MergeFrom(const GroupTable& o);

  size_t size() const { return groups_.size(); }

  /// Estimated heap footprint, maintained incrementally as groups appear.
  /// Operators charge the delta against the query's MemoryTracker at
  /// bucket/batch granularity — the hash-grouping memory hot spot under
  /// skew (DESIGN.md §10).
  size_t approx_bytes() const { return approx_bytes_; }

 private:
  struct Entry {
    std::vector<util::Value> key;
    GroupState state;
  };

  static std::string SerializeKey(const std::vector<util::Value>& key);

  /// Estimated bytes one new entry adds (key strings + accumulators + map
  /// node overhead).
  size_t EntryBytes(const std::string& skey,
                    const std::vector<util::Value>& key) const;

  const std::vector<AggSpec>* aggs_;
  std::map<std::string, Entry> groups_;
  size_t approx_bytes_ = 0;
};

}  // namespace smadb::exec

#endif  // SMADB_EXEC_AGGREGATE_H_
