#include "exec/sma_gaggr.h"

#include <algorithm>

#include "exec/batch_aggregator.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace smadb::exec {

using sma::AggFunc;
using sma::Grade;
using sma::Sma;
using storage::TupleRef;
using util::Result;
using util::Status;
using util::Value;

namespace {

// func/kind correspondence between query aggregates and SMA functions.
AggFunc SmaFuncFor(AggKind kind) {
  switch (kind) {
    case AggKind::kSum:
    case AggKind::kAvg:
      return AggFunc::kSum;
    case AggKind::kCount:
      return AggFunc::kCount;
    case AggKind::kMin:
      return AggFunc::kMin;
    case AggKind::kMax:
      return AggFunc::kMax;
  }
  return AggFunc::kCount;
}

// True when every query group-by column appears in the SMA's group-by
// (the SMA grouping refines the query grouping).
bool GroupingRefines(const std::vector<size_t>& query_groups,
                     const std::vector<size_t>& sma_groups) {
  for (size_t qcol : query_groups) {
    if (std::find(sma_groups.begin(), sma_groups.end(), qcol) ==
        sma_groups.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace

/// One worker's vectorized ambivalent-bucket machinery: a private reader
/// (page pins), a reusable batch projected to the predicate + group-by +
/// aggregate columns, and the fused-kernel partial aggregator. The partials
/// are flushed into the worker's GroupTable once its buckets are done —
/// exact, since group merging is associative and commutative.
struct SmaGAggrBatchState {
  BucketReader reader;
  Batch batch;
  BatchAggregator aggregator;

  SmaGAggrBatchState(storage::Table* table,
                     const std::vector<size_t>* group_by,
                     const std::vector<AggSpec>* aggs,
                     const expr::PredicatePtr& pred, size_t batch_size)
      : reader(table), aggregator(&table->schema(), group_by, aggs) {
    std::vector<bool> mask = aggregator.RequiredColumns();
    pred->AddReferencedColumns(&mask);
    batch.Configure(&table->schema(), batch_size, std::move(mask));
  }
};

SmaGAggr::AggBinding SmaGAggr::BindAggregate(AggFunc func,
                                             const expr::Expr* arg) const {
  AggBinding binding;
  const std::string arg_sig = arg != nullptr ? arg->ToString() : "";
  const Sma* best = nullptr;
  for (const Sma* sma : smas_->all()) {
    const sma::SmaSpec& spec = sma->spec();
    if (spec.func != func) continue;
    const std::string spec_sig =
        spec.arg != nullptr ? spec.arg->ToString() : "";
    if (spec_sig != arg_sig) continue;
    if (!GroupingRefines(group_by_, spec.group_by)) continue;
    // Prefer the coarsest refining grouping (fewest files to read).
    if (best == nullptr ||
        spec.group_by.size() < best->spec().group_by.size()) {
      best = sma;
    }
  }
  if (best == nullptr) return binding;

  binding.sma = best;
  // Project each SMA group key onto the query group-by columns.
  std::vector<size_t> positions;  // query col -> index in SMA group key
  for (size_t qcol : group_by_) {
    const auto& sg = best->spec().group_by;
    positions.push_back(static_cast<size_t>(
        std::find(sg.begin(), sg.end(), qcol) - sg.begin()));
  }
  for (size_t g = 0; g < best->num_groups(); ++g) {
    const std::vector<Value>& key = best->group_key(g);
    std::vector<Value> projected;
    projected.reserve(positions.size());
    for (size_t pos : positions) projected.push_back(key[pos]);
    binding.result_keys.push_back(std::move(projected));
  }
  return binding;
}

SmaGAggr::BindingCursors SmaGAggr::MakeCursors() const {
  BindingCursors cursors;
  for (size_t g = 0; g < count_binding_.sma->num_groups(); ++g) {
    cursors.count.push_back(count_binding_.sma->group_file(g)->NewCursor());
  }
  for (const AggBinding& binding : bindings_) {
    std::vector<sma::SmaFile::Cursor> agg_cursors;
    if (binding.sma != nullptr) {
      for (size_t g = 0; g < binding.sma->num_groups(); ++g) {
        agg_cursors.push_back(binding.sma->group_file(g)->NewCursor());
      }
    }
    cursors.per_agg.push_back(std::move(agg_cursors));
  }
  return cursors;
}

Result<std::unique_ptr<SmaGAggr>> SmaGAggr::Make(
    storage::Table* table, expr::PredicatePtr pred,
    std::vector<size_t> group_by, std::vector<AggSpec> aggs,
    const sma::SmaSet* smas, SmaGAggrOptions options) {
  SMADB_ASSIGN_OR_RETURN(storage::Schema schema,
                         AggResultSchema(table->schema(), group_by, aggs));
  std::unique_ptr<SmaGAggr> op(
      new SmaGAggr(table, std::move(pred), std::move(group_by),
                   std::move(aggs), smas, std::move(schema), options));

  // The count(*) binding is mandatory (group cardinalities + emptiness).
  op->count_binding_ = op->BindAggregate(AggFunc::kCount, nullptr);
  if (op->count_binding_.sma == nullptr) {
    return Status::NotSupported(
        "SMA_GAggr needs a count(*) SMA whose grouping refines the query's");
  }
  op->covered_buckets_ = op->count_binding_.sma->num_buckets();

  for (const AggSpec& a : op->aggs_) {
    AggBinding binding;
    if (a.kind == AggKind::kCount) {
      // Rides on count_binding_; leave sma null in bindings_.
    } else {
      binding = op->BindAggregate(SmaFuncFor(a.kind), a.arg.get());
      if (binding.sma == nullptr) {
        return Status::NotSupported(util::Format(
            "no SMA matches aggregate %s(%s) with the query's grouping",
            std::string(AggKindToString(a.kind)).c_str(),
            a.arg->ToString().c_str()));
      }
      op->covered_buckets_ =
          std::min(op->covered_buckets_, binding.sma->num_buckets());
    }
    op->bindings_.push_back(std::move(binding));
  }
  return op;
}

Status SmaGAggr::ProcessQualifying(GroupTable* groups,
                                   BindingCursors* cursors, uint64_t b) {
  // Direct answers read aggregate values straight out of the SMA entries, so
  // the bucket's shared latch must exclude a concurrent maintainer folding a
  // fresh append into those entries mid-read. (Grading only needs superset
  // soundness; direct answers need the exact snapshot value — the boundary
  // bucket was already demoted to ambivalent for that reason.)
  auto latch = table_->latches()->LockShared(b);
  // Group cardinalities first: they establish which groups exist.
  for (size_t g = 0; g < cursors->count.size(); ++g) {
    SMADB_ASSIGN_OR_RETURN(int64_t count, cursors->count[g].Get(b));
    if (count > 0) {
      groups->Get(count_binding_.result_keys[g])->AddBucketCount(count);
    }
  }
  // Then each aggregate from its own SMA.
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggBinding& binding = bindings_[i];
    if (binding.sma == nullptr) continue;  // count(*): handled above
    std::vector<sma::SmaFile::Cursor>& agg_cursors = cursors->per_agg[i];
    for (size_t g = 0; g < agg_cursors.size(); ++g) {
      SMADB_ASSIGN_OR_RETURN(int64_t v, agg_cursors[g].Get(b));
      if (binding.sma->IsUndefined(v)) continue;  // empty min/max group
      if (v == 0 && (binding.sma->spec().func == AggFunc::kSum)) {
        // Zero sums are identity; skip the group-table touch.
        continue;
      }
      groups->Get(binding.result_keys[g])->AddSummary(i, v);
    }
  }
  return Status::OK();
}

Status SmaGAggr::ProcessAmbivalent(GroupTable* groups, uint64_t b,
                                   SmaGAggrBatchState* batch_state) {
  if (batch_state != nullptr) {
    // Vectorized: decode the bucket into column batches, refine the dense
    // selection with EvalBatch, and fold through the fused kernels. Goes to
    // the worker's partial aggregator, flushed into `groups` at the end.
    const auto [first, end] =
        table_->BucketPageRange(static_cast<uint32_t>(b));
    SMADB_RETURN_NOT_OK(batch_state->reader.Open(first, end));
    while (true) {
      batch_state->batch.Clear();
      SMADB_ASSIGN_OR_RETURN(
          bool has, batch_state->reader.NextBatch(&batch_state->batch.cols));
      if (!has) break;
      batch_state->batch.SelectAll();
      pred_->EvalBatch(batch_state->batch.cols, &batch_state->batch.sel);
      batch_state->aggregator.AddBatch(batch_state->batch);
    }
    batch_state->reader.Close();
    return Status::OK();
  }
  // Tuple-at-a-time through a snapshot-clamped reader: the reader's internal
  // lock-coupled latch keeps writers out of the page being read, and the
  // snapshot hides slots appended after this execution began.
  const auto [first, end] = table_->BucketPageRange(static_cast<uint32_t>(b));
  BucketReader reader(table_);
  reader.set_snapshot(snapshot_);
  SMADB_RETURN_NOT_OK(reader.Open(first, end));
  std::vector<Value> key(group_by_.size());
  TupleRef t;
  while (true) {
    SMADB_ASSIGN_OR_RETURN(bool has, reader.Next(&t));
    if (!has) break;
    if (!pred_->Eval(t)) continue;
    for (size_t i = 0; i < group_by_.size(); ++i) {
      key[i] = t.GetValue(group_by_[i]);
    }
    groups->Get(key)->AddTuple(t);
  }
  return Status::OK();
}

Grade SmaGAggr::EffectiveGrade(Grade g, uint64_t b) const {
  // A qualifying bucket beyond aggregate-SMA coverage must be inspected.
  if (g == Grade::kQualifies && b >= covered_buckets_) {
    g = Grade::kAmbivalent;
  }
  // Experiment knob: demote a deterministic fraction of buckets so the
  // Fig. 5 sweep can control the investigated percentage.
  if (options_.force_ambivalent_fraction > 0.0) {
    util::Rng bucket_rng(options_.force_seed ^ (b * 0x9E3779B9ULL));
    if (bucket_rng.NextDouble() < options_.force_ambivalent_fraction) {
      g = Grade::kAmbivalent;
    }
  }
  return g;
}

Status SmaGAggr::ProcessBucket(Grade g, uint64_t b, GroupTable* groups,
                               BindingCursors* cursors, SmaScanStats* stats,
                               SmaGAggrBatchState* batch_state) {
  // Bucket-granular cooperative checkpoint (every grade, every worker).
  SMADB_RETURN_NOT_OK(CheckRuntime("SmaGAggr"));
  g = EffectiveGrade(g, b);
  stats->Tally(g);
  switch (g) {
    case Grade::kQualifies:
      return ProcessQualifying(groups, cursors, b);
    case Grade::kDisqualifies:
      return Status::OK();  // "do nothing"
    case Grade::kAmbivalent:
      if (options_.sma_only) {
        // Degraded rung: leave the bucket uninspected; the caller marks the
        // answer partial via buckets_skipped().
        buckets_skipped_.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      }
      return ProcessAmbivalent(groups, b, batch_state);
  }
  return Status::OK();
}

Status SmaGAggr::Init() {
  obs::OpTimer timer(prof_);
  const Status s = InitImpl();
  if (prof_ != nullptr) {
    // Single feed point: stats_ is final here on every path (the parallel
    // branch merges per-worker censuses into it exactly once, including
    // when a morsel failed), so the profile can never double-count a
    // bucket — degraded-ladder reruns register a fresh node.
    prof_->AddBuckets(stats_.qualifying_buckets, stats_.disqualifying_buckets,
                      stats_.ambivalent_buckets);
    prof_->AddBucketsSkipped(buckets_skipped());
    prof_->SetDetail(util::Format(
        "groups=%zu dop=%zu mode=%s%s", results_.size(),
        std::max<size_t>(1, options_.degree_of_parallelism),
        options_.batch_size > 0 ? "batch" : "row",
        options_.sma_only ? " sma_only" : ""));
    if (!s.ok()) prof_->MarkFailed(s.ToString());
  }
  return s;
}

Status SmaGAggr::InitImpl() {
  results_.clear();
  next_ = 0;
  stats_ = SmaScanStats();
  buckets_skipped_.store(0, std::memory_order_relaxed);

  BucketSource source(table_, pred_, smas_);
  snapshot_ = source.snapshot();
  GroupTable groups(&aggs_);
  const size_t dop =
      std::max<size_t>(1, options_.degree_of_parallelism);

  auto make_batch_state = [&]() -> std::unique_ptr<SmaGAggrBatchState> {
    if (options_.batch_size == 0) return nullptr;
    auto state = std::make_unique<SmaGAggrBatchState>(
        table_, &group_by_, &aggs_, pred_, options_.batch_size);
    state->reader.set_snapshot(snapshot_);
    return state;
  };

  if (dop == 1) {
    // The paper's single synchronized pass over relation and SMA-files.
    BindingCursors cursors = MakeCursors();
    std::unique_ptr<SmaGAggrBatchState> batch_state = make_batch_state();
    if (batch_state != nullptr) {
      SMADB_RETURN_NOT_OK(
          ChargeMemory(batch_state->batch.cols.ApproxBytes(), "ColumnBatch"));
    }
    size_t charged = 0;
    BucketUnit unit;
    while (true) {
      SMADB_ASSIGN_OR_RETURN(bool has, source.NextGraded(&unit));
      if (!has) break;
      SMADB_RETURN_NOT_OK(ProcessBucket(unit.grade, unit.bucket, &groups,
                                        &cursors, &stats_,
                                        batch_state.get()));
      if (groups.approx_bytes() > charged) {
        SMADB_RETURN_NOT_OK(
            ChargeMemory(groups.approx_bytes() - charged, "GroupTable"));
        charged = groups.approx_bytes();
      }
    }
    if (batch_state != nullptr) {
      batch_state->aggregator.FlushInto(&groups);
      if (prof_ != nullptr) {
        prof_->AddPagesRead(batch_state->reader.pages_opened());
      }
    }
    if (groups.approx_bytes() > charged) {
      SMADB_RETURN_NOT_OK(
          ChargeMemory(groups.approx_bytes() - charged, "GroupTable"));
    }
  } else {
    // Morsel-parallel: per-worker grader, cursors, census, and group table
    // (the morsels carry batches when batch_size > 0); exact merge
    // afterwards.
    struct WorkerState {
      std::unique_ptr<sma::BucketGrader> grader;
      BindingCursors cursors;
      GroupTable groups;
      SmaScanStats stats;
      std::unique_ptr<SmaGAggrBatchState> batch_state;
      size_t charged = 0;  // bytes of `groups` already charged
      explicit WorkerState(const std::vector<AggSpec>* aggs)
          : groups(aggs) {}
    };
    std::vector<WorkerState> workers;
    workers.reserve(dop);
    for (size_t w = 0; w < dop; ++w) {
      workers.emplace_back(&aggs_);
      workers.back().grader = source.NewGrader();
      workers.back().cursors = MakeCursors();
      workers.back().batch_state = make_batch_state();
      if (workers.back().batch_state != nullptr) {
        SMADB_RETURN_NOT_OK(ChargeMemory(
            workers.back().batch_state->batch.cols.ApproxBytes(),
            "ColumnBatch"));
      }
    }
    // The cancel token flows into the claim loop: once it trips, no further
    // morsel is scheduled and the pool drains before we touch worker state.
    const util::CancelToken* cancel =
        ctx_ != nullptr ? ctx_->cancel() : nullptr;
    const Status par = util::ThreadPool::Shared()->ParallelFor(
        0, source.num_buckets(), dop,
        [&](size_t w, uint64_t b) -> Status {
          WorkerState& ws = workers[w];
          // GradeLatched = shared latch during grading + boundary-bucket
          // demotion, so worker censuses match the serial NextGraded path.
          SMADB_ASSIGN_OR_RETURN(Grade g,
                                 source.GradeLatched(ws.grader.get(), b));
          SMADB_RETURN_NOT_OK(ProcessBucket(g, b, &ws.groups, &ws.cursors,
                                            &ws.stats,
                                            ws.batch_state.get()));
          if (ws.groups.approx_bytes() > ws.charged) {
            SMADB_RETURN_NOT_OK(ChargeMemory(
                ws.groups.approx_bytes() - ws.charged, "GroupTable"));
            ws.charged = ws.groups.approx_bytes();
          }
          return Status::OK();
        },
        cancel);
    // Per-worker censuses merge into stats_ exactly once, success or
    // failure — the pool has drained, so worker state is quiescent. The
    // pre-fix code returned before this loop on a failed morsel, dropping
    // the partial census a degraded-ladder rerun would then re-count.
    for (WorkerState& ws : workers) {
      stats_.Merge(ws.stats);
      if (prof_ != nullptr && ws.batch_state != nullptr) {
        prof_->AddPagesRead(ws.batch_state->reader.pages_opened());
      }
    }
    SMADB_RETURN_NOT_OK(par);
    for (WorkerState& ws : workers) {
      if (ws.batch_state != nullptr) {
        ws.batch_state->aggregator.FlushInto(&ws.groups);
      }
      const size_t before = groups.approx_bytes();
      groups.MergeFrom(ws.groups);
      // Merge-phase growth is charged under its own component so budget
      // failures name the phase that tripped them.
      if (groups.approx_bytes() > before) {
        SMADB_RETURN_NOT_OK(ChargeMemory(groups.approx_bytes() - before,
                                         "GroupTable.merge"));
      }
    }
  }

  // Phase 3 (average finalization) happens inside Emit/Finalize.
  SMADB_RETURN_NOT_OK(groups.Emit(&schema_, &results_));
  return Status::OK();
}

Result<bool> SmaGAggr::Next(TupleRef* out) {
  if (next_ >= results_.size()) return false;
  *out = results_[next_].AsRef();
  ++next_;
  if (prof_ != nullptr) prof_->AddRows(1);
  return true;
}

}  // namespace smadb::exec
