#include "exec/sma_gaggr.h"

#include <algorithm>

#include "util/rng.h"
#include "util/string_util.h"

namespace smadb::exec {

using sma::AggFunc;
using sma::Grade;
using sma::Sma;
using storage::TupleRef;
using util::Result;
using util::Status;
using util::Value;

namespace {

// func/kind correspondence between query aggregates and SMA functions.
AggFunc SmaFuncFor(AggKind kind) {
  switch (kind) {
    case AggKind::kSum:
    case AggKind::kAvg:
      return AggFunc::kSum;
    case AggKind::kCount:
      return AggFunc::kCount;
    case AggKind::kMin:
      return AggFunc::kMin;
    case AggKind::kMax:
      return AggFunc::kMax;
  }
  return AggFunc::kCount;
}

// True when every query group-by column appears in the SMA's group-by
// (the SMA grouping refines the query grouping).
bool GroupingRefines(const std::vector<size_t>& query_groups,
                     const std::vector<size_t>& sma_groups) {
  for (size_t qcol : query_groups) {
    if (std::find(sma_groups.begin(), sma_groups.end(), qcol) ==
        sma_groups.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace

SmaGAggr::AggBinding SmaGAggr::BindAggregate(AggFunc func,
                                             const expr::Expr* arg) const {
  AggBinding binding;
  const std::string arg_sig = arg != nullptr ? arg->ToString() : "";
  const Sma* best = nullptr;
  for (const Sma* sma : smas_->all()) {
    const sma::SmaSpec& spec = sma->spec();
    if (spec.func != func) continue;
    const std::string spec_sig =
        spec.arg != nullptr ? spec.arg->ToString() : "";
    if (spec_sig != arg_sig) continue;
    if (!GroupingRefines(group_by_, spec.group_by)) continue;
    // Prefer the coarsest refining grouping (fewest files to read).
    if (best == nullptr ||
        spec.group_by.size() < best->spec().group_by.size()) {
      best = sma;
    }
  }
  if (best == nullptr) return binding;

  binding.sma = best;
  // Project each SMA group key onto the query group-by columns.
  std::vector<size_t> positions;  // query col -> index in SMA group key
  for (size_t qcol : group_by_) {
    const auto& sg = best->spec().group_by;
    positions.push_back(static_cast<size_t>(
        std::find(sg.begin(), sg.end(), qcol) - sg.begin()));
  }
  for (size_t g = 0; g < best->num_groups(); ++g) {
    binding.cursors.push_back(best->group_file(g)->NewCursor());
    const std::vector<Value>& key = best->group_key(g);
    std::vector<Value> projected;
    projected.reserve(positions.size());
    for (size_t pos : positions) projected.push_back(key[pos]);
    binding.result_keys.push_back(std::move(projected));
  }
  return binding;
}

Result<std::unique_ptr<SmaGAggr>> SmaGAggr::Make(
    storage::Table* table, expr::PredicatePtr pred,
    std::vector<size_t> group_by, std::vector<AggSpec> aggs,
    const sma::SmaSet* smas, SmaGAggrOptions options) {
  SMADB_ASSIGN_OR_RETURN(storage::Schema schema,
                         AggResultSchema(table->schema(), group_by, aggs));
  std::unique_ptr<SmaGAggr> op(
      new SmaGAggr(table, std::move(pred), std::move(group_by),
                   std::move(aggs), smas, std::move(schema), options));

  // The count(*) binding is mandatory (group cardinalities + emptiness).
  op->count_binding_ = op->BindAggregate(AggFunc::kCount, nullptr);
  if (op->count_binding_.sma == nullptr) {
    return Status::NotSupported(
        "SMA_GAggr needs a count(*) SMA whose grouping refines the query's");
  }
  op->covered_buckets_ = op->count_binding_.sma->num_buckets();

  for (const AggSpec& a : op->aggs_) {
    AggBinding binding;
    if (a.kind == AggKind::kCount) {
      // Rides on count_binding_; leave sma null in bindings_.
    } else {
      binding = op->BindAggregate(SmaFuncFor(a.kind), a.arg.get());
      if (binding.sma == nullptr) {
        return Status::NotSupported(util::Format(
            "no SMA matches aggregate %s(%s) with the query's grouping",
            std::string(AggKindToString(a.kind)).c_str(),
            a.arg->ToString().c_str()));
      }
      op->covered_buckets_ =
          std::min(op->covered_buckets_, binding.sma->num_buckets());
    }
    op->bindings_.push_back(std::move(binding));
  }
  return op;
}

Status SmaGAggr::ProcessQualifying(GroupTable* groups, uint64_t b) {
  // Group cardinalities first: they establish which groups exist.
  for (size_t g = 0; g < count_binding_.cursors.size(); ++g) {
    SMADB_ASSIGN_OR_RETURN(int64_t count, count_binding_.cursors[g].Get(b));
    if (count > 0) {
      groups->Get(count_binding_.result_keys[g])->AddBucketCount(count);
    }
  }
  // Then each aggregate from its own SMA.
  for (size_t i = 0; i < aggs_.size(); ++i) {
    AggBinding& binding = bindings_[i];
    if (binding.sma == nullptr) continue;  // count(*): handled above
    for (size_t g = 0; g < binding.cursors.size(); ++g) {
      SMADB_ASSIGN_OR_RETURN(int64_t v, binding.cursors[g].Get(b));
      if (binding.sma->IsUndefined(v)) continue;  // empty min/max group
      if (v == 0 && (binding.sma->spec().func == AggFunc::kSum)) {
        // Zero sums are identity; skip the group-table touch.
        continue;
      }
      groups->Get(binding.result_keys[g])->AddSummary(i, v);
    }
  }
  return Status::OK();
}

Status SmaGAggr::ProcessAmbivalent(GroupTable* groups, uint64_t b) {
  std::vector<Value> key(group_by_.size());
  return table_->ForEachTupleInBucket(
      static_cast<uint32_t>(b), [&](const TupleRef& t, storage::Rid) {
        if (!pred_->Eval(t)) return;
        for (size_t i = 0; i < group_by_.size(); ++i) {
          key[i] = t.GetValue(group_by_[i]);
        }
        groups->Get(key)->AddTuple(t);
      });
}

Status SmaGAggr::Init() {
  results_.clear();
  next_ = 0;
  stats_ = SmaScanStats();

  auto grader = sma::BucketGrader::Create(pred_, smas_);
  GroupTable groups(&aggs_);
  const uint64_t buckets = table_->num_buckets();
  for (uint64_t b = 0; b < buckets; ++b) {
    SMADB_ASSIGN_OR_RETURN(Grade g, grader->GradeBucket(b));
    // A qualifying bucket beyond aggregate-SMA coverage must be inspected.
    if (g == Grade::kQualifies && b >= covered_buckets_) {
      g = Grade::kAmbivalent;
    }
    // Experiment knob: demote a deterministic fraction of buckets so the
    // Fig. 5 sweep can control the investigated percentage.
    if (options_.force_ambivalent_fraction > 0.0) {
      util::Rng bucket_rng(options_.force_seed ^ (b * 0x9E3779B9ULL));
      if (bucket_rng.NextDouble() < options_.force_ambivalent_fraction) {
        g = Grade::kAmbivalent;
      }
    }
    switch (g) {
      case Grade::kQualifies:
        ++stats_.qualifying_buckets;
        SMADB_RETURN_NOT_OK(ProcessQualifying(&groups, b));
        break;
      case Grade::kDisqualifies:
        ++stats_.disqualifying_buckets;
        break;  // "do nothing"
      case Grade::kAmbivalent:
        ++stats_.ambivalent_buckets;
        SMADB_RETURN_NOT_OK(ProcessAmbivalent(&groups, b));
        break;
    }
  }
  // Phase 3 (average finalization) happens inside Emit/Finalize.
  SMADB_RETURN_NOT_OK(groups.Emit(&schema_, &results_));
  return Status::OK();
}

Result<bool> SmaGAggr::Next(TupleRef* out) {
  if (next_ >= results_.size()) return false;
  *out = results_[next_].AsRef();
  ++next_;
  return true;
}

}  // namespace smadb::exec
