// Join operators.
//
// HashJoin — classic equi hash join (build right, probe left) over integral
// keys, used by the multi-table TPC-D workloads.
//
// SmaSemiJoin — the executor realization of §4's semi-join SMAs: for
//   select R.* from R, S where R.A θ S.B
// it first grades R's buckets against the minimax of S.B (sma::
// ReduceSemiJoin), skips disqualified buckets entirely, streams
// proven-all-match buckets without probing, and probes only the rest.

#ifndef SMADB_EXEC_JOIN_H_
#define SMADB_EXEC_JOIN_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/bucket_source.h"
#include "exec/operator.h"
#include "expr/predicate.h"
#include "sma/semijoin.h"
#include "storage/table.h"

namespace smadb::exec {

/// Equi hash join: output = concatenation of left and right fields.
/// The build side (right) is materialized in Init; duplicates on either
/// side produce the full cross product of matches.
class HashJoin final : public Operator {
 public:
  /// `left_col` / `right_col` are ordinals into the children's schemas;
  /// both must be integral-family of the same family.
  static util::Result<std::unique_ptr<HashJoin>> Make(
      std::unique_ptr<Operator> left, size_t left_col,
      std::unique_ptr<Operator> right, size_t right_col);

  const storage::Schema& output_schema() const override { return schema_; }

  util::Status Init() override;
  util::Result<bool> Next(storage::TupleRef* out) override;

  void BindContext(util::QueryContext* ctx) override {
    Operator::BindContext(ctx);
    auto scope = BindProfile("HashJoin");
    left_->BindContext(ctx);
    right_->BindContext(ctx);
  }

 private:
  HashJoin(std::unique_ptr<Operator> left, size_t left_col,
           std::unique_ptr<Operator> right, size_t right_col,
           storage::Schema schema)
      : left_(std::move(left)),
        left_col_(left_col),
        right_(std::move(right)),
        right_col_(right_col),
        schema_(std::move(schema)),
        out_buffer_(&schema_) {}

  void EmitCombined(const storage::TupleRef& left_tuple, size_t right_idx);

  std::unique_ptr<Operator> left_;
  size_t left_col_;
  std::unique_ptr<Operator> right_;
  size_t right_col_;
  storage::Schema schema_;

  // Build side: materialized right tuples + key -> row indices.
  std::vector<storage::TupleBuffer> build_rows_;
  std::unordered_map<int64_t, std::vector<size_t>> build_index_;

  // Probe state.
  storage::TupleRef current_left_;
  const std::vector<size_t>* matches_ = nullptr;
  size_t match_pos_ = 0;
  storage::TupleBuffer out_buffer_;
};

/// Semi-join R ⋉ S on `R.r_col op S.s_col`, SMA-reduced per paper §4.
/// Output schema = R's schema.
///
/// Optional side predicates make this the building block for EXISTS-style
/// queries (TPC-D Q4): `r_pred` restricts R (graded against R's SMAs and
/// combined with the semi-join reduction, so both prune buckets), and
/// `s_pred` restricts which S tuples count as join partners.
class SmaSemiJoin final : public Operator {
 public:
  /// `r_smas` supplies R's min/max SMAs (may lack them: no bucket pruning
  /// then); `s_smas` may be null (S scanned for its minimax).
  static util::Result<std::unique_ptr<SmaSemiJoin>> Make(
      storage::Table* r, size_t r_col, expr::CmpOp op, storage::Table* s,
      size_t s_col, const sma::SmaSet* r_smas,
      const sma::SmaSet* s_smas = nullptr,
      expr::PredicatePtr r_pred = nullptr,
      expr::PredicatePtr s_pred = nullptr);

  const storage::Schema& output_schema() const override {
    return r_->schema();
  }

  util::Status Init() override;
  util::Result<bool> Next(storage::TupleRef* out) override;

  /// Buckets skipped by the reduction (the §4 payoff).
  uint64_t buckets_pruned() const { return buckets_pruned_; }
  uint64_t buckets_unprobed() const { return buckets_unprobed_; }

 private:
  SmaSemiJoin(storage::Table* r, size_t r_col, expr::CmpOp op,
              storage::Table* s, size_t s_col, const sma::SmaSet* r_smas,
              const sma::SmaSet* s_smas, expr::PredicatePtr r_pred,
              expr::PredicatePtr s_pred)
      : r_(r),
        r_col_(r_col),
        op_(op),
        s_(s),
        s_col_(s_col),
        r_smas_(r_smas),
        s_smas_(s_smas),
        r_pred_(std::move(r_pred)),
        s_pred_(std::move(s_pred)),
        r_reader_(r) {}

  /// Does value `a` join with some S tuple?
  bool Matches(int64_t a) const;

  /// Advances to the first page of the next candidate bucket.
  util::Status NextBucket();

  storage::Table* r_;
  size_t r_col_;
  expr::CmpOp op_;
  storage::Table* s_;
  size_t s_col_;
  const sma::SmaSet* r_smas_;
  const sma::SmaSet* s_smas_;
  expr::PredicatePtr r_pred_;  // may be null (no R restriction)
  expr::PredicatePtr s_pred_;  // may be null (all of S joins)

  sma::SemiJoinReduction reduction_;
  std::unique_ptr<sma::BucketGrader> r_grader_;
  std::unordered_set<int64_t> s_values_;  // for kEq / kNe probing

  int64_t curr_bucket_ = -1;
  bool curr_all_match_ = false;
  sma::Grade curr_r_grade_ = sma::Grade::kAmbivalent;
  // Streams R's candidate buckets snapshot-clamped and latched; grading is
  // superset-sound against the snapshot, so no boundary demotion is needed
  // (§4 reduction never reads aggregate values directly).
  BucketReader r_reader_;
  storage::TableSnapshot r_snap_;
  bool done_ = false;
  uint64_t buckets_pruned_ = 0;
  uint64_t buckets_unprobed_ = 0;
};

}  // namespace smadb::exec

#endif  // SMADB_EXEC_JOIN_H_
