// SMA_Scan (paper §3.2, Fig. 6): a selection scan that uses SMAs to skip
// disqualifying buckets entirely, return qualifying buckets' tuples without
// per-tuple predicate evaluation, and fall back to predicate evaluation
// only inside ambivalent buckets.
//
// The bucket walk itself (grading, page range, slot iteration) lives in
// exec/bucket_source.h, shared with TableScan and the parallel aggregates.

#ifndef SMADB_EXEC_SMA_SCAN_H_
#define SMADB_EXEC_SMA_SCAN_H_

#include "exec/bucket_source.h"
#include "exec/operator.h"
#include "expr/predicate.h"
#include "sma/grade.h"
#include "storage/table.h"

namespace smadb::exec {

class SmaScan final : public Operator {
 public:
  /// `smas` supplies the selection SMAs; atoms without SMA support simply
  /// grade ambivalent (still correct, just slower).
  SmaScan(storage::Table* table, expr::PredicatePtr pred,
          const sma::SmaSet* smas)
      : source_(table, std::move(pred), smas), reader_(table) {}

  const storage::Schema& output_schema() const override {
    return source_.table()->schema();
  }

  util::Status Init() override;
  util::Result<bool> Next(storage::TupleRef* out) override;

  /// Native batch path. Batches never span buckets, so the bucket's grade
  /// maps straight onto the selection vector: qualifying buckets keep the
  /// full (dense) selection without evaluating the predicate at all;
  /// ambivalent buckets get one vectorized EvalBatch pass.
  util::Result<bool> NextBatch(Batch* out) override;

  void AddRequiredBatchColumns(std::vector<bool>* mask) const override {
    source_.pred()->AddReferencedColumns(mask);
  }

  const SmaScanStats& stats() const { return stats_; }

  void BindContext(util::QueryContext* ctx) override {
    Operator::BindContext(ctx);
    BindProfile("SmaScan");
  }

 private:
  /// Feeds the reader's page-fetch delta to the profile node (idempotent).
  void FeedPages() {
    if (prof_ == nullptr) return;
    prof_->AddPagesRead(reader_.pages_opened() - pages_fed_);
    pages_fed_ = reader_.pages_opened();
  }

  /// Fig. 6's getBucket(): advances to the next qualifying or ambivalent
  /// bucket, fetching its first page. Sets done_ when no buckets remain.
  util::Status GetBucket();

  BucketSource source_;
  BucketReader reader_;
  sma::Grade curr_grade_ = sma::Grade::kAmbivalent;
  bool done_ = false;
  SmaScanStats stats_;
  uint64_t pages_fed_ = 0;
};

}  // namespace smadb::exec

#endif  // SMADB_EXEC_SMA_SCAN_H_
