// SMA_Scan (paper §3.2, Fig. 6): a selection scan that uses SMAs to skip
// disqualifying buckets entirely, return qualifying buckets' tuples without
// per-tuple predicate evaluation, and fall back to predicate evaluation
// only inside ambivalent buckets.

#ifndef SMADB_EXEC_SMA_SCAN_H_
#define SMADB_EXEC_SMA_SCAN_H_

#include <memory>

#include "exec/operator.h"
#include "expr/predicate.h"
#include "sma/grade.h"
#include "storage/table.h"

namespace smadb::exec {

/// Per-run skip statistics (what Fig. 5's x-axis is made of).
struct SmaScanStats {
  uint64_t qualifying_buckets = 0;
  uint64_t disqualifying_buckets = 0;
  uint64_t ambivalent_buckets = 0;

  uint64_t BucketsTotal() const {
    return qualifying_buckets + disqualifying_buckets + ambivalent_buckets;
  }
  /// Fraction of buckets whose pages had to be fetched.
  double ProcessedFraction() const {
    const uint64_t total = BucketsTotal();
    return total == 0
               ? 0.0
               : static_cast<double>(qualifying_buckets +
                                     ambivalent_buckets) /
                     static_cast<double>(total);
  }
};

class SmaScan final : public Operator {
 public:
  /// `smas` supplies the selection SMAs; atoms without SMA support simply
  /// grade ambivalent (still correct, just slower).
  SmaScan(storage::Table* table, expr::PredicatePtr pred,
          const sma::SmaSet* smas)
      : table_(table), pred_(std::move(pred)), smas_(smas) {}

  const storage::Schema& output_schema() const override {
    return table_->schema();
  }

  util::Status Init() override;
  util::Result<bool> Next(storage::TupleRef* out) override;

  const SmaScanStats& stats() const { return stats_; }

 private:
  /// Fig. 6's getBucket(): advances to the next qualifying or ambivalent
  /// bucket, fetching its first page. Sets done_ when no buckets remain.
  util::Status GetBucket();

  storage::Table* table_;
  expr::PredicatePtr pred_;
  const sma::SmaSet* smas_;
  std::unique_ptr<sma::BucketGrader> grader_;

  int64_t curr_bucket_ = -1;
  sma::Grade curr_grade_ = sma::Grade::kAmbivalent;
  uint32_t page_ = 0;       // current page within curr bucket
  uint32_t page_end_ = 0;   // one past the bucket's last page
  uint16_t slot_ = 0;
  uint16_t page_count_ = 0;
  storage::PageGuard guard_;
  bool done_ = false;
  SmaScanStats stats_;
};

}  // namespace smadb::exec

#endif  // SMADB_EXEC_SMA_SCAN_H_
