// BucketSource / BucketReader: the bucket-granular work-unit layer.
//
// Every SMA access path walks the same structure — the table's physically
// consecutive buckets (§2.1), graded per predicate (§3.1), then read page
// by page. This file centralizes that walk, which used to be duplicated
// across TableScan, SmaScan, and SMA_GAggr, and doubles as the morsel
// dispenser for parallel execution: one bucket = one work unit, claimed by
// workers through an atomic counter, each worker grading through its own
// cursor-backed BucketGrader (graders hold page pins and are therefore
// per-thread; the Sma structures they read are immutable and shared).

#ifndef SMADB_EXEC_BUCKET_SOURCE_H_
#define SMADB_EXEC_BUCKET_SOURCE_H_

#include <atomic>
#include <memory>

#include "expr/predicate.h"
#include "sma/grade.h"
#include "storage/column_batch.h"
#include "storage/table.h"

namespace smadb::exec {

/// Per-run skip statistics (what Fig. 5's x-axis is made of).
struct SmaScanStats {
  uint64_t qualifying_buckets = 0;
  uint64_t disqualifying_buckets = 0;
  uint64_t ambivalent_buckets = 0;

  uint64_t BucketsTotal() const {
    return qualifying_buckets + disqualifying_buckets + ambivalent_buckets;
  }
  /// Fraction of buckets whose pages had to be fetched.
  double ProcessedFraction() const {
    const uint64_t total = BucketsTotal();
    return total == 0
               ? 0.0
               : static_cast<double>(qualifying_buckets +
                                     ambivalent_buckets) /
                     static_cast<double>(total);
  }
  /// Folds `g` into the census.
  void Tally(sma::Grade g) {
    switch (g) {
      case sma::Grade::kQualifies:
        ++qualifying_buckets;
        break;
      case sma::Grade::kDisqualifies:
        ++disqualifying_buckets;
        break;
      case sma::Grade::kAmbivalent:
        ++ambivalent_buckets;
        break;
    }
  }
  /// Merges a worker's partial census.
  void Merge(const SmaScanStats& o) {
    qualifying_buckets += o.qualifying_buckets;
    disqualifying_buckets += o.disqualifying_buckets;
    ambivalent_buckets += o.ambivalent_buckets;
  }
};

/// One graded work unit.
struct BucketUnit {
  uint64_t bucket = 0;
  sma::Grade grade = sma::Grade::kAmbivalent;
};

/// Enumerates the buckets of a table for one predicate, grading each
/// against the SMAs. Serial consumers pull `NextGraded` from one thread;
/// parallel workers share `ClaimNext` and grade with per-worker graders.
///
/// Construction captures a TableSnapshot: the walk covers exactly the
/// buckets of that consistent append prefix, and the one bucket a
/// concurrent appender may still be folding into (snapshot boundary) is
/// demoted to ambivalent — its SMA entries cover a superset of the
/// snapshot's rows, which is sound for skip decisions but not for direct
/// answers, so its rows are inspected (snapshot-clamped) instead.
class BucketSource {
 public:
  /// `smas` may be null — every bucket then grades ambivalent.
  BucketSource(storage::Table* table, expr::PredicatePtr pred,
               const sma::SmaSet* smas);

  storage::Table* table() const { return table_; }
  const expr::PredicatePtr& pred() const { return pred_; }
  const storage::TableSnapshot& snapshot() const { return snapshot_; }
  uint64_t num_buckets() const { return snapshot_.buckets; }

  /// True when at least one predicate atom is backed by a SMA — otherwise
  /// every bucket grades ambivalent and grading is pure overhead.
  bool has_sma_support() const { return has_sma_support_; }

  /// Rewinds both the serial cursor and the parallel claim counter.
  void Reset();

  // --- serial path (single consumer) ---------------------------------------

  /// Produces the next bucket with its grade; false at the end.
  util::Result<bool> NextGraded(BucketUnit* out);

  // --- parallel path (any number of workers) -------------------------------

  /// Claims the next unprocessed bucket (atomic work-stealing counter).
  /// Each worker observes a non-decreasing bucket sequence.
  bool ClaimNext(uint64_t* bucket) {
    const uint64_t b = claim_next_.fetch_add(1, std::memory_order_relaxed);
    if (b >= num_buckets()) return false;
    *bucket = b;
    return true;
  }

  /// A fresh grading stream for one worker (cursors hold page pins, so a
  /// grader must not be shared across threads; creating one per worker from
  /// the shared immutable SMAs is safe and keeps per-worker access
  /// amortized-sequential). Null when the source has no SMAs — callers
  /// treat every bucket as ambivalent then.
  std::unique_ptr<sma::BucketGrader> NewGrader() const {
    if (smas_ == nullptr) return nullptr;
    return sma::BucketGrader::Create(pred_, smas_);
  }

  /// Demotes the snapshot-boundary bucket to ambivalent; identity for every
  /// other bucket. Idempotent — operators may re-apply freely.
  sma::Grade ApplySnapshot(uint64_t bucket, sma::Grade g) const {
    if (snapshot_.demote_boundary && bucket == snapshot_.boundary_bucket) {
      return sma::Grade::kAmbivalent;
    }
    return g;
  }

  /// Grades `bucket` with `grader` (null = ambivalent) under the bucket's
  /// shared latch, then applies the snapshot demotion. The one grading
  /// entry point every consumer — serial or worker — goes through, so all
  /// censuses agree.
  util::Result<sma::Grade> GradeLatched(sma::BucketGrader* grader,
                                        uint64_t bucket) const;

 private:
  storage::Table* table_;
  expr::PredicatePtr pred_;
  const sma::SmaSet* smas_;
  std::unique_ptr<sma::BucketGrader> grader_;  // serial path
  storage::TableSnapshot snapshot_;
  bool has_sma_support_ = false;
  uint64_t serial_next_ = 0;
  std::atomic<uint64_t> claim_next_{0};
};

/// Streams the live tuples of a consecutive page range, keeping the current
/// page pinned — the page/slot walk shared by TableScan and SmaScan.
///
/// The reader holds the shared latch of the bucket its current page belongs
/// to (lock coupling: the old bucket's latch is released before the next
/// bucket's is acquired, so at most one latch is ever held), which excludes
/// concurrent writers of exactly that bucket. With a snapshot set, pages
/// beyond the snapshot prefix are never opened and the snapshot's tail page
/// exposes only its visible slots. Callers must NOT hold an explicit latch
/// on the buckets they stream — shared_mutex is not reentrant.
class BucketReader {
 public:
  explicit BucketReader(storage::Table* table) : table_(table) {}

  /// Bounds every subsequent range by `snap` (copied).
  void set_snapshot(const storage::TableSnapshot& snap) {
    snapshot_ = snap;
    has_snapshot_ = true;
  }

  /// Positions on pages [first, end). May be called repeatedly (SmaScan
  /// opens one bucket at a time).
  util::Status Open(uint32_t first_page, uint32_t end_page);

  /// Next live tuple of the range; false when exhausted. The view stays
  /// valid until the following Next/Open/Close.
  util::Result<bool> Next(storage::TupleRef* out);

  /// Bulk form of Next: decodes live tuples column-at-a-time into `cols`
  /// until the batch fills or the range is exhausted. Returns whether any
  /// rows were appended. Do not interleave with Next() within one range.
  util::Result<bool> NextBatch(storage::ColumnBatch* cols);

  /// Drops the page pin and the bucket latch.
  void Close() {
    guard_.Release();
    latch_.Release();
  }

  /// Pages fetched through this reader since construction (cumulative
  /// across Open() calls) — the per-operator pages-read figure the query
  /// profile reports (DESIGN.md §11). Counts fetches, whether they hit
  /// the buffer pool or went to disk.
  uint64_t pages_opened() const { return pages_opened_; }

 private:
  /// Latches `page_`'s bucket (coupling from the previous one), pins the
  /// page, and sets the snapshot-clamped slot count.
  util::Status PinPage();

  storage::Table* table_;
  storage::PageGuard guard_;
  storage::BucketLatchTable::SharedGuard latch_;
  storage::TableSnapshot snapshot_;
  uint64_t pages_opened_ = 0;
  uint64_t latched_bucket_ = 0;
  uint32_t page_ = 0;
  uint32_t page_end_ = 0;
  uint16_t slot_ = 0;
  uint16_t page_count_ = 0;
  bool has_snapshot_ = false;
  bool open_ = false;
};

}  // namespace smadb::exec

#endif  // SMADB_EXEC_BUCKET_SOURCE_H_
