// Sort (with optional LIMIT): materializing order-by over any child.

#ifndef SMADB_EXEC_SORT_H_
#define SMADB_EXEC_SORT_H_

#include <memory>
#include <vector>

#include "exec/operator.h"

namespace smadb::exec {

/// One sort key: output-schema ordinal + direction.
struct SortKey {
  size_t column;
  bool descending = false;
};

class Sort final : public Operator {
 public:
  /// Sorts the child's entire output by `keys` (ties keep child order —
  /// stable). `limit` 0 means unlimited.
  static util::Result<std::unique_ptr<Sort>> Make(
      std::unique_ptr<Operator> child, std::vector<SortKey> keys,
      size_t limit = 0);

  const storage::Schema& output_schema() const override {
    return child_->output_schema();
  }

  util::Status Init() override;
  util::Result<bool> Next(storage::TupleRef* out) override;

  void BindContext(util::QueryContext* ctx) override {
    Operator::BindContext(ctx);
    auto scope = BindProfile("Sort");
    child_->BindContext(ctx);
  }

 private:
  Sort(std::unique_ptr<Operator> child, std::vector<SortKey> keys,
       size_t limit)
      : child_(std::move(child)), keys_(std::move(keys)), limit_(limit) {}

  std::unique_ptr<Operator> child_;
  std::vector<SortKey> keys_;
  size_t limit_;
  std::vector<storage::TupleBuffer> rows_;
  size_t next_ = 0;
};

}  // namespace smadb::exec

#endif  // SMADB_EXEC_SORT_H_
