#include "exec/aggregate.h"

#include <algorithm>

#include "util/string_util.h"

namespace smadb::exec {

using storage::Field;
using storage::Schema;
using storage::TupleBuffer;
using storage::TupleRef;
using util::Result;
using util::Status;
using util::TypeId;
using util::Value;

std::string_view AggKindToString(AggKind k) {
  switch (k) {
    case AggKind::kSum:
      return "sum";
    case AggKind::kCount:
      return "count";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
  }
  return "?";
}

TypeId AggSpec::OutputType() const {
  switch (kind) {
    case AggKind::kCount:
      return TypeId::kInt64;
    case AggKind::kAvg:
      return TypeId::kDouble;
    case AggKind::kSum:
      return arg->type() == TypeId::kDecimal ? TypeId::kDecimal
                                             : TypeId::kInt64;
    case AggKind::kMin:
    case AggKind::kMax:
      return arg->type();
  }
  return TypeId::kInt64;
}

Status ValidateAggs(const std::vector<AggSpec>& aggs) {
  if (aggs.empty()) {
    return Status::InvalidArgument("aggregation needs at least one aggregate");
  }
  for (const AggSpec& a : aggs) {
    if (a.kind == AggKind::kCount) {
      if (a.arg != nullptr) {
        return Status::InvalidArgument("count(*) must not have an argument");
      }
      continue;
    }
    if (a.arg == nullptr) {
      return Status::InvalidArgument(
          util::Format("%s aggregate '%s' needs an argument",
                       std::string(AggKindToString(a.kind)).c_str(),
                       a.name.c_str()));
    }
    const TypeId t = a.arg->type();
    if (t == TypeId::kDouble || t == TypeId::kString) {
      return Status::NotSupported(
          "aggregation argument must be integral-family, got " +
          std::string(util::TypeIdToString(t)));
    }
  }
  return Status::OK();
}

Result<Schema> AggResultSchema(const Schema& input,
                               const std::vector<size_t>& group_by,
                               const std::vector<AggSpec>& aggs) {
  SMADB_RETURN_NOT_OK(ValidateAggs(aggs));
  std::vector<Field> fields;
  for (size_t col : group_by) {
    if (col >= input.num_fields()) {
      return Status::OutOfRange(
          util::Format("group-by column %zu out of range", col));
    }
    fields.push_back(input.field(col));
  }
  for (const AggSpec& a : aggs) {
    Field f;
    f.name = a.name;
    f.type = a.OutputType();
    f.capacity = 0;
    fields.push_back(f);
  }
  return Schema(std::move(fields));
}

void GroupState::AddTuple(const TupleRef& t) {
  ++row_count_;
  for (size_t i = 0; i < aggs_->size(); ++i) {
    const AggSpec& a = (*aggs_)[i];
    switch (a.kind) {
      case AggKind::kCount:
        break;  // row_count_ carries it
      case AggKind::kSum:
      case AggKind::kAvg:
        acc_[i] += a.arg->EvalInt(t);
        break;
      case AggKind::kMin: {
        const int64_t v = a.arg->EvalInt(t);
        acc_[i] = defined_[i] ? std::min(acc_[i], v) : v;
        defined_[i] = true;
        break;
      }
      case AggKind::kMax: {
        const int64_t v = a.arg->EvalInt(t);
        acc_[i] = defined_[i] ? std::max(acc_[i], v) : v;
        defined_[i] = true;
        break;
      }
    }
  }
}

void GroupState::AddSummary(size_t idx, int64_t value) {
  const AggSpec& a = (*aggs_)[idx];
  switch (a.kind) {
    case AggKind::kCount:
      break;  // AddBucketCount carries it
    case AggKind::kSum:
    case AggKind::kAvg:
      acc_[idx] += value;
      break;
    case AggKind::kMin:
      acc_[idx] = defined_[idx] ? std::min(acc_[idx], value) : value;
      defined_[idx] = true;
      break;
    case AggKind::kMax:
      acc_[idx] = defined_[idx] ? std::max(acc_[idx], value) : value;
      defined_[idx] = true;
      break;
  }
}

void GroupState::MergeFrom(const GroupState& o) {
  row_count_ += o.row_count_;
  for (size_t i = 0; i < aggs_->size(); ++i) {
    switch ((*aggs_)[i].kind) {
      case AggKind::kCount:
        break;  // row_count_ carries it
      case AggKind::kSum:
      case AggKind::kAvg:
        acc_[i] += o.acc_[i];
        break;
      case AggKind::kMin:
        if (o.defined_[i]) {
          acc_[i] = defined_[i] ? std::min(acc_[i], o.acc_[i]) : o.acc_[i];
          defined_[i] = true;
        }
        break;
      case AggKind::kMax:
        if (o.defined_[i]) {
          acc_[i] = defined_[i] ? std::max(acc_[i], o.acc_[i]) : o.acc_[i];
          defined_[i] = true;
        }
        break;
    }
  }
}

void GroupState::Finalize(const std::vector<Value>& key,
                          TupleBuffer* out) const {
  for (size_t i = 0; i < key.size(); ++i) out->SetValue(i, key[i]);
  for (size_t i = 0; i < aggs_->size(); ++i) {
    const size_t col = key.size() + i;
    const AggSpec& a = (*aggs_)[i];
    switch (a.kind) {
      case AggKind::kCount:
        out->SetInt64(col, row_count_);
        break;
      case AggKind::kSum:
        if (a.OutputType() == TypeId::kDecimal) {
          out->SetDecimal(col, util::Decimal(acc_[i]));
        } else {
          out->SetInt64(col, acc_[i]);
        }
        break;
      case AggKind::kAvg: {
        // "in the last phase, we divide the sums ... by the computed count"
        double sum = static_cast<double>(acc_[i]);
        if (a.arg->type() == TypeId::kDecimal) sum /= 100.0;
        out->SetDouble(col, row_count_ == 0
                                ? 0.0
                                : sum / static_cast<double>(row_count_));
        break;
      }
      case AggKind::kMin:
      case AggKind::kMax: {
        // Emit in the argument's own type.
        const int64_t v = acc_[i];
        switch (a.OutputType()) {
          case TypeId::kInt32:
            out->SetInt32(col, static_cast<int32_t>(v));
            break;
          case TypeId::kDate:
            out->SetDate(col, util::Date(static_cast<int32_t>(v)));
            break;
          case TypeId::kDecimal:
            out->SetDecimal(col, util::Decimal(v));
            break;
          default:
            out->SetInt64(col, v);
            break;
        }
        break;
      }
    }
  }
}

std::string GroupTable::SerializeKey(const std::vector<Value>& key) {
  std::string out;
  for (const Value& v : key) {
    out += v.ToString();
    out += '\x1f';
  }
  return out;
}

size_t GroupTable::EntryBytes(const std::string& skey,
                              const std::vector<Value>& key) const {
  // Map node + serialized key + key Values + per-aggregate accumulators.
  return sizeof(Entry) + skey.capacity() + key.size() * sizeof(Value) +
         aggs_->size() * (sizeof(int64_t) + 1) + 64;
}

GroupState* GroupTable::Get(const std::vector<Value>& key) {
  const std::string skey = SerializeKey(key);
  auto it = groups_.find(skey);
  if (it == groups_.end()) {
    approx_bytes_ += EntryBytes(skey, key);
    it = groups_.emplace(skey, Entry{key, GroupState(aggs_)}).first;
  }
  return &it->second.state;
}

void GroupTable::MergeFrom(const GroupTable& o) {
  for (const auto& [skey, entry] : o.groups_) {
    auto it = groups_.find(skey);
    if (it == groups_.end()) {
      approx_bytes_ += EntryBytes(skey, entry.key);
      groups_.emplace(skey, entry);
    } else {
      it->second.state.MergeFrom(entry.state);
    }
  }
}

Status GroupTable::Emit(const Schema* schema,
                        std::vector<TupleBuffer>* out) const {
  out->clear();
  out->reserve(groups_.size());
  for (const auto& [skey, entry] : groups_) {
    // Groups without any contributing row are artifacts of identity
    // SMA entries (zero sums), not real result groups.
    if (entry.state.row_count() == 0) continue;
    TupleBuffer t(schema);
    entry.state.Finalize(entry.key, &t);
    out->push_back(std::move(t));
  }
  return Status::OK();
}

}  // namespace smadb::exec
