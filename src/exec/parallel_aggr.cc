#include "exec/parallel_aggr.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace smadb::exec {

using sma::Grade;
using storage::TupleRef;
using util::Result;
using util::Status;
using util::Value;

Result<std::unique_ptr<ParallelScanAggr>> ParallelScanAggr::Make(
    storage::Table* table, expr::PredicatePtr pred,
    std::vector<size_t> group_by, std::vector<AggSpec> aggs,
    const sma::SmaSet* smas, size_t degree_of_parallelism) {
  SMADB_ASSIGN_OR_RETURN(storage::Schema schema,
                         AggResultSchema(table->schema(), group_by, aggs));
  const size_t dop = std::max<size_t>(1, degree_of_parallelism);
  return std::unique_ptr<ParallelScanAggr>(new ParallelScanAggr(
      table, std::move(pred), std::move(group_by), std::move(aggs), smas,
      std::move(schema), dop));
}

Status ParallelScanAggr::Init() {
  results_.clear();
  next_ = 0;
  stats_ = SmaScanStats();

  BucketSource source(table_, pred_, smas_);

  // Per-worker state: grader and reader hold page pins, the group table and
  // census are the worker's private partial results.
  struct WorkerState {
    std::unique_ptr<sma::BucketGrader> grader;
    BucketReader reader;
    GroupTable groups;
    SmaScanStats stats;
    std::vector<Value> key;
    WorkerState(storage::Table* table, const std::vector<AggSpec>* aggs,
                size_t key_width)
        : reader(table), groups(aggs), key(key_width) {}
  };
  std::vector<WorkerState> workers;
  workers.reserve(dop_);
  for (size_t w = 0; w < dop_; ++w) {
    workers.emplace_back(table_, &aggs_, group_by_.size());
    if (source.has_sma_support()) {
      workers.back().grader = source.NewGrader();
    }
  }

  SMADB_RETURN_NOT_OK(util::ThreadPool::Shared()->ParallelFor(
      0, source.num_buckets(), dop_,
      [&](size_t w, uint64_t b) -> Status {
        WorkerState& ws = workers[w];
        Grade g = Grade::kAmbivalent;
        if (ws.grader != nullptr) {
          SMADB_ASSIGN_OR_RETURN(g, ws.grader->GradeBucket(b));
        }
        ws.stats.Tally(g);
        if (g == Grade::kDisqualifies) return Status::OK();

        const auto [first, end] =
            table_->BucketPageRange(static_cast<uint32_t>(b));
        SMADB_RETURN_NOT_OK(ws.reader.Open(first, end));
        TupleRef t;
        while (true) {
          SMADB_ASSIGN_OR_RETURN(bool has, ws.reader.Next(&t));
          if (!has) break;
          // Qualifying buckets need no per-tuple predicate re-check (§3.1).
          if (g != Grade::kQualifies && !pred_->Eval(t)) continue;
          for (size_t i = 0; i < group_by_.size(); ++i) {
            ws.key[i] = t.GetValue(group_by_[i]);
          }
          ws.groups.Get(ws.key)->AddTuple(t);
        }
        ws.reader.Close();
        return Status::OK();
      }));

  GroupTable groups(&aggs_);
  for (WorkerState& ws : workers) {
    groups.MergeFrom(ws.groups);
    stats_.Merge(ws.stats);
  }
  SMADB_RETURN_NOT_OK(groups.Emit(&schema_, &results_));
  return Status::OK();
}

Result<bool> ParallelScanAggr::Next(TupleRef* out) {
  if (next_ >= results_.size()) return false;
  *out = results_[next_].AsRef();
  ++next_;
  return true;
}

}  // namespace smadb::exec
