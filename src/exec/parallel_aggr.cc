#include "exec/parallel_aggr.h"

#include <algorithm>

#include "exec/batch.h"
#include "exec/batch_aggregator.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace smadb::exec {

using sma::Grade;
using storage::TupleRef;
using util::Result;
using util::Status;
using util::Value;

Result<std::unique_ptr<ParallelScanAggr>> ParallelScanAggr::Make(
    storage::Table* table, expr::PredicatePtr pred,
    std::vector<size_t> group_by, std::vector<AggSpec> aggs,
    const sma::SmaSet* smas, size_t degree_of_parallelism,
    size_t batch_size) {
  SMADB_ASSIGN_OR_RETURN(storage::Schema schema,
                         AggResultSchema(table->schema(), group_by, aggs));
  const size_t dop = std::max<size_t>(1, degree_of_parallelism);
  return std::unique_ptr<ParallelScanAggr>(new ParallelScanAggr(
      table, std::move(pred), std::move(group_by), std::move(aggs), smas,
      std::move(schema), dop, batch_size));
}

Status ParallelScanAggr::Init() {
  obs::OpTimer timer(prof_);
  const Status s = InitImpl();
  if (prof_ != nullptr) {
    // Single feed point for the merged census — InitImpl merges every
    // worker's partial stats into stats_ exactly once even when a morsel
    // fails, so a degraded-ladder rerun (which registers a fresh node)
    // can never double-count buckets in the profile.
    prof_->AddBuckets(stats_.qualifying_buckets, stats_.disqualifying_buckets,
                      stats_.ambivalent_buckets);
    prof_->SetDetail(util::Format("groups=%zu dop=%zu mode=%s",
                                  results_.size(), dop_,
                                  batch_size_ > 0 ? "batch" : "row"));
    if (!s.ok()) prof_->MarkFailed(s.ToString());
  }
  return s;
}

Status ParallelScanAggr::InitImpl() {
  results_.clear();
  next_ = 0;
  stats_ = SmaScanStats();

  BucketSource source(table_, pred_, smas_);

  // Per-worker state: grader and reader hold page pins, the group table and
  // census are the worker's private partial results.
  struct WorkerState {
    std::unique_ptr<sma::BucketGrader> grader;
    BucketReader reader;
    GroupTable groups;
    SmaScanStats stats;
    std::vector<Value> key;
    // Vectorized morsels: batch + fused aggregator, flushed into `groups`
    // after the parallel region. Null in row mode.
    std::unique_ptr<BatchAggregator> aggregator;
    Batch batch;
    size_t charged = 0;  // bytes of `groups` already charged
    WorkerState(storage::Table* table, const std::vector<AggSpec>* aggs,
                size_t key_width)
        : reader(table), groups(aggs), key(key_width) {}
  };
  std::vector<WorkerState> workers;
  workers.reserve(dop_);
  for (size_t w = 0; w < dop_; ++w) {
    workers.emplace_back(table_, &aggs_, group_by_.size());
    WorkerState& ws = workers.back();
    // Unconditional, like the serial NextGraded path: even without SMA
    // support the grader still resolves trivial predicates (True grades
    // kQualifies, letting workers skip per-tuple checks), and the census
    // the workers tally stays identical across degrees of parallelism.
    ws.grader = source.NewGrader();
    // Every worker reads the same consistent append prefix the source
    // captured; pages appended mid-run stay invisible.
    ws.reader.set_snapshot(source.snapshot());
    if (batch_size_ > 0) {
      ws.aggregator =
          std::make_unique<BatchAggregator>(&table_->schema(), &group_by_,
                                            &aggs_);
      std::vector<bool> mask = ws.aggregator->RequiredColumns();
      pred_->AddReferencedColumns(&mask);
      ws.batch.Configure(&table_->schema(), batch_size_, std::move(mask));
      SMADB_RETURN_NOT_OK(
          ChargeMemory(ws.batch.cols.ApproxBytes(), "ColumnBatch"));
    }
  }

  // The cancel token reaches the claim loop itself: once tripped, no new
  // morsel is scheduled, and ParallelFor's internal latch guarantees every
  // worker has exited before we read their partial state below.
  const util::CancelToken* cancel =
      ctx_ != nullptr ? ctx_->cancel() : nullptr;
  const Status par = util::ThreadPool::Shared()->ParallelFor(
      0, source.num_buckets(), dop_,
      [&](size_t w, uint64_t b) -> Status {
        WorkerState& ws = workers[w];
        // Bucket-granular checkpoint inside the morsel, so a deadline that
        // expires mid-run is observed even between claim-loop checks.
        SMADB_RETURN_NOT_OK(CheckRuntime("ParallelScanAggr"));
        // GradeLatched = shared latch during grading + boundary-bucket
        // demotion, keeping the worker census identical to the serial path.
        SMADB_ASSIGN_OR_RETURN(Grade g,
                               source.GradeLatched(ws.grader.get(), b));
        ws.stats.Tally(g);
        if (g == Grade::kDisqualifies) return Status::OK();

        const auto [first, end] =
            table_->BucketPageRange(static_cast<uint32_t>(b));
        SMADB_RETURN_NOT_OK(ws.reader.Open(first, end));
        if (ws.aggregator != nullptr) {
          // Vectorized morsel: decode the bucket column-at-a-time and map
          // its grade onto the selection vector — qualifying buckets keep
          // the dense all-rows selection with no predicate evaluation.
          while (true) {
            ws.batch.Clear();
            SMADB_ASSIGN_OR_RETURN(bool has,
                                   ws.reader.NextBatch(&ws.batch.cols));
            if (!has) break;
            ws.batch.SelectAll();
            if (g != Grade::kQualifies) {
              pred_->EvalBatch(ws.batch.cols, &ws.batch.sel);
            }
            ws.aggregator->AddBatch(ws.batch);
          }
        } else {
          TupleRef t;
          while (true) {
            SMADB_ASSIGN_OR_RETURN(bool has, ws.reader.Next(&t));
            if (!has) break;
            // Qualifying buckets need no per-tuple predicate re-check
            // (§3.1).
            if (g != Grade::kQualifies && !pred_->Eval(t)) continue;
            for (size_t i = 0; i < group_by_.size(); ++i) {
              ws.key[i] = t.GetValue(group_by_[i]);
            }
            ws.groups.Get(ws.key)->AddTuple(t);
          }
        }
        ws.reader.Close();
        // Charge this bucket's group-table growth against the budget.
        if (ws.groups.approx_bytes() > ws.charged) {
          SMADB_RETURN_NOT_OK(ChargeMemory(
              ws.groups.approx_bytes() - ws.charged, "GroupTable"));
          ws.charged = ws.groups.approx_bytes();
        }
        return Status::OK();
      },
      cancel);

  // Per-worker censuses merge into stats_ exactly once, success or
  // failure — ParallelFor has drained, so worker state is quiescent. The
  // pre-fix code returned before this loop on a failed morsel, dropping
  // the partial census a degraded-ladder rerun would then re-count.
  for (WorkerState& ws : workers) {
    stats_.Merge(ws.stats);
    if (prof_ != nullptr) prof_->AddPagesRead(ws.reader.pages_opened());
  }
  SMADB_RETURN_NOT_OK(par);

  GroupTable groups(&aggs_);
  for (WorkerState& ws : workers) {
    if (ws.aggregator != nullptr) ws.aggregator->FlushInto(&ws.groups);
    const size_t before = groups.approx_bytes();
    groups.MergeFrom(ws.groups);
    // Merge-phase growth carries its own component name so a budget trip
    // here is attributable to the merge, not the scan.
    if (groups.approx_bytes() > before) {
      SMADB_RETURN_NOT_OK(
          ChargeMemory(groups.approx_bytes() - before, "GroupTable.merge"));
    }
  }
  SMADB_RETURN_NOT_OK(groups.Emit(&schema_, &results_));
  return Status::OK();
}

Result<bool> ParallelScanAggr::Next(TupleRef* out) {
  if (next_ >= results_.size()) return false;
  *out = results_[next_].AsRef();
  ++next_;
  if (prof_ != nullptr) prof_->AddRows(1);
  return true;
}

}  // namespace smadb::exec
