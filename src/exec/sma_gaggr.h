// SMA_GAggr (paper §3.3, Fig. 7): grouping-aggregation computed from SMAs.
//
// Selection SMAs partition the buckets; for qualifying buckets the queried
// aggregates are advanced straight from the aggregate SMA entries, only
// ambivalent buckets are fetched and aggregated tuple-by-tuple, and
// averages are finalized as sum/count in the last phase. The operator scans
// the relation and all SMA-files "in parallel" (one synchronized sequential
// pass).
//
// Matching rules: an aggregate SMA serves a query aggregate when function
// and argument expression match and the SMA's grouping *refines* the
// query's (query group-by columns ⊆ SMA group-by columns; SMA groups are
// projected onto query groups, cf. §2.3 "a SMA has to reflect the grouping
// of the query or a finer grouping"). A count(*) SMA with compatible
// grouping is always required: it carries group cardinalities (for count
// and avg results) and decides which groups have qualifying tuples at all.
//
// With degree_of_parallelism > 1 the buckets become morsels: workers claim
// them through the BucketSource counter, grade and aggregate into private
// GroupTables through private SMA-file cursors, and the partial tables are
// merged at the end — exact, because sum/count/min/max (and avg as
// sum+count) compose associatively and commutatively.

#ifndef SMADB_EXEC_SMA_GAGGR_H_
#define SMADB_EXEC_SMA_GAGGR_H_

#include <atomic>
#include <memory>
#include <vector>

#include "exec/aggregate.h"
#include "exec/bucket_source.h"
#include "exec/operator.h"
#include "expr/predicate.h"
#include "sma/grade.h"
#include "storage/table.h"

namespace smadb::exec {

/// Experiment knobs; defaults are production behaviour.
struct SmaGAggrOptions {
  /// Demotes this fraction of buckets to ambivalent after grading
  /// (deterministically by bucket hash). Used by the Fig. 5 reproduction to
  /// control "the percentage of buckets that have to be investigated";
  /// results stay correct because ambivalent processing re-evaluates the
  /// predicate per tuple.
  double force_ambivalent_fraction = 0.0;
  uint64_t force_seed = 0x5eed;
  /// Worker count for the morsel-parallel path; 1 = serial (the paper's
  /// single synchronized pass, bit-identical to the pre-parallel engine).
  size_t degree_of_parallelism = 1;
  /// Rows per batch for ambivalent-bucket processing; > 0 switches those
  /// buckets to the vectorized path (column decode + EvalBatch +
  /// BatchAggregator kernels), 0 keeps tuple-at-a-time. Qualifying buckets
  /// always read SMA entries only; results are identical either way.
  size_t batch_size = 0;
  /// Degraded SMA-only mode (the bottom rung of the planner's degradation
  /// ladder, DESIGN.md §10): ambivalent buckets are *skipped* instead of
  /// fetched, so the answer covers qualifying buckets only. The result is a
  /// lower bound, NOT exact — callers must surface the partial marker
  /// (buckets_skipped() reports how many buckets went uninspected).
  bool sma_only = false;
};

/// Per-worker state of the vectorized ambivalent path (defined in the .cc).
struct SmaGAggrBatchState;

class SmaGAggr final : public Operator {
 public:
  /// Binds the query (pred / group_by / aggs over `table`) against `smas`.
  /// Fails with NotSupported when some aggregate has no matching SMA — the
  /// planner then falls back to GAggr over SmaScan.
  static util::Result<std::unique_ptr<SmaGAggr>> Make(
      storage::Table* table, expr::PredicatePtr pred,
      std::vector<size_t> group_by, std::vector<AggSpec> aggs,
      const sma::SmaSet* smas, SmaGAggrOptions options = {});

  const storage::Schema& output_schema() const override { return schema_; }

  /// Pipeline breaker: "Within its init function, the result is computed."
  util::Status Init() override;

  /// "The next function then merely returns one result after another."
  util::Result<bool> Next(storage::TupleRef* out) override;

  void BindContext(util::QueryContext* ctx) override {
    Operator::BindContext(ctx);
    BindProfile("SmaGAggr");
  }

  const SmaScanStats& stats() const { return stats_; }
  size_t num_groups() const { return results_.size(); }

  /// Ambivalent buckets left uninspected by sma_only mode (0 otherwise).
  uint64_t buckets_skipped() const {
    return buckets_skipped_.load(std::memory_order_relaxed);
  }

 private:
  /// One aggregate's SMA source: the SMA and each SMA group's key projected
  /// onto the query's group-by columns. Immutable after Make — shared
  /// read-only by all workers.
  struct AggBinding {
    const sma::Sma* sma = nullptr;
    std::vector<std::vector<util::Value>> result_keys;
  };

  /// Per-worker SMA-file cursors (cursors pin pages; one set per thread,
  /// mirroring bindings_ + count_binding_).
  struct BindingCursors {
    std::vector<sma::SmaFile::Cursor> count;
    std::vector<std::vector<sma::SmaFile::Cursor>> per_agg;
  };

  SmaGAggr(storage::Table* table, expr::PredicatePtr pred,
           std::vector<size_t> group_by, std::vector<AggSpec> aggs,
           const sma::SmaSet* smas, storage::Schema schema,
           SmaGAggrOptions options)
      : table_(table),
        pred_(std::move(pred)),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)),
        smas_(smas),
        schema_(std::move(schema)),
        options_(options) {}

  /// Finds a SMA for (func, arg signature) whose grouping refines the
  /// query's; builds the binding. Null sma on no match.
  AggBinding BindAggregate(sma::AggFunc func, const expr::Expr* arg) const;

  BindingCursors MakeCursors() const;

  /// Applies coverage and the demotion knob to a raw grade (thread-safe).
  sma::Grade EffectiveGrade(sma::Grade g, uint64_t b) const;

  /// Init minus the profile feed: Init wraps this so the final census in
  /// stats_ reaches the profile node exactly once on every path — success,
  /// mid-run failure, and the degraded sma_only rung alike.
  util::Status InitImpl();

  /// One bucket's phase-2 work, dispatched on its grade. `batch_state` is
  /// the worker's vectorized ambivalent path, or null for tuple-at-a-time.
  util::Status ProcessBucket(sma::Grade g, uint64_t b, GroupTable* groups,
                             BindingCursors* cursors, SmaScanStats* stats,
                             SmaGAggrBatchState* batch_state);
  util::Status ProcessQualifying(GroupTable* groups, BindingCursors* cursors,
                                 uint64_t b);
  util::Status ProcessAmbivalent(GroupTable* groups, uint64_t b,
                                 SmaGAggrBatchState* batch_state);

  storage::Table* table_;
  expr::PredicatePtr pred_;
  std::vector<size_t> group_by_;
  std::vector<AggSpec> aggs_;
  const sma::SmaSet* smas_;
  storage::Schema schema_;
  SmaGAggrOptions options_;

  // One binding per aggregate (avg binds its sum SMA; count binds null and
  // rides on count_binding_), plus the mandatory count(*) binding.
  std::vector<AggBinding> bindings_;
  AggBinding count_binding_;
  uint64_t covered_buckets_ = 0;  // min SMA coverage across bindings

  std::vector<storage::TupleBuffer> results_;
  size_t next_ = 0;
  SmaScanStats stats_;
  // The consistent append prefix this execution runs against, captured by
  // InitImpl's BucketSource. Ambivalent readers clamp to it; qualifying
  // buckets answer from SMA entries under the bucket's shared latch.
  storage::TableSnapshot snapshot_;
  // Atomic: bumped from parallel workers in sma_only mode.
  std::atomic<uint64_t> buckets_skipped_{0};
};

}  // namespace smadb::exec

#endif  // SMADB_EXEC_SMA_GAGGR_H_
