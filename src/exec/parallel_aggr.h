// ParallelScanAggr: morsel-parallel scan + grouping-aggregation.
//
// Fuses GAggr over TableScan / SMA_Scan into one operator whose unit of
// work is the bucket (§2.1: physically consecutive pages). Workers claim
// buckets through the BucketSource counter, grade them against the SMAs
// (when present), fetch only qualifying/ambivalent buckets through private
// BucketReaders, and aggregate into private GroupTables; the partial tables
// are merged at the end. The merge is exact — sum/count/min/max compose
// associatively and commutatively, averages are finalized from the merged
// sum and count — so the result equals the serial GAggr∘Scan pipeline for
// every degree of parallelism.

#ifndef SMADB_EXEC_PARALLEL_AGGR_H_
#define SMADB_EXEC_PARALLEL_AGGR_H_

#include <memory>
#include <vector>

#include "exec/aggregate.h"
#include "exec/bucket_source.h"
#include "exec/operator.h"
#include "expr/predicate.h"
#include "storage/table.h"

namespace smadb::exec {

class ParallelScanAggr final : public Operator {
 public:
  /// Groups `table` on `group_by` under `pred` and computes `aggs`. `smas`
  /// may be null: the operator then degenerates to a parallel full scan
  /// (every bucket ambivalent), which is the parallel form of
  /// GAggr∘TableScan; with SMAs it parallelizes GAggr∘SMA_Scan.
  ///
  /// `batch_size` > 0 makes every morsel carry batches: workers decode
  /// buckets column-at-a-time, map the bucket grade onto the selection
  /// vector (qualifying = dense all-rows, no predicate evaluation), and
  /// aggregate through the fused BatchAggregator kernels. 0 keeps the
  /// tuple-at-a-time worker loop. Results are identical.
  static util::Result<std::unique_ptr<ParallelScanAggr>> Make(
      storage::Table* table, expr::PredicatePtr pred,
      std::vector<size_t> group_by, std::vector<AggSpec> aggs,
      const sma::SmaSet* smas, size_t degree_of_parallelism,
      size_t batch_size = 0);

  const storage::Schema& output_schema() const override { return schema_; }

  /// Pipeline breaker: the whole parallel aggregation runs here.
  util::Status Init() override;

  util::Result<bool> Next(storage::TupleRef* out) override;

  /// Merged bucket census across all workers (equals the serial census).
  const SmaScanStats& stats() const { return stats_; }
  size_t num_groups() const { return results_.size(); }
  size_t degree_of_parallelism() const { return dop_; }

  void BindContext(util::QueryContext* ctx) override {
    Operator::BindContext(ctx);
    BindProfile("ParallelScanAggr");
  }

 private:
  /// Init minus the profile feed; Init wraps this so the merged census
  /// reaches the profile node exactly once, success or failure.
  util::Status InitImpl();

  ParallelScanAggr(storage::Table* table, expr::PredicatePtr pred,
                   std::vector<size_t> group_by, std::vector<AggSpec> aggs,
                   const sma::SmaSet* smas, storage::Schema schema,
                   size_t dop, size_t batch_size)
      : table_(table),
        pred_(std::move(pred)),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)),
        smas_(smas),
        schema_(std::move(schema)),
        dop_(dop),
        batch_size_(batch_size) {}

  storage::Table* table_;
  expr::PredicatePtr pred_;
  std::vector<size_t> group_by_;
  std::vector<AggSpec> aggs_;
  const sma::SmaSet* smas_;
  storage::Schema schema_;
  size_t dop_;
  size_t batch_size_;

  std::vector<storage::TupleBuffer> results_;
  size_t next_ = 0;
  SmaScanStats stats_;
};

}  // namespace smadb::exec

#endif  // SMADB_EXEC_PARALLEL_AGGR_H_
