#include "exec/batch_aggregator.h"

#include <cstring>
#include <limits>

namespace smadb::exec {

using storage::SelVector;
using util::TypeId;
using util::Value;

namespace {

// Serialized width of one group-by column inside the raw key: integral
// family and doubles widen to 8 bytes, strings keep their capacity.
uint16_t RawKeyBytes(const storage::Field& f) {
  return f.type == TypeId::kString ? f.capacity : 8;
}

}  // namespace

BatchAggregator::BatchAggregator(const storage::Schema* input,
                                 const std::vector<size_t>* group_by,
                                 const std::vector<AggSpec>* aggs)
    : input_(input), group_by_(group_by), aggs_(aggs) {
  key_bytes_.reserve(group_by->size());
  for (size_t col : *group_by) {
    const uint16_t b = RawKeyBytes(input->field(col));
    key_bytes_.push_back(b);
    key_width_ += b;
  }
  key_ptrs_.resize(group_by->size());
  key_scratch_.resize(key_width_);
}

std::vector<bool> BatchAggregator::RequiredColumns() const {
  std::vector<bool> mask(input_->num_fields(), false);
  for (size_t col : *group_by_) mask[col] = true;
  for (const AggSpec& a : *aggs_) {
    if (a.arg == nullptr) continue;
    for (size_t c = 0; c < input_->num_fields(); ++c) {
      if (a.arg->ReferencesColumn(c)) mask[c] = true;
    }
  }
  return mask;
}

BatchAggregator::Group BatchAggregator::MakeGroup() const {
  Group g;
  g.acc.resize(aggs_->size(), 0);
  for (size_t i = 0; i < aggs_->size(); ++i) {
    switch ((*aggs_)[i].kind) {
      case AggKind::kMin:
        g.acc[i] = std::numeric_limits<int64_t>::max();
        break;
      case AggKind::kMax:
        g.acc[i] = std::numeric_limits<int64_t>::min();
        break;
      default:
        break;  // sums/counts start at the additive identity
    }
  }
  return g;
}

void BatchAggregator::BuildKey(size_t r) {
  char* p = key_scratch_.data();
  for (size_t i = 0; i < key_ptrs_.size(); ++i) {
    const KeyPtr& kp = key_ptrs_[i];
    if (kp.i64 != nullptr) {
      std::memcpy(p, &kp.i64[r], sizeof(int64_t));
    } else if (kp.f64 != nullptr) {
      std::memcpy(p, &kp.f64[r], sizeof(double));
    } else {
      std::memcpy(p, kp.str + r * static_cast<size_t>(kp.bytes), kp.bytes);
    }
    p += kp.bytes;
  }
}

void BatchAggregator::AddBatch(const Batch& batch) {
  const SelVector& sel = batch.sel;
  const size_t n = sel.count();
  if (n == 0) return;

  // Hoist column base pointers (and their DCHECKs) out of the row loops.
  for (size_t i = 0; i < group_by_->size(); ++i) {
    const size_t col = (*group_by_)[i];
    KeyPtr& kp = key_ptrs_[i];
    kp = KeyPtr{};
    kp.bytes = key_bytes_[i];
    switch (input_->field(col).type) {
      case TypeId::kDouble:
        kp.f64 = batch.cols.Doubles(col);
        break;
      case TypeId::kString:
        kp.str = batch.cols.StringData(col);
        break;
      default:
        kp.i64 = batch.cols.Ints(col);
        break;
    }
  }

  // Pass 1: resolve each selected row's group id. The last-key cache makes
  // clustered input (the paper's §2.2 setting) a pointer compare per row.
  row_gids_.resize(n);
  int64_t last_gid = -1;
  for (size_t k = 0; k < n; ++k) {
    BuildKey(sel.row(k));
    uint32_t gid;
    if (last_gid >= 0 &&
        key_scratch_ == keys_[static_cast<size_t>(last_gid)]) {
      gid = static_cast<uint32_t>(last_gid);
    } else {
      auto [it, inserted] =
          gids_.try_emplace(key_scratch_, static_cast<uint32_t>(keys_.size()));
      if (inserted) {
        keys_.push_back(key_scratch_);
        groups_.push_back(MakeGroup());
      }
      gid = it->second;
      last_gid = gid;
    }
    row_gids_[k] = gid;
    ++groups_[gid].rows;
  }

  // Pass 2: one fused accumulate kernel per aggregate over the argument
  // vector (evaluated once for all selected rows).
  for (size_t i = 0; i < aggs_->size(); ++i) {
    const AggSpec& a = (*aggs_)[i];
    if (a.kind == AggKind::kCount) continue;  // rows carries it
    vals_.resize(n);
    a.arg->EvalIntBatch(batch.cols, sel, vals_.data());
    switch (a.kind) {
      case AggKind::kSum:
      case AggKind::kAvg:
        for (size_t k = 0; k < n; ++k) {
          groups_[row_gids_[k]].acc[i] += vals_[k];
        }
        break;
      case AggKind::kMin:
        for (size_t k = 0; k < n; ++k) {
          int64_t& acc = groups_[row_gids_[k]].acc[i];
          if (vals_[k] < acc) acc = vals_[k];
        }
        break;
      case AggKind::kMax:
        for (size_t k = 0; k < n; ++k) {
          int64_t& acc = groups_[row_gids_[k]].acc[i];
          if (vals_[k] > acc) acc = vals_[k];
        }
        break;
      case AggKind::kCount:
        break;
    }
  }
}

void BatchAggregator::DecodeKey(const std::string& raw,
                                std::vector<Value>* key) const {
  // Reconstructs exactly the Values TupleRef::GetValue yields, so group
  // keys serialize identically on both paths.
  const char* p = raw.data();
  for (size_t i = 0; i < group_by_->size(); ++i) {
    const storage::Field& f = input_->field((*group_by_)[i]);
    switch (f.type) {
      case TypeId::kInt32: {
        int64_t v;
        std::memcpy(&v, p, sizeof(v));
        (*key)[i] = Value::Int32(static_cast<int32_t>(v));
        break;
      }
      case TypeId::kInt64: {
        int64_t v;
        std::memcpy(&v, p, sizeof(v));
        (*key)[i] = Value::Int64(v);
        break;
      }
      case TypeId::kDate: {
        int64_t v;
        std::memcpy(&v, p, sizeof(v));
        (*key)[i] = Value::MakeDate(util::Date(static_cast<int32_t>(v)));
        break;
      }
      case TypeId::kDecimal: {
        int64_t v;
        std::memcpy(&v, p, sizeof(v));
        (*key)[i] = Value::MakeDecimal(util::Decimal(v));
        break;
      }
      case TypeId::kDouble: {
        double v;
        std::memcpy(&v, p, sizeof(v));
        (*key)[i] = Value::MakeDouble(v);
        break;
      }
      case TypeId::kString: {
        (*key)[i] = Value::String(
            std::string(p, strnlen(p, key_bytes_[i])));
        break;
      }
    }
    p += key_bytes_[i];
  }
}

void BatchAggregator::FlushInto(GroupTable* table) {
  std::vector<Value> key(group_by_->size());
  for (size_t g = 0; g < groups_.size(); ++g) {
    const Group& grp = groups_[g];
    DecodeKey(keys_[g], &key);
    GroupState* gs = table->Get(key);
    gs->AddBucketCount(grp.rows);
    for (size_t i = 0; i < aggs_->size(); ++i) {
      if ((*aggs_)[i].kind == AggKind::kCount) continue;
      gs->AddSummary(i, grp.acc[i]);
    }
  }
  gids_.clear();
  keys_.clear();
  groups_.clear();
}

}  // namespace smadb::exec
