#include "exec/sma_scan.h"

namespace smadb::exec {

using sma::Grade;
using storage::TupleRef;
using util::Result;
using util::Status;

Status SmaScan::Init() {
  grader_ = sma::BucketGrader::Create(pred_, smas_);
  curr_bucket_ = -1;
  done_ = false;
  stats_ = SmaScanStats();
  return GetBucket();
}

Status SmaScan::GetBucket() {
  guard_.Release();
  const uint64_t buckets = table_->num_buckets();
  // "do { advance currBucketNo; advance all smas; currGrade = grade(...); }
  //  while (currGrade != qualifies and currGrade != ambivalent)"
  while (true) {
    ++curr_bucket_;
    if (static_cast<uint64_t>(curr_bucket_) >= buckets) {
      done_ = true;
      return Status::OK();
    }
    SMADB_ASSIGN_OR_RETURN(
        curr_grade_, grader_->GradeBucket(static_cast<uint64_t>(curr_bucket_)));
    switch (curr_grade_) {
      case Grade::kQualifies:
        ++stats_.qualifying_buckets;
        break;
      case Grade::kAmbivalent:
        ++stats_.ambivalent_buckets;
        break;
      case Grade::kDisqualifies:
        ++stats_.disqualifying_buckets;
        continue;  // skip without touching the bucket
    }
    break;
  }
  // "read bucket currBucketNo" — position on its first page.
  const auto [first, end] =
      table_->BucketPageRange(static_cast<uint32_t>(curr_bucket_));
  page_ = first;
  page_end_ = end;
  slot_ = 0;
  SMADB_ASSIGN_OR_RETURN(guard_, table_->FetchPage(page_));
  page_count_ = storage::Table::PageTupleCount(*guard_.page());
  return Status::OK();
}

Result<bool> SmaScan::Next(TupleRef* out) {
  while (!done_) {
    if (slot_ >= page_count_) {
      if (page_ + 1 < page_end_) {
        // Next page of the same bucket.
        ++page_;
        slot_ = 0;
        SMADB_ASSIGN_OR_RETURN(guard_, table_->FetchPage(page_));
        page_count_ = storage::Table::PageTupleCount(*guard_.page());
      } else {
        SMADB_RETURN_NOT_OK(GetBucket());
      }
      continue;
    }
    if (storage::Table::PageSlotDeleted(*guard_.page(), slot_)) {
      ++slot_;
      continue;
    }
    const TupleRef t = table_->PageTuple(*guard_.page(), slot_);
    ++slot_;
    // Qualifying buckets bypass predicate evaluation entirely.
    if (curr_grade_ == Grade::kQualifies || pred_->Eval(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

}  // namespace smadb::exec
