#include "exec/sma_scan.h"

namespace smadb::exec {

using sma::Grade;
using storage::TupleRef;
using util::Result;
using util::Status;

Status SmaScan::Init() {
  obs::OpTimer timer(prof_);
  source_.Reset();
  reader_.Close();
  reader_.set_snapshot(source_.snapshot());
  done_ = false;
  stats_ = SmaScanStats();
  return GetBucket();
}

Status SmaScan::GetBucket() {
  // "do { advance currBucketNo; advance all smas; currGrade = grade(...); }
  //  while (currGrade != qualifies and currGrade != ambivalent)"
  BucketUnit unit;
  while (true) {
    // Bucket-granular cooperative checkpoint: covers both the skip loop
    // over disqualifying buckets and every bucket actually fetched.
    SMADB_RETURN_NOT_OK(CheckRuntime("SmaScan"));
    SMADB_ASSIGN_OR_RETURN(bool has, source_.NextGraded(&unit));
    if (!has) {
      done_ = true;
      return Status::OK();
    }
    stats_.Tally(unit.grade);
    if (prof_ != nullptr) {
      // One call per bucket, mirroring stats_ — the grade ground truth the
      // explain-analyze census tests compare against.
      prof_->AddBuckets(unit.grade == Grade::kQualifies,
                        unit.grade == Grade::kDisqualifies,
                        unit.grade == Grade::kAmbivalent);
    }
    if (unit.grade != Grade::kDisqualifies) break;  // skip without touching
  }
  curr_grade_ = unit.grade;
  // "read bucket currBucketNo" — position on its first page.
  const auto [first, end] = source_.table()->BucketPageRange(
      static_cast<uint32_t>(unit.bucket));
  return reader_.Open(first, end);
}

Result<bool> SmaScan::Next(TupleRef* out) {
  obs::OpTimer timer(prof_);
  while (!done_) {
    SMADB_ASSIGN_OR_RETURN(bool has, reader_.Next(out));
    if (!has) {
      SMADB_RETURN_NOT_OK(GetBucket());
      continue;
    }
    // Qualifying buckets bypass predicate evaluation entirely.
    if (curr_grade_ == Grade::kQualifies || source_.pred()->Eval(*out)) {
      if (prof_ != nullptr) prof_->AddRows(1);
      return true;
    }
  }
  FeedPages();
  return false;
}

Result<bool> SmaScan::NextBatch(Batch* out) {
  obs::OpTimer timer(prof_);
  while (!done_) {
    out->Clear();
    // One bucket per batch refill: the reader is Open()ed on exactly one
    // bucket's page range, so a batch never mixes grades.
    SMADB_ASSIGN_OR_RETURN(bool has, reader_.NextBatch(&out->cols));
    if (!has) {
      SMADB_RETURN_NOT_OK(GetBucket());
      continue;
    }
    out->SelectAll();
    // Grade -> selection: qualifying keeps the dense all-rows selection
    // untouched (§3.2's "no predicate evaluation"); ambivalent refines it.
    if (curr_grade_ != Grade::kQualifies) {
      source_.pred()->EvalBatch(out->cols, &out->sel);
    }
    if (prof_ != nullptr) {
      prof_->AddBatches(1);
      prof_->AddRows(out->sel.count());
      FeedPages();
    }
    return true;
  }
  FeedPages();
  return false;
}

}  // namespace smadb::exec
