#include "exec/bucket_source.h"

namespace smadb::exec {

using storage::TupleRef;
using util::Result;
using util::Status;

BucketSource::BucketSource(storage::Table* table, expr::PredicatePtr pred,
                           const sma::SmaSet* smas)
    : table_(table), pred_(std::move(pred)), smas_(smas) {
  Reset();
}

void BucketSource::Reset() {
  if (smas_ != nullptr) {
    grader_ = sma::BucketGrader::Create(pred_, smas_);
    has_sma_support_ = grader_->has_sma_support();
  } else {
    grader_.reset();
    has_sma_support_ = false;
  }
  serial_next_ = 0;
  claim_next_.store(0, std::memory_order_relaxed);
}

Result<bool> BucketSource::NextGraded(BucketUnit* out) {
  if (serial_next_ >= num_buckets()) return false;
  out->bucket = serial_next_++;
  if (grader_ == nullptr) {
    out->grade = sma::Grade::kAmbivalent;
    return true;
  }
  SMADB_ASSIGN_OR_RETURN(out->grade, grader_->GradeBucket(out->bucket));
  return true;
}

Status BucketReader::Open(uint32_t first_page, uint32_t end_page) {
  guard_.Release();
  page_ = first_page;
  page_end_ = end_page;
  slot_ = 0;
  page_count_ = 0;
  open_ = first_page < end_page;
  if (open_) {
    SMADB_ASSIGN_OR_RETURN(guard_, table_->FetchPage(page_));
    ++pages_opened_;
    page_count_ = storage::Table::PageTupleCount(*guard_.page());
  }
  return Status::OK();
}

Result<bool> BucketReader::Next(TupleRef* out) {
  while (open_) {
    if (slot_ >= page_count_) {
      if (page_ + 1 >= page_end_) {
        open_ = false;
        guard_.Release();
        break;
      }
      ++page_;
      slot_ = 0;
      SMADB_ASSIGN_OR_RETURN(guard_, table_->FetchPage(page_));
      ++pages_opened_;
      page_count_ = storage::Table::PageTupleCount(*guard_.page());
      continue;
    }
    if (storage::Table::PageSlotDeleted(*guard_.page(), slot_)) {
      ++slot_;
      continue;
    }
    *out = table_->PageTuple(*guard_.page(), slot_);
    ++slot_;
    return true;
  }
  return false;
}

Result<bool> BucketReader::NextBatch(storage::ColumnBatch* cols) {
  const size_t before = cols->num_rows();
  while (open_ && !cols->full()) {
    if (slot_ >= page_count_) {
      if (page_ + 1 >= page_end_) {
        open_ = false;
        guard_.Release();
        break;
      }
      ++page_;
      slot_ = 0;
      SMADB_ASSIGN_OR_RETURN(guard_, table_->FetchPage(page_));
      ++pages_opened_;
      page_count_ = storage::Table::PageTupleCount(*guard_.page());
      continue;
    }
    slot_ =
        cols->AppendFromPage(*table_, *guard_.page(), slot_, page_count_);
  }
  return cols->num_rows() > before;
}

}  // namespace smadb::exec
