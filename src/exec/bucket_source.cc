#include "exec/bucket_source.h"

#include <algorithm>

namespace smadb::exec {

using storage::TupleRef;
using util::Result;
using util::Status;

BucketSource::BucketSource(storage::Table* table, expr::PredicatePtr pred,
                           const sma::SmaSet* smas)
    : table_(table), pred_(std::move(pred)), smas_(smas) {
  Reset();
}

void BucketSource::Reset() {
  if (smas_ != nullptr) {
    grader_ = sma::BucketGrader::Create(pred_, smas_);
    has_sma_support_ = grader_->has_sma_support();
  } else {
    grader_.reset();
    has_sma_support_ = false;
  }
  // A re-executed operator sees a fresh consistent prefix.
  snapshot_ = table_->CaptureSnapshot();
  serial_next_ = 0;
  claim_next_.store(0, std::memory_order_relaxed);
}

Result<sma::Grade> BucketSource::GradeLatched(sma::BucketGrader* grader,
                                              uint64_t bucket) const {
  if (grader == nullptr) {
    return ApplySnapshot(bucket, sma::Grade::kAmbivalent);
  }
  auto latch = table_->latches()->LockShared(bucket);
  SMADB_ASSIGN_OR_RETURN(sma::Grade g, grader->GradeBucket(bucket));
  latch.Release();
  return ApplySnapshot(bucket, g);
}

Result<bool> BucketSource::NextGraded(BucketUnit* out) {
  if (serial_next_ >= num_buckets()) return false;
  out->bucket = serial_next_++;
  SMADB_ASSIGN_OR_RETURN(out->grade, GradeLatched(grader_.get(), out->bucket));
  return true;
}

Status BucketReader::Open(uint32_t first_page, uint32_t end_page) {
  Close();
  if (has_snapshot_) end_page = std::min(end_page, snapshot_.pages);
  page_ = first_page;
  page_end_ = end_page;
  slot_ = 0;
  page_count_ = 0;
  open_ = first_page < end_page;
  if (open_) SMADB_RETURN_NOT_OK(PinPage());
  return Status::OK();
}

Status BucketReader::PinPage() {
  const uint64_t bucket = table_->BucketOfPage(page_);
  if (!latch_.held() || latched_bucket_ != bucket) {
    // Coupling: release before acquiring so at most one latch is held (the
    // old and new bucket can share a shard, and shared_mutex is not
    // reentrant when a writer is queued).
    latch_.Release();
    latch_ = table_->latches()->LockShared(bucket);
    latched_bucket_ = bucket;
  }
  SMADB_ASSIGN_OR_RETURN(guard_, table_->FetchPage(page_));
  ++pages_opened_;
  uint16_t n = storage::Table::PageTupleCount(*guard_.page());
  if (has_snapshot_) n = snapshot_.VisibleSlots(page_, n);
  page_count_ = n;
  return Status::OK();
}

Result<bool> BucketReader::Next(TupleRef* out) {
  while (open_) {
    if (slot_ >= page_count_) {
      if (page_ + 1 >= page_end_) {
        open_ = false;
        Close();
        break;
      }
      ++page_;
      slot_ = 0;
      SMADB_RETURN_NOT_OK(PinPage());
      continue;
    }
    if (storage::Table::PageSlotDeleted(*guard_.page(), slot_)) {
      ++slot_;
      continue;
    }
    *out = table_->PageTuple(*guard_.page(), slot_);
    ++slot_;
    return true;
  }
  return false;
}

Result<bool> BucketReader::NextBatch(storage::ColumnBatch* cols) {
  const size_t before = cols->num_rows();
  while (open_ && !cols->full()) {
    if (slot_ >= page_count_) {
      if (page_ + 1 >= page_end_) {
        open_ = false;
        Close();
        break;
      }
      ++page_;
      slot_ = 0;
      SMADB_RETURN_NOT_OK(PinPage());
      continue;
    }
    slot_ =
        cols->AppendFromPage(*table_, *guard_.page(), slot_, page_count_);
  }
  return cols->num_rows() > before;
}

}  // namespace smadb::exec
