// Physical-algebra operator interface: the iterator concept of Graefe [7]
// the paper's SMA_Scan / SMA_GAggr plug into (Init / Next / implicit close
// via destructor), extended with a batch-at-a-time protocol (NextBatch)
// that operators adopt incrementally — see DESIGN.md §9.

#ifndef SMADB_EXEC_OPERATOR_H_
#define SMADB_EXEC_OPERATOR_H_

#include <vector>

#include "exec/batch.h"
#include "obs/profile.h"
#include "storage/schema.h"
#include "storage/tuple.h"
#include "util/query_context.h"
#include "util/status.h"

namespace smadb::exec {

/// Pull-based physical operator. Row usage:
///   op.Init();  while (op.Next(&t) yields true) consume(t);
/// Batch usage:
///   batch.Configure(&op.output_schema(), n, projection);
///   op.Init();  while (op.NextBatch(&batch) yields true) consume(batch);
/// Do not interleave Next and NextBatch on one instance between Init calls.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Schema of the tuples Next() produces.
  virtual const storage::Schema& output_schema() const = 0;

  /// Prepares the operator; pipeline breakers do their work here.
  virtual util::Status Init() = 0;

  /// Produces the next tuple into `*out`. The view stays valid until the
  /// following Next()/destruction. Returns false at end of stream.
  virtual util::Result<bool> Next(storage::TupleRef* out) = 0;

  /// Produces the next batch into `*out` (pre-Configured by the caller
  /// against output_schema()). Returns false at end of stream; true means
  /// rows were decoded — the selection may still be empty, in which case
  /// the consumer skips the batch and pulls again. Batch contents stay
  /// valid until the following NextBatch()/Init().
  ///
  /// The default adapter loops Next(), so every operator is batch-capable;
  /// operators with native batch paths (TableScan, SmaScan, Filter)
  /// override it to decode column-at-a-time and drive the predicate through
  /// selection vectors.
  virtual util::Result<bool> NextBatch(Batch* out) {
    out->Clear();
    storage::TupleRef t;
    while (!out->cols.full()) {
      SMADB_ASSIGN_OR_RETURN(bool has, Next(&t));
      if (!has) break;
      out->cols.AppendRow(t);
    }
    out->SelectAll();
    return out->num_rows() > 0;
  }

  /// Sets `mask[c]` for every column of output_schema() this operator reads
  /// while producing batches (e.g. a scan's predicate columns). Consumers
  /// union this into the projection they Configure batches with, so
  /// projection pushdown never starves the producer. Default: none.
  virtual void AddRequiredBatchColumns(std::vector<bool>* mask) const {
    (void)mask;
  }

  /// Binds the query's runtime governor (cancellation + deadline + memory
  /// budget, DESIGN.md §10). Operators with children must propagate the
  /// bind down the tree. Null (the default state) runs ungoverned; bind
  /// before Init().
  ///
  /// Overrides also register the operator's profile node (DESIGN.md §11):
  /// hold the ProfileScope from BindProfile across the children's
  /// BindContext calls so their nodes nest beneath this one.
  virtual void BindContext(util::QueryContext* ctx) { ctx_ = ctx; }

 protected:
  /// Registers this operator in the bound query's profile (no-op when the
  /// query is unprofiled) and returns the scope that makes it the parent
  /// of nodes registered while the scope lives. Call after setting ctx_.
  obs::ProfileScope BindProfile(const char* name) {
    return obs::ProfileScope(ctx_ != nullptr ? ctx_->profile() : nullptr,
                             name, &prof_);
  }

  /// Null-safe cooperative checkpoint; operators call this at bucket/batch
  /// granularity (never per tuple — one relaxed load plus a clock read).
  util::Status CheckRuntime(std::string_view where) const {
    return util::QueryContext::Check(ctx_, where);
  }

  /// Null-safe memory charge against the query budget.
  util::Status ChargeMemory(size_t bytes, std::string_view component) const {
    return util::QueryContext::Charge(ctx_, bytes, component);
  }

  /// Rows between checkpoints on row-at-a-time paths (roughly one page's
  /// worth, so row and batch modes observe cancellation equally fast).
  static constexpr size_t kRowsPerCheck = 512;

  util::QueryContext* ctx_ = nullptr;
  /// This operator's profile node; null unless the query runs under
  /// `explain analyze`. Feed with relaxed tallies, always null-guarded.
  obs::OperatorProfile* prof_ = nullptr;
};

}  // namespace smadb::exec

#endif  // SMADB_EXEC_OPERATOR_H_
