// Physical-algebra operator interface: the iterator concept of Graefe [7]
// the paper's SMA_Scan / SMA_GAggr plug into (Init / Next / implicit close
// via destructor).

#ifndef SMADB_EXEC_OPERATOR_H_
#define SMADB_EXEC_OPERATOR_H_

#include "storage/schema.h"
#include "storage/tuple.h"
#include "util/status.h"

namespace smadb::exec {

/// Pull-based physical operator. Usage:
///   op.Init();  while (op.Next(&t) yields true) consume(t);
class Operator {
 public:
  virtual ~Operator() = default;

  /// Schema of the tuples Next() produces.
  virtual const storage::Schema& output_schema() const = 0;

  /// Prepares the operator; pipeline breakers do their work here.
  virtual util::Status Init() = 0;

  /// Produces the next tuple into `*out`. The view stays valid until the
  /// following Next()/destruction. Returns false at end of stream.
  virtual util::Result<bool> Next(storage::TupleRef* out) = 0;
};

}  // namespace smadb::exec

#endif  // SMADB_EXEC_OPERATOR_H_
