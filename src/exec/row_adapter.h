// RowAdapter: batch -> row bridge (the inverse of Operator::NextBatch's
// default row -> batch adapter). Legacy tuple-at-a-time consumers keep
// working on top of a natively batched child: the adapter pulls batches,
// walks the selection vector, and re-materializes one tuple per Next().
// Mostly useful for tests and for pipelines whose head is batch-only.

#ifndef SMADB_EXEC_ROW_ADAPTER_H_
#define SMADB_EXEC_ROW_ADAPTER_H_

#include <memory>
#include <optional>
#include <utility>

#include "exec/batch.h"
#include "exec/operator.h"

namespace smadb::exec {

class RowAdapter final : public Operator {
 public:
  explicit RowAdapter(std::unique_ptr<Operator> child,
                      size_t batch_size = kDefaultBatchSize)
      : child_(std::move(child)), batch_size_(batch_size) {}

  const storage::Schema& output_schema() const override {
    return child_->output_schema();
  }

  util::Status Init() override {
    SMADB_RETURN_NOT_OK(child_->Init());
    // Full projection: the adapter re-materializes whole tuples.
    batch_.Configure(&child_->output_schema(), batch_size_);
    buf_.emplace(&child_->output_schema());
    pos_ = 0;
    done_ = false;
    return util::Status::OK();
  }

  /// The yielded view points into an owned buffer; it stays valid until the
  /// following Next() (same contract as every other operator).
  util::Result<bool> Next(storage::TupleRef* out) override {
    while (!done_ && pos_ >= batch_.sel.count()) {
      SMADB_ASSIGN_OR_RETURN(bool has, child_->NextBatch(&batch_));
      if (!has) done_ = true;
      pos_ = 0;
    }
    if (done_) return false;
    batch_.cols.MaterializeRow(batch_.sel.row(pos_), &*buf_);
    ++pos_;
    *out = buf_->AsRef();
    return true;
  }

  void BindContext(util::QueryContext* ctx) override {
    Operator::BindContext(ctx);
    child_->BindContext(ctx);
  }

 private:
  std::unique_ptr<Operator> child_;
  size_t batch_size_;
  Batch batch_;
  std::optional<storage::TupleBuffer> buf_;
  size_t pos_ = 0;
  bool done_ = false;
};

}  // namespace smadb::exec

#endif  // SMADB_EXEC_ROW_ADAPTER_H_
