#include "exec/table_scan.h"

namespace smadb::exec {

using storage::TupleRef;
using util::Result;
using util::Status;

Status TableScan::Init() {
  obs::OpTimer timer(prof_);
  rows_since_check_ = 0;
  // One contiguous page range: the snapshot's consistent append prefix
  // (concurrent appends past it stay invisible to this scan).
  const storage::TableSnapshot snap = table_->CaptureSnapshot();
  reader_.set_snapshot(snap);
  return reader_.Open(0, snap.pages);
}

Result<bool> TableScan::Next(TupleRef* out) {
  obs::OpTimer timer(prof_);
  while (true) {
    if (++rows_since_check_ >= kRowsPerCheck) {
      rows_since_check_ = 0;
      SMADB_RETURN_NOT_OK(CheckRuntime("TableScan"));
    }
    SMADB_ASSIGN_OR_RETURN(bool has, reader_.Next(out));
    if (!has) {
      FeedPages();
      return false;
    }
    if (pred_->Eval(*out)) {
      if (prof_ != nullptr) prof_->AddRows(1);
      return true;
    }
  }
}

Result<bool> TableScan::NextBatch(Batch* out) {
  obs::OpTimer timer(prof_);
  SMADB_RETURN_NOT_OK(CheckRuntime("TableScan"));
  out->Clear();
  SMADB_ASSIGN_OR_RETURN(bool has, reader_.NextBatch(&out->cols));
  if (!has) {
    FeedPages();
    return false;
  }
  out->SelectAll();
  pred_->EvalBatch(out->cols, &out->sel);
  if (prof_ != nullptr) {
    prof_->AddBatches(1);
    prof_->AddRows(out->sel.count());
    FeedPages();
  }
  return true;
}

}  // namespace smadb::exec
