#include "exec/table_scan.h"

namespace smadb::exec {

using storage::TupleRef;
using util::Result;
using util::Status;

Status TableScan::Init() {
  page_ = 0;
  slot_ = 0;
  page_count_ = 0;
  done_ = table_->num_pages() == 0;
  if (!done_) {
    SMADB_ASSIGN_OR_RETURN(guard_, table_->FetchPage(0));
    page_count_ = storage::Table::PageTupleCount(*guard_.page());
  }
  return Status::OK();
}

Result<bool> TableScan::Next(TupleRef* out) {
  while (!done_) {
    if (slot_ >= page_count_) {
      // Advance to the next page.
      if (page_ + 1 >= table_->num_pages()) {
        done_ = true;
        guard_.Release();
        break;
      }
      ++page_;
      slot_ = 0;
      SMADB_ASSIGN_OR_RETURN(guard_, table_->FetchPage(page_));
      page_count_ = storage::Table::PageTupleCount(*guard_.page());
      continue;
    }
    if (storage::Table::PageSlotDeleted(*guard_.page(), slot_)) {
      ++slot_;
      continue;
    }
    const TupleRef t = table_->PageTuple(*guard_.page(), slot_);
    ++slot_;
    if (pred_->Eval(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

}  // namespace smadb::exec
