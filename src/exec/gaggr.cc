#include "exec/gaggr.h"

#include "exec/batch_aggregator.h"
#include "util/string_util.h"

namespace smadb::exec {

using storage::TupleRef;
using util::Result;
using util::Status;
using util::Value;

Result<std::unique_ptr<GAggr>> GAggr::Make(std::unique_ptr<Operator> child,
                                           std::vector<size_t> group_by,
                                           std::vector<AggSpec> aggs,
                                           size_t batch_size) {
  SMADB_ASSIGN_OR_RETURN(
      storage::Schema schema,
      AggResultSchema(child->output_schema(), group_by, aggs));
  return std::unique_ptr<GAggr>(new GAggr(std::move(child),
                                          std::move(group_by),
                                          std::move(aggs),
                                          std::move(schema), batch_size));
}

Status GAggr::Init() {
  obs::OpTimer timer(prof_);
  results_.clear();
  next_ = 0;
  SMADB_RETURN_NOT_OK(child_->Init());

  GroupTable groups(&aggs_);
  // Charges against the query budget are deltas of the table's running
  // footprint estimate, so repeated charges never double-count.
  size_t charged = 0;
  auto charge_groups = [&]() -> Status {
    if (groups.approx_bytes() > charged) {
      SMADB_RETURN_NOT_OK(
          ChargeMemory(groups.approx_bytes() - charged, "GroupTable"));
      charged = groups.approx_bytes();
    }
    return Status::OK();
  };
  if (batch_size_ > 0) {
    // Vectorized consumption: project only what grouping, aggregation, and
    // the child's own predicates read, then run fused kernels per batch.
    BatchAggregator aggregator(&child_->output_schema(), &group_by_, &aggs_);
    std::vector<bool> mask = aggregator.RequiredColumns();
    child_->AddRequiredBatchColumns(&mask);
    Batch batch;
    batch.Configure(&child_->output_schema(), batch_size_, std::move(mask));
    SMADB_RETURN_NOT_OK(ChargeMemory(batch.cols.ApproxBytes(), "ColumnBatch"));
    while (true) {
      SMADB_RETURN_NOT_OK(CheckRuntime("GAggr"));
      SMADB_ASSIGN_OR_RETURN(bool has, child_->NextBatch(&batch));
      if (!has) break;
      aggregator.AddBatch(batch);
    }
    aggregator.FlushInto(&groups);
    SMADB_RETURN_NOT_OK(charge_groups());
  } else {
    std::vector<Value> key(group_by_.size());
    TupleRef t;
    size_t rows_since_check = 0;
    while (true) {
      if (++rows_since_check >= kRowsPerCheck) {
        rows_since_check = 0;
        SMADB_RETURN_NOT_OK(CheckRuntime("GAggr"));
        SMADB_RETURN_NOT_OK(charge_groups());
      }
      SMADB_ASSIGN_OR_RETURN(bool has, child_->Next(&t));
      if (!has) break;
      for (size_t i = 0; i < group_by_.size(); ++i) {
        key[i] = t.GetValue(group_by_[i]);
      }
      groups.Get(key)->AddTuple(t);
    }
    SMADB_RETURN_NOT_OK(charge_groups());
  }
  SMADB_RETURN_NOT_OK(groups.Emit(&schema_, &results_));
  if (prof_ != nullptr) {
    prof_->NotePeakBytes(charged);
    prof_->SetDetail(util::Format("groups=%zu mode=%s", results_.size(),
                                  batch_size_ > 0 ? "batch" : "row"));
  }
  return Status::OK();
}

Result<bool> GAggr::Next(TupleRef* out) {
  if (next_ >= results_.size()) return false;
  *out = results_[next_].AsRef();
  ++next_;
  if (prof_ != nullptr) prof_->AddRows(1);
  return true;
}

}  // namespace smadb::exec
