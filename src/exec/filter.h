// Filter: per-tuple predicate evaluation over any child operator. Used for
// post-join selections, where bucket-level SMA pruning no longer applies.
//
// Copying semantics: Filter yields the child's TupleRef unchanged, without
// copying the tuple. The Operator contract guarantees a child's view stays
// valid until the child's following Next(); Filter only advances the child
// inside its own Next(), so the yielded view likewise stays valid until the
// *next* Filter::Next() (or destruction) — callers may hold the ref across
// unrelated work in between, but must copy the tuple before pulling again.
// (Regression-tested in vector_test.cc: FilterRefStaysValidAcrossCalls.)

#ifndef SMADB_EXEC_FILTER_H_
#define SMADB_EXEC_FILTER_H_

#include <memory>

#include "exec/operator.h"
#include "expr/predicate.h"

namespace smadb::exec {

class Filter final : public Operator {
 public:
  Filter(std::unique_ptr<Operator> child, expr::PredicatePtr pred)
      : child_(std::move(child)), pred_(std::move(pred)) {}

  const storage::Schema& output_schema() const override {
    return child_->output_schema();
  }

  util::Status Init() override { return child_->Init(); }

  util::Result<bool> Next(storage::TupleRef* out) override {
    storage::TupleRef t;
    while (true) {
      SMADB_ASSIGN_OR_RETURN(bool has, child_->Next(&t));
      if (!has) return false;
      if (pred_->Eval(t)) {
        *out = t;
        if (prof_ != nullptr) prof_->AddRows(1);
        return true;
      }
    }
  }

  /// Native batch path: pulls the child's batch and refines its selection
  /// vector in place — no copy, no re-decode.
  util::Result<bool> NextBatch(Batch* out) override {
    SMADB_ASSIGN_OR_RETURN(bool has, child_->NextBatch(out));
    if (!has) return false;
    if (!out->sel.empty()) pred_->EvalBatch(out->cols, &out->sel);
    if (prof_ != nullptr) {
      prof_->AddBatches(1);
      prof_->AddRows(out->sel.count());
    }
    return true;
  }

  /// The batch passes through from the child, so the projection must cover
  /// both this predicate's columns and whatever the child itself reads.
  void AddRequiredBatchColumns(std::vector<bool>* mask) const override {
    pred_->AddReferencedColumns(mask);
    child_->AddRequiredBatchColumns(mask);
  }

  void BindContext(util::QueryContext* ctx) override {
    Operator::BindContext(ctx);
    auto scope = BindProfile("Filter");
    child_->BindContext(ctx);
  }

 private:
  std::unique_ptr<Operator> child_;
  expr::PredicatePtr pred_;
};

}  // namespace smadb::exec

#endif  // SMADB_EXEC_FILTER_H_
