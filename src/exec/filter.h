// Filter: per-tuple predicate evaluation over any child operator. Used for
// post-join selections, where bucket-level SMA pruning no longer applies.

#ifndef SMADB_EXEC_FILTER_H_
#define SMADB_EXEC_FILTER_H_

#include <memory>

#include "exec/operator.h"
#include "expr/predicate.h"

namespace smadb::exec {

class Filter final : public Operator {
 public:
  Filter(std::unique_ptr<Operator> child, expr::PredicatePtr pred)
      : child_(std::move(child)), pred_(std::move(pred)) {}

  const storage::Schema& output_schema() const override {
    return child_->output_schema();
  }

  util::Status Init() override { return child_->Init(); }

  util::Result<bool> Next(storage::TupleRef* out) override {
    storage::TupleRef t;
    while (true) {
      SMADB_ASSIGN_OR_RETURN(bool has, child_->Next(&t));
      if (!has) return false;
      if (pred_->Eval(t)) {
        *out = t;
        return true;
      }
    }
  }

 private:
  std::unique_ptr<Operator> child_;
  expr::PredicatePtr pred_;
};

}  // namespace smadb::exec

#endif  // SMADB_EXEC_FILTER_H_
