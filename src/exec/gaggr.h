// GAggr: grouping with aggregation over any child operator (Dayal's GAggr
// [4]) — hash grouping, pipeline breaker.

#ifndef SMADB_EXEC_GAGGR_H_
#define SMADB_EXEC_GAGGR_H_

#include <memory>
#include <vector>

#include "exec/aggregate.h"
#include "exec/operator.h"

namespace smadb::exec {

class GAggr final : public Operator {
 public:
  /// Groups the child's output on `group_by` (child-schema ordinals) and
  /// computes `aggs`. Construction validates via Make().
  ///
  /// `batch_size` > 0 consumes the child through NextBatch with the fused
  /// BatchAggregator kernels (projection limited to the group-by, aggregate
  /// and child-required columns); 0 keeps the tuple-at-a-time loop. Both
  /// paths produce bit-identical results in the same order.
  static util::Result<std::unique_ptr<GAggr>> Make(
      std::unique_ptr<Operator> child, std::vector<size_t> group_by,
      std::vector<AggSpec> aggs, size_t batch_size = 0);

  const storage::Schema& output_schema() const override { return schema_; }

  /// Pipeline breaker: consumes the entire child here.
  util::Status Init() override;

  util::Result<bool> Next(storage::TupleRef* out) override;

  void BindContext(util::QueryContext* ctx) override {
    Operator::BindContext(ctx);
    auto scope = BindProfile("GAggr");
    child_->BindContext(ctx);
  }

  size_t num_groups() const { return results_.size(); }

 private:
  GAggr(std::unique_ptr<Operator> child, std::vector<size_t> group_by,
        std::vector<AggSpec> aggs, storage::Schema schema, size_t batch_size)
      : child_(std::move(child)),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)),
        schema_(std::move(schema)),
        batch_size_(batch_size) {}

  std::unique_ptr<Operator> child_;
  std::vector<size_t> group_by_;
  std::vector<AggSpec> aggs_;
  storage::Schema schema_;
  size_t batch_size_;
  std::vector<storage::TupleBuffer> results_;
  size_t next_ = 0;
};

}  // namespace smadb::exec

#endif  // SMADB_EXEC_GAGGR_H_
