#include "exec/join.h"

#include "util/string_util.h"

namespace smadb::exec {

using expr::CmpOp;
using storage::Field;
using storage::Schema;
using storage::TupleBuffer;
using storage::TupleRef;
using util::Result;
using util::Status;
using util::TypeId;

namespace {

Status CheckJoinColumn(const Schema& schema, size_t col, const char* side) {
  if (col >= schema.num_fields()) {
    return Status::OutOfRange(
        util::Format("%s join column %zu out of range", side, col));
  }
  const TypeId t = schema.field(col).type;
  if (t == TypeId::kDouble || t == TypeId::kString) {
    return Status::NotSupported(
        util::Format("%s join column must be integral-family", side));
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<HashJoin>> HashJoin::Make(
    std::unique_ptr<Operator> left, size_t left_col,
    std::unique_ptr<Operator> right, size_t right_col) {
  SMADB_RETURN_NOT_OK(CheckJoinColumn(left->output_schema(), left_col,
                                      "left"));
  SMADB_RETURN_NOT_OK(CheckJoinColumn(right->output_schema(), right_col,
                                      "right"));
  std::vector<Field> fields = left->output_schema().fields();
  for (const Field& f : right->output_schema().fields()) {
    fields.push_back(f);
  }
  Schema schema(std::move(fields));
  if (schema.tuple_size() > storage::kPageSize) {
    return Status::NotSupported("joined tuple too wide");
  }
  return std::unique_ptr<HashJoin>(new HashJoin(std::move(left), left_col,
                                                std::move(right), right_col,
                                                std::move(schema)));
}

Status HashJoin::Init() {
  obs::OpTimer timer(prof_);
  build_rows_.clear();
  build_index_.clear();
  matches_ = nullptr;
  match_pos_ = 0;

  SMADB_RETURN_NOT_OK(right_->Init());
  const Schema& rs = right_->output_schema();
  TupleRef t;
  size_t rows_since_check = 0;
  while (true) {
    // The build side materializes in memory — checkpoint + charge it
    // against the budget at kRowsPerCheck granularity.
    if (++rows_since_check >= kRowsPerCheck) {
      rows_since_check = 0;
      SMADB_RETURN_NOT_OK(CheckRuntime("HashJoin"));
      SMADB_RETURN_NOT_OK(
          ChargeMemory(kRowsPerCheck * rs.tuple_size(), "HashJoin"));
    }
    SMADB_ASSIGN_OR_RETURN(bool has, right_->Next(&t));
    if (!has) break;
    TupleBuffer row(&rs);
    for (size_t c = 0; c < rs.num_fields(); ++c) {
      row.SetValue(c, t.GetValue(c));
    }
    build_index_[t.GetRawInt(right_col_)].push_back(build_rows_.size());
    build_rows_.push_back(std::move(row));
  }
  if (prof_ != nullptr) {
    prof_->NotePeakBytes(build_rows_.size() * rs.tuple_size());
    prof_->SetDetail(util::Format("build_rows=%zu", build_rows_.size()));
  }
  return left_->Init();
}

void HashJoin::EmitCombined(const TupleRef& left_tuple, size_t right_idx) {
  const Schema& ls = left_->output_schema();
  const Schema& rs = right_->output_schema();
  const TupleRef right_tuple = build_rows_[right_idx].AsRef();
  for (size_t c = 0; c < ls.num_fields(); ++c) {
    out_buffer_.SetValue(c, left_tuple.GetValue(c));
  }
  for (size_t c = 0; c < rs.num_fields(); ++c) {
    out_buffer_.SetValue(ls.num_fields() + c, right_tuple.GetValue(c));
  }
}

Result<bool> HashJoin::Next(TupleRef* out) {
  while (true) {
    if (matches_ != nullptr && match_pos_ < matches_->size()) {
      EmitCombined(current_left_, (*matches_)[match_pos_]);
      ++match_pos_;
      *out = out_buffer_.AsRef();
      if (prof_ != nullptr) prof_->AddRows(1);
      return true;
    }
    SMADB_ASSIGN_OR_RETURN(bool has, left_->Next(&current_left_));
    if (!has) return false;
    auto it = build_index_.find(current_left_.GetRawInt(left_col_));
    matches_ = it == build_index_.end() ? nullptr : &it->second;
    match_pos_ = 0;
  }
}

Result<std::unique_ptr<SmaSemiJoin>> SmaSemiJoin::Make(
    storage::Table* r, size_t r_col, CmpOp op, storage::Table* s,
    size_t s_col, const sma::SmaSet* r_smas, const sma::SmaSet* s_smas,
    expr::PredicatePtr r_pred, expr::PredicatePtr s_pred) {
  SMADB_RETURN_NOT_OK(CheckJoinColumn(r->schema(), r_col, "R"));
  SMADB_RETURN_NOT_OK(CheckJoinColumn(s->schema(), s_col, "S"));
  if (r_smas != nullptr && r_smas->table() != r) {
    return Status::InvalidArgument("r_smas belongs to a different table");
  }
  return std::unique_ptr<SmaSemiJoin>(
      new SmaSemiJoin(r, r_col, op, s, s_col, r_smas, s_smas,
                      std::move(r_pred), std::move(s_pred)));
}

Status SmaSemiJoin::Init() {
  curr_bucket_ = -1;
  done_ = false;
  buckets_pruned_ = 0;
  buckets_unprobed_ = 0;
  s_values_.clear();
  // Captured before the reduction is built, so every bucket structure sized
  // off the live table covers at least the snapshot's buckets.
  r_snap_ = r_->CaptureSnapshot();
  r_reader_.set_snapshot(r_snap_);

  // Minimax of S.B — over the s_pred-filtered tuples when a filter is set
  // (the unfiltered shortcut via S's SMAs would be unsound for all_match).
  std::optional<int64_t> s_min, s_max;
  const bool need_values = op_ == CmpOp::kEq || op_ == CmpOp::kNe;
  if (s_pred_ == nullptr && !need_values) {
    SMADB_ASSIGN_OR_RETURN(auto range, sma::ColumnMinMax(s_, s_col_, s_smas_));
    s_min = range.first;
    s_max = range.second;
  } else {
    // One snapshot-clamped latched pass over S (concurrent appends past the
    // snapshot stay invisible; the reader's latch excludes page writers).
    const storage::TableSnapshot s_snap = s_->CaptureSnapshot();
    BucketReader s_reader(s_);
    s_reader.set_snapshot(s_snap);
    SMADB_RETURN_NOT_OK(s_reader.Open(0, s_snap.pages));
    TupleRef t;
    while (true) {
      SMADB_ASSIGN_OR_RETURN(bool has, s_reader.Next(&t));
      if (!has) break;
      if (s_pred_ != nullptr && !s_pred_->Eval(t)) continue;
      const int64_t v = t.GetRawInt(s_col_);
      s_min = s_min.has_value() ? std::min(*s_min, v) : v;
      s_max = s_max.has_value() ? std::max(*s_max, v) : v;
      if (need_values) s_values_.insert(v);
    }
  }

  if (r_smas_ != nullptr) {
    SMADB_ASSIGN_OR_RETURN(
        reduction_,
        sma::ReduceSemiJoinWithRange(r_smas_, r_col_, op_, s_min, s_max));
  } else {
    // No reduction possible; everything is a candidate (unless S is empty).
    const bool s_empty = !s_min.has_value();
    reduction_.candidates = util::BitVector(r_->num_buckets(), !s_empty);
    reduction_.all_match = util::BitVector(r_->num_buckets(), false);
    reduction_.s_min = s_min;
    reduction_.s_max = s_max;
  }

  // R-side predicate: grade it against R's SMAs so qualifying buckets skip
  // per-tuple evaluation and disqualifying ones are skipped entirely.
  if (r_pred_ != nullptr && r_smas_ != nullptr) {
    r_grader_ = sma::BucketGrader::Create(r_pred_, r_smas_);
  } else {
    r_grader_ = nullptr;
  }
  return NextBucket();
}

bool SmaSemiJoin::Matches(int64_t a) const {
  switch (op_) {
    case CmpOp::kEq:
      return s_values_.count(a) > 0;
    case CmpOp::kNe:
      // ∃ b ≠ a ⇔ S has a value other than a.
      if (s_values_.empty()) return false;
      if (s_values_.size() > 1) return true;
      return s_values_.count(a) == 0;
    case CmpOp::kLe:
      return reduction_.s_max.has_value() && a <= *reduction_.s_max;
    case CmpOp::kLt:
      return reduction_.s_max.has_value() && a < *reduction_.s_max;
    case CmpOp::kGe:
      return reduction_.s_min.has_value() && a >= *reduction_.s_min;
    case CmpOp::kGt:
      return reduction_.s_min.has_value() && a > *reduction_.s_min;
  }
  return false;
}

Status SmaSemiJoin::NextBucket() {
  r_reader_.Close();
  const uint64_t buckets = r_snap_.buckets;
  while (true) {
    // Bucket-granular checkpoint (covers the prune loop too).
    SMADB_RETURN_NOT_OK(CheckRuntime("SmaSemiJoin"));
    ++curr_bucket_;
    if (static_cast<uint64_t>(curr_bucket_) >= buckets) {
      done_ = true;
      return Status::OK();
    }
    if (!reduction_.candidates.Get(static_cast<size_t>(curr_bucket_))) {
      ++buckets_pruned_;
      continue;
    }
    // R-side predicate grading: disqualified buckets are skipped too.
    curr_r_grade_ = sma::Grade::kAmbivalent;
    if (r_pred_ == nullptr) {
      curr_r_grade_ = sma::Grade::kQualifies;
    } else if (r_grader_ != nullptr) {
      SMADB_ASSIGN_OR_RETURN(
          curr_r_grade_,
          r_grader_->GradeBucket(static_cast<uint64_t>(curr_bucket_)));
      if (curr_r_grade_ == sma::Grade::kDisqualifies) {
        ++buckets_pruned_;
        continue;
      }
    }
    curr_all_match_ =
        reduction_.all_match.Get(static_cast<size_t>(curr_bucket_));
    if (curr_all_match_ && curr_r_grade_ == sma::Grade::kQualifies) {
      ++buckets_unprobed_;
    }
    break;
  }
  const auto [first, end] =
      r_->BucketPageRange(static_cast<uint32_t>(curr_bucket_));
  return r_reader_.Open(first, end);
}

Result<bool> SmaSemiJoin::Next(TupleRef* out) {
  while (!done_) {
    TupleRef t;
    SMADB_ASSIGN_OR_RETURN(bool has, r_reader_.Next(&t));
    if (!has) {
      SMADB_RETURN_NOT_OK(NextBucket());
      continue;
    }
    const bool r_ok = curr_r_grade_ == sma::Grade::kQualifies ||
                      r_pred_ == nullptr || r_pred_->Eval(t);
    if (r_ok && (curr_all_match_ || Matches(t.GetRawInt(r_col_)))) {
      *out = t;
      return true;
    }
  }
  return false;
}

}  // namespace smadb::exec
