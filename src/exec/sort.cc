#include "exec/sort.h"

#include <algorithm>

#include "util/string_util.h"

namespace smadb::exec {

using storage::TupleBuffer;
using storage::TupleRef;
using util::Result;
using util::Status;

Result<std::unique_ptr<Sort>> Sort::Make(std::unique_ptr<Operator> child,
                                         std::vector<SortKey> keys,
                                         size_t limit) {
  if (keys.empty()) {
    return Status::InvalidArgument("sort needs at least one key");
  }
  for (const SortKey& k : keys) {
    if (k.column >= child->output_schema().num_fields()) {
      return Status::OutOfRange(
          util::Format("sort column %zu out of range", k.column));
    }
  }
  return std::unique_ptr<Sort>(
      new Sort(std::move(child), std::move(keys), limit));
}

Status Sort::Init() {
  obs::OpTimer timer(prof_);
  rows_.clear();
  next_ = 0;
  SMADB_RETURN_NOT_OK(child_->Init());
  const storage::Schema& schema = child_->output_schema();
  TupleRef t;
  size_t rows_since_check = 0;
  while (true) {
    // The sort buffer materializes the whole input — check the governor
    // and charge the buffered rows against the budget every kRowsPerCheck.
    if (++rows_since_check >= kRowsPerCheck) {
      rows_since_check = 0;
      SMADB_RETURN_NOT_OK(CheckRuntime("Sort"));
      SMADB_RETURN_NOT_OK(
          ChargeMemory(kRowsPerCheck * schema.tuple_size(), "Sort"));
    }
    SMADB_ASSIGN_OR_RETURN(bool has, child_->Next(&t));
    if (!has) break;
    TupleBuffer row(&schema);
    for (size_t c = 0; c < schema.num_fields(); ++c) {
      row.SetValue(c, t.GetValue(c));
    }
    rows_.push_back(std::move(row));
  }
  std::stable_sort(
      rows_.begin(), rows_.end(),
      [&](const TupleBuffer& a, const TupleBuffer& b) {
        const TupleRef ra = a.AsRef();
        const TupleRef rb = b.AsRef();
        for (const SortKey& k : keys_) {
          const auto cmp = ra.GetValue(k.column).Compare(
              rb.GetValue(k.column));
          if (cmp == std::strong_ordering::equal) continue;
          const bool less = cmp == std::strong_ordering::less;
          return k.descending ? !less : less;
        }
        return false;
      });
  const size_t buffered = rows_.size();
  if (limit_ > 0 && rows_.size() > limit_) {
    rows_.erase(rows_.begin() + static_cast<ptrdiff_t>(limit_), rows_.end());
  }
  if (prof_ != nullptr) {
    prof_->NotePeakBytes(buffered * schema.tuple_size());
    prof_->SetDetail(util::Format("buffered=%zu limit=%zu", buffered, limit_));
  }
  return Status::OK();
}

Result<bool> Sort::Next(TupleRef* out) {
  if (next_ >= rows_.size()) return false;
  *out = rows_[next_].AsRef();
  ++next_;
  if (prof_ != nullptr) prof_->AddRows(1);
  return true;
}

}  // namespace smadb::exec
