#include "tpch/text.h"

#include <cassert>

#include "util/string_util.h"

namespace smadb::tpch {

namespace lists {

const std::vector<std::string_view> kSegments = {
    "AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"};

const std::vector<std::string_view> kPriorities = {
    "1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"};

const std::vector<std::string_view> kInstructions = {
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"};

const std::vector<std::string_view> kModes = {"REG AIR", "AIR",  "RAIL", "SHIP",
                                              "TRUCK",   "MAIL", "FOB"};

const std::vector<std::string_view> kNations = {
    "ALGERIA", "ARGENTINA", "BRAZIL",  "CANADA",         "EGYPT",
    "ETHIOPIA", "FRANCE",   "GERMANY", "INDIA",          "INDONESIA",
    "IRAN",     "IRAQ",     "JAPAN",   "JORDAN",         "KENYA",
    "MOROCCO",  "MOZAMBIQUE", "PERU",  "CHINA",          "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};

const std::vector<int> kNationRegion = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                                        4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};

const std::vector<std::string_view> kRegions = {"AFRICA", "AMERICA", "ASIA",
                                                "EUROPE", "MIDDLE EAST"};

const std::vector<std::string_view> kTypeSyllable1 = {
    "STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"};
const std::vector<std::string_view> kTypeSyllable2 = {
    "ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"};
const std::vector<std::string_view> kTypeSyllable3 = {"TIN", "NICKEL", "BRASS",
                                                      "STEEL", "COPPER"};

const std::vector<std::string_view> kContainerSyllable1 = {"SM", "LG", "MED",
                                                           "JUMBO", "WRAP"};
const std::vector<std::string_view> kContainerSyllable2 = {
    "CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"};

const std::vector<std::string_view> kColors = {
    "almond",    "antique",  "aquamarine", "azure",     "beige",    "bisque",
    "black",     "blanched", "blue",       "blush",     "brown",    "burlywood",
    "burnished", "chartreuse", "chiffon",  "chocolate", "coral",    "cornflower",
    "cornsilk",  "cream",    "cyan",       "dark",      "deep",     "dim",
    "dodger",    "drab",     "firebrick",  "floral",    "forest",   "frosted",
    "gainsboro", "ghost",    "goldenrod",  "green",     "grey",     "honeydew",
    "hot",       "indian",   "ivory",      "khaki",     "lace",     "lavender",
    "lawn",      "lemon",    "light",      "lime",      "linen",    "magenta",
    "maroon",    "medium",   "metallic",   "midnight",  "mint",     "misty",
    "moccasin",  "navajo",   "navy",       "olive",     "orange",   "orchid",
    "pale",      "papaya",   "peach",      "peru",      "pink",     "plum",
    "powder",    "puff",     "purple",     "red",       "rose",     "rosy",
    "royal",     "saddle",   "salmon",     "sandy",     "seashell", "sienna",
    "sky",       "slate",    "smoke",      "snow",      "spring",   "steel",
    "tan",       "thistle",  "tomato",     "turquoise", "violet",   "wheat",
    "white",     "yellow"};

}  // namespace lists

namespace {

const std::vector<std::string_view> kNouns = {
    "foxes",     "ideas",       "theodolites", "pinto beans", "instructions",
    "dependencies", "excuses",  "platelets",   "asymptotes",  "courts",
    "deposits",  "escapades",   "gifts",       "hockey players", "frays",
    "warhorses", "dugouts",     "notornis",    "epitaphs",    "pearls",
    "tithes",    "waters",      "orbits",      "sauternes",   "sheaves",
    "depths",    "sentiments",  "decoys",      "realms",      "pains",
    "grouches",  "braids",      "frets"};

const std::vector<std::string_view> kVerbs = {
    "sleep",  "wake",   "are",     "cajole", "haggle",  "nag",     "use",
    "boost",  "affix",  "detect",  "integrate", "maintain", "nod", "was",
    "lose",   "sublate", "solve",  "thrash", "promise", "engage",  "hinder",
    "print",  "x-ray",  "breach",  "eat",    "grow",    "impress", "mold",
    "poach",  "serve",  "run",     "dazzle", "snooze",  "doze",    "unwind",
    "kindle", "play",   "hang",    "believe", "doubt"};

const std::vector<std::string_view> kAdjectives = {
    "furious",  "sly",     "careful", "blithe",   "quick",    "fluffy",
    "slow",     "quiet",   "ruthless", "thin",    "close",    "dogged",
    "daring",   "brave",   "stealthy", "permanent", "enticing", "idle",
    "busy",     "regular", "final",   "ironic",   "even",     "bold",
    "silent"};

const std::vector<std::string_view> kAdverbs = {
    "sometimes", "always",   "never",     "furiously", "slyly",   "carefully",
    "blithely",  "quickly",  "fluffily",  "slowly",    "quietly", "ruthlessly",
    "thinly",    "closely",  "doggedly",  "daringly",  "bravely", "stealthily",
    "permanently", "enticingly", "idly",  "busily",    "regularly", "finally",
    "ironically", "evenly",  "boldly",    "silently"};

const std::vector<std::string_view> kPrepositions = {
    "about",  "above",  "according to", "across", "after", "against",
    "along",  "among",  "around",       "at",     "atop",  "before",
    "behind", "beneath", "beside",      "between", "beyond", "by",
    "despite", "during", "except",      "for",    "from",  "inside",
    "instead of", "into", "near",       "of",     "on",    "outside",
    "over",   "past",   "since",        "through", "throughout", "to",
    "toward", "under",  "until",        "up",     "upon",  "without",
    "with",   "within"};

const std::vector<std::string_view> kAuxiliaries = {
    "do",       "may",     "might",   "shall",   "will",
    "would",    "can",     "could",   "should",  "ought to",
    "must",     "need to", "try to"};

// One grammar production: noun-phrase verb-phrase [prepositional-phrase].
void AppendSentence(util::Rng* rng, std::string* out) {
  // Noun phrase.
  switch (rng->Uniform(0, 3)) {
    case 0:
      out->append(Pick(rng, kNouns));
      break;
    case 1:
      out->append(Pick(rng, kAdjectives));
      out->push_back(' ');
      out->append(Pick(rng, kNouns));
      break;
    case 2:
      out->append(Pick(rng, kAdjectives));
      out->append(", ");
      out->append(Pick(rng, kAdjectives));
      out->push_back(' ');
      out->append(Pick(rng, kNouns));
      break;
    default:
      out->append(Pick(rng, kAdverbs));
      out->push_back(' ');
      out->append(Pick(rng, kAdjectives));
      out->push_back(' ');
      out->append(Pick(rng, kNouns));
      break;
  }
  out->push_back(' ');
  // Verb phrase.
  switch (rng->Uniform(0, 3)) {
    case 0:
      out->append(Pick(rng, kVerbs));
      break;
    case 1:
      out->append(Pick(rng, kAuxiliaries));
      out->push_back(' ');
      out->append(Pick(rng, kVerbs));
      break;
    case 2:
      out->append(Pick(rng, kVerbs));
      out->push_back(' ');
      out->append(Pick(rng, kAdverbs));
      break;
    default:
      out->append(Pick(rng, kAuxiliaries));
      out->push_back(' ');
      out->append(Pick(rng, kVerbs));
      out->push_back(' ');
      out->append(Pick(rng, kAdverbs));
      break;
  }
  // Optional prepositional phrase.
  if (rng->NextBool(0.5)) {
    out->push_back(' ');
    out->append(Pick(rng, kPrepositions));
    out->append(" the ");
    out->append(Pick(rng, kNouns));
  }
  out->append(". ");
}

}  // namespace

std::string_view Pick(util::Rng* rng,
                      const std::vector<std::string_view>& v) {
  return v[static_cast<size_t>(
      rng->Uniform(0, static_cast<int64_t>(v.size()) - 1))];
}

std::string RandomText(util::Rng* rng, size_t min_len, size_t max_len) {
  assert(min_len <= max_len);
  const size_t target = static_cast<size_t>(
      rng->Uniform(static_cast<int64_t>(min_len),
                   static_cast<int64_t>(max_len)));
  std::string out;
  while (out.size() < target) AppendSentence(rng, &out);
  out.resize(target);
  // Avoid a trailing space (cosmetic only).
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string NumberedName(std::string_view prefix, int64_t key) {
  return util::Format("%.*s#%09lld", static_cast<int>(prefix.size()),
                      prefix.data(), static_cast<long long>(key));
}

std::string RandomAddress(util::Rng* rng) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789,. ";
  const size_t len = static_cast<size_t>(rng->Uniform(10, 40));
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out += kAlphabet[rng->Uniform(0, sizeof(kAlphabet) - 2)];
  }
  return out;
}

std::string RandomPhone(util::Rng* rng, int nation_key) {
  return util::Format("%02d-%03d-%03d-%04d", nation_key + 10,
                      static_cast<int>(rng->Uniform(100, 999)),
                      static_cast<int>(rng->Uniform(100, 999)),
                      static_cast<int>(rng->Uniform(1000, 9999)));
}

std::string RandomPartName(util::Rng* rng) {
  // Five distinct colors out of 92.
  size_t idx[5];
  for (int i = 0; i < 5; ++i) {
    bool dup;
    do {
      idx[i] = static_cast<size_t>(
          rng->Uniform(0, static_cast<int64_t>(lists::kColors.size()) - 1));
      dup = false;
      for (int j = 0; j < i; ++j) dup |= idx[j] == idx[i];
    } while (dup);
  }
  std::string out;
  for (int i = 0; i < 5; ++i) {
    if (i > 0) out += ' ';
    out += lists::kColors[idx[i]];
  }
  return out;
}

std::string RandomPartType(util::Rng* rng) {
  std::string out(Pick(rng, lists::kTypeSyllable1));
  out += ' ';
  out += Pick(rng, lists::kTypeSyllable2);
  out += ' ';
  out += Pick(rng, lists::kTypeSyllable3);
  return out;
}

std::string RandomContainer(util::Rng* rng) {
  std::string out(Pick(rng, lists::kContainerSyllable1));
  out += ' ';
  out += Pick(rng, lists::kContainerSyllable2);
  return out;
}

}  // namespace smadb::tpch
