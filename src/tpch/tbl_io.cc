#include "tpch/tbl_io.h"

#include <cstdio>
#include <fstream>

#include "util/string_util.h"

namespace smadb::tpch {

using storage::Schema;
using storage::Table;
using storage::TupleBuffer;
using storage::TupleRef;
using util::Result;
using util::Status;
using util::TypeId;

namespace {

Result<int64_t> ParseInt(std::string_view field) {
  if (field.empty()) return Status::InvalidArgument("empty integer field");
  bool negative = false;
  size_t i = 0;
  if (field[0] == '-' || field[0] == '+') {
    negative = field[0] == '-';
    i = 1;
    if (field.size() == 1) {
      return Status::InvalidArgument("sign without digits");
    }
  }
  int64_t v = 0;
  for (; i < field.size(); ++i) {
    if (field[i] < '0' || field[i] > '9') {
      return Status::InvalidArgument("bad integer '" + std::string(field) +
                                     "'");
    }
    v = v * 10 + (field[i] - '0');
  }
  return negative ? -v : v;
}

// decimal(·,2): "123", "123.4", "-123.45".
Result<int64_t> ParseDecimalCents(std::string_view field) {
  const size_t dot = field.find('.');
  if (dot == std::string_view::npos) {
    SMADB_ASSIGN_OR_RETURN(int64_t whole, ParseInt(field));
    return whole * 100;
  }
  SMADB_ASSIGN_OR_RETURN(int64_t whole, ParseInt(field.substr(0, dot)));
  const std::string_view frac = field.substr(dot + 1);
  if (frac.empty() || frac.size() > 2) {
    return Status::InvalidArgument("decimal needs 1-2 fraction digits: '" +
                                   std::string(field) + "'");
  }
  int64_t cents = 0;
  for (char c : frac) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad decimal '" + std::string(field) +
                                     "'");
    }
    cents = cents * 10 + (c - '0');
  }
  if (frac.size() == 1) cents *= 10;
  const bool negative = !field.empty() && field[0] == '-';
  return whole * 100 + (negative ? -cents : cents);
}

}  // namespace

Status ParseTblLine(const Schema& schema, std::string_view line,
                    TupleBuffer* out) {
  size_t pos = 0;
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    const size_t bar = line.find('|', pos);
    if (bar == std::string_view::npos) {
      return Status::InvalidArgument(
          util::Format("expected %zu fields, found %zu", schema.num_fields(),
                       c));
    }
    const std::string_view field = line.substr(pos, bar - pos);
    pos = bar + 1;
    switch (schema.field(c).type) {
      case TypeId::kInt32: {
        SMADB_ASSIGN_OR_RETURN(int64_t v, ParseInt(field));
        out->SetInt32(c, static_cast<int32_t>(v));
        break;
      }
      case TypeId::kInt64: {
        SMADB_ASSIGN_OR_RETURN(int64_t v, ParseInt(field));
        out->SetInt64(c, v);
        break;
      }
      case TypeId::kDouble: {
        // Not produced by dbgen; accept plain decimal text.
        SMADB_ASSIGN_OR_RETURN(int64_t cents, ParseDecimalCents(field));
        out->SetDouble(c, static_cast<double>(cents) / 100.0);
        break;
      }
      case TypeId::kDecimal: {
        SMADB_ASSIGN_OR_RETURN(int64_t cents, ParseDecimalCents(field));
        out->SetDecimal(c, util::Decimal(cents));
        break;
      }
      case TypeId::kDate: {
        SMADB_ASSIGN_OR_RETURN(util::Date d, util::Date::Parse(field));
        out->SetDate(c, d);
        break;
      }
      case TypeId::kString: {
        if (field.size() > schema.field(c).capacity) {
          return Status::InvalidArgument(util::Format(
              "field %zu exceeds capacity %u: '%.*s'", c,
              schema.field(c).capacity, static_cast<int>(field.size()),
              field.data()));
        }
        out->SetString(c, field);
        break;
      }
    }
  }
  if (pos != line.size()) {
    return Status::InvalidArgument("trailing characters after last field");
  }
  return Status::OK();
}

std::string FormatTblLine(const TupleRef& tuple) {
  std::string out;
  const Schema& schema = tuple.schema();
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    out += tuple.GetValue(c).ToString();
    out += '|';
  }
  return out;
}

Status WriteTbl(Table* table, const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  for (uint32_t b = 0; b < table->num_buckets(); ++b) {
    Status status = Status::OK();
    SMADB_RETURN_NOT_OK(table->ForEachTupleInBucket(
        b, [&](const TupleRef& t, storage::Rid) {
          file << FormatTblLine(t) << '\n';
        }));
    SMADB_RETURN_NOT_OK(status);
  }
  file.flush();
  if (!file.good()) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Result<Table*> LoadTbl(storage::Catalog* catalog, std::string name,
                       Schema schema, const std::string& path,
                       storage::TableOptions options) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  SMADB_ASSIGN_OR_RETURN(
      Table * table,
      catalog->CreateTable(std::move(name), std::move(schema), options));
  TupleBuffer buf(&table->schema());
  std::string line;
  size_t line_no = 0;
  while (std::getline(file, line)) {
    ++line_no;
    if (line.empty()) continue;
    const Status parsed = ParseTblLine(table->schema(), line, &buf);
    if (!parsed.ok()) {
      return Status::InvalidArgument(
          util::Format("%s:%zu: %s", path.c_str(), line_no,
                       parsed.message().c_str()));
    }
    SMADB_RETURN_NOT_OK(table->Append(buf));
  }
  return table;
}

}  // namespace smadb::tpch
