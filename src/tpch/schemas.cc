#include "tpch/schemas.h"

namespace smadb::tpch {

using storage::Field;
using storage::Schema;

Schema LineItemSchema() {
  return Schema({
      Field::Int64("l_orderkey"),
      Field::Int32("l_partkey"),
      Field::Int32("l_suppkey"),
      Field::Int32("l_linenumber"),
      Field::Decimal("l_quantity"),
      Field::Decimal("l_extendedprice"),
      Field::Decimal("l_discount"),
      Field::Decimal("l_tax"),
      Field::String("l_returnflag", 1),
      Field::String("l_linestatus", 1),
      Field::Date("l_shipdate"),
      Field::Date("l_commitdate"),
      Field::Date("l_receiptdate"),
      Field::String("l_shipinstruct", 25),
      Field::String("l_shipmode", 10),
      Field::String("l_comment", 44),
  });
}

Schema OrdersSchema() {
  return Schema({
      Field::Int64("o_orderkey"),
      Field::Int32("o_custkey"),
      Field::String("o_orderstatus", 1),
      Field::Decimal("o_totalprice"),
      Field::Date("o_orderdate"),
      Field::String("o_orderpriority", 15),
      Field::String("o_clerk", 15),
      Field::Int32("o_shippriority"),
      Field::String("o_comment", 79),
  });
}

Schema CustomerSchema() {
  return Schema({
      Field::Int32("c_custkey"),
      Field::String("c_name", 25),
      Field::String("c_address", 40),
      Field::Int32("c_nationkey"),
      Field::String("c_phone", 15),
      Field::Decimal("c_acctbal"),
      Field::String("c_mktsegment", 10),
      Field::String("c_comment", 117),
  });
}

Schema PartSchema() {
  return Schema({
      Field::Int32("p_partkey"),
      Field::String("p_name", 55),
      Field::String("p_mfgr", 25),
      Field::String("p_brand", 10),
      Field::String("p_type", 25),
      Field::Int32("p_size"),
      Field::String("p_container", 10),
      Field::Decimal("p_retailprice"),
      Field::String("p_comment", 23),
  });
}

Schema SupplierSchema() {
  return Schema({
      Field::Int32("s_suppkey"),
      Field::String("s_name", 25),
      Field::String("s_address", 40),
      Field::Int32("s_nationkey"),
      Field::String("s_phone", 15),
      Field::Decimal("s_acctbal"),
      Field::String("s_comment", 101),
  });
}

Schema PartSuppSchema() {
  return Schema({
      Field::Int32("ps_partkey"),
      Field::Int32("ps_suppkey"),
      Field::Int32("ps_availqty"),
      Field::Decimal("ps_supplycost"),
      Field::String("ps_comment", 199),
  });
}

Schema NationSchema() {
  return Schema({
      Field::Int32("n_nationkey"),
      Field::String("n_name", 25),
      Field::Int32("n_regionkey"),
      Field::String("n_comment", 152),
  });
}

Schema RegionSchema() {
  return Schema({
      Field::Int32("r_regionkey"),
      Field::String("r_name", 25),
      Field::String("r_comment", 152),
  });
}

}  // namespace smadb::tpch
