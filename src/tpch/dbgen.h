// Deterministic TPC-D-style data generator ("dbgen").
//
// Substitutes the official dbgen binary the paper used: same schema, same
// cardinalities per scale factor, and the distribution clauses that drive
// the paper's experiments (order/ship/commit/receipt date relations,
// returnflag/linestatus rules, uniform quantities & discounts). Comment
// text is grammar-generated but only affects byte volume, never query
// results.

#ifndef SMADB_TPCH_DBGEN_H_
#define SMADB_TPCH_DBGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/date.h"
#include "util/decimal.h"
#include "util/rng.h"

namespace smadb::tpch {

/// TPC-D calendar constants (clause 4.2.3).
inline const util::Date kStartDate = util::Date::FromYmd(1992, 1, 1);
inline const util::Date kCurrentDate = util::Date::FromYmd(1995, 6, 17);
inline const util::Date kEndDate = util::Date::FromYmd(1998, 12, 31);

struct LineItemRow {
  int64_t orderkey;
  int32_t partkey;
  int32_t suppkey;
  int32_t linenumber;
  util::Decimal quantity;
  util::Decimal extendedprice;
  util::Decimal discount;
  util::Decimal tax;
  char returnflag;
  char linestatus;
  util::Date shipdate;
  util::Date commitdate;
  util::Date receiptdate;
  std::string shipinstruct;
  std::string shipmode;
  std::string comment;
};

struct OrderRow {
  int64_t orderkey;
  int32_t custkey;
  char orderstatus;
  util::Decimal totalprice;
  util::Date orderdate;
  std::string orderpriority;
  std::string clerk;
  int32_t shippriority;
  std::string comment;
};

struct CustomerRow {
  int32_t custkey;
  std::string name;
  std::string address;
  int32_t nationkey;
  std::string phone;
  util::Decimal acctbal;
  std::string mktsegment;
  std::string comment;
};

struct PartRow {
  int32_t partkey;
  std::string name;
  std::string mfgr;
  std::string brand;
  std::string type;
  int32_t size;
  std::string container;
  util::Decimal retailprice;
  std::string comment;
};

struct SupplierRow {
  int32_t suppkey;
  std::string name;
  std::string address;
  int32_t nationkey;
  std::string phone;
  util::Decimal acctbal;
  std::string comment;
};

struct PartSuppRow {
  int32_t partkey;
  int32_t suppkey;
  int32_t availqty;
  util::Decimal supplycost;
  std::string comment;
};

struct NationRow {
  int32_t nationkey;
  std::string name;
  int32_t regionkey;
  std::string comment;
};

struct RegionRow {
  int32_t regionkey;
  std::string name;
  std::string comment;
};

/// Generation parameters. `scale_factor` 1.0 corresponds to the paper's 1 GB
/// database; laptop-scale runs use 0.01–0.25.
struct DbgenOptions {
  double scale_factor = 0.01;
  uint64_t seed = 19980401;  // paper's publication year+month; any value works
};

/// Generator for all eight tables. Row counts follow the spec:
/// orders = 1.5M × SF, lineitem ≈ 4 per order (uniform 1..7),
/// customer = 150K × SF, part = 200K × SF, supplier = 10K × SF,
/// partsupp = 4 per part, nation = 25, region = 5.
class Dbgen {
 public:
  explicit Dbgen(DbgenOptions options);

  const DbgenOptions& options() const { return options_; }

  int64_t num_orders() const { return num_orders_; }
  int64_t num_customers() const { return num_customers_; }
  int64_t num_parts() const { return num_parts_; }
  int64_t num_suppliers() const { return num_suppliers_; }

  /// Generates ORDERS and LINEITEM together (linestatus/orderstatus couple
  /// them). Lineitems come out in orderkey order — the physical order a
  /// time-of-creation warehouse would append in.
  void GenOrdersAndLineItems(std::vector<OrderRow>* orders,
                             std::vector<LineItemRow>* lineitems);

  std::vector<CustomerRow> GenCustomers();
  std::vector<PartRow> GenParts();
  std::vector<SupplierRow> GenSuppliers();
  std::vector<PartSuppRow> GenPartSupps();
  std::vector<NationRow> GenNations();
  std::vector<RegionRow> GenRegions();

  /// Retail price formula of the spec (deterministic in partkey).
  static util::Decimal RetailPrice(int64_t partkey);

 private:
  DbgenOptions options_;
  int64_t num_orders_;
  int64_t num_customers_;
  int64_t num_parts_;
  int64_t num_suppliers_;
};

}  // namespace smadb::tpch

#endif  // SMADB_TPCH_DBGEN_H_
