// TPC-D text synthesis: grammar-based pseudo-English comments and the fixed
// word lists of the specification (ship modes, priorities, nations, ...).

#ifndef SMADB_TPCH_TEXT_H_
#define SMADB_TPCH_TEXT_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace smadb::tpch {

/// Fixed specification lists (clause 4.2.2/4.2.3 of the TPC-D spec).
namespace lists {
extern const std::vector<std::string_view> kSegments;
extern const std::vector<std::string_view> kPriorities;
extern const std::vector<std::string_view> kInstructions;
extern const std::vector<std::string_view> kModes;
extern const std::vector<std::string_view> kNations;
extern const std::vector<int> kNationRegion;
extern const std::vector<std::string_view> kRegions;
extern const std::vector<std::string_view> kTypeSyllable1;
extern const std::vector<std::string_view> kTypeSyllable2;
extern const std::vector<std::string_view> kTypeSyllable3;
extern const std::vector<std::string_view> kContainerSyllable1;
extern const std::vector<std::string_view> kContainerSyllable2;
extern const std::vector<std::string_view> kColors;
}  // namespace lists

/// Picks a uniform element of a list.
std::string_view Pick(util::Rng* rng, const std::vector<std::string_view>& v);

/// Grammar-generated sentence fragments, truncated to [min_len, max_len]
/// bytes (the spec's comment columns are length-bounded).
std::string RandomText(util::Rng* rng, size_t min_len, size_t max_len);

/// "Customer#000000042"-style numbered entity name.
std::string NumberedName(std::string_view prefix, int64_t key);

/// Random v-string address of the spec's alphabet.
std::string RandomAddress(util::Rng* rng);

/// "NN-NNN-NNN-NNNN" phone with nation-derived country code.
std::string RandomPhone(util::Rng* rng, int nation_key);

/// p_name: five distinct color words.
std::string RandomPartName(util::Rng* rng);

/// p_type: three syllables ("STANDARD ANODIZED TIN").
std::string RandomPartType(util::Rng* rng);

/// p_container: two syllables ("SM CASE").
std::string RandomContainer(util::Rng* rng);

}  // namespace smadb::tpch

#endif  // SMADB_TPCH_TEXT_H_
