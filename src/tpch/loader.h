// Loader: materializes generated rows into storage tables under a chosen
// physical clustering — the variable the paper's experiments turn on.
//
//  * kOrderKey       dbgen's native append order (orderkey). Dates are
//                    uniform per order, so date predicates see near-random
//                    placement — the paper's pessimal case.
//  * kShipdateSorted LINEITEM sorted on l_shipdate — the paper's "optimal
//                    case, that is when the relation is sorted on the
//                    restricted attribute" (§2.4).
//  * kDiagonal       time-of-creation clustering (paper Fig. 2): each tuple
//                    enters the warehouse its date plus a normally
//                    distributed data-entry lag; physical order = entry
//                    order. Imperfect but exploitable clustering.
//  * kShuffled       uniformly random placement (sanity bound).

#ifndef SMADB_TPCH_LOADER_H_
#define SMADB_TPCH_LOADER_H_

#include <vector>

#include "storage/catalog.h"
#include "tpch/dbgen.h"
#include "tpch/schemas.h"

namespace smadb::tpch {

enum class ClusterMode {
  kOrderKey,
  kShipdateSorted,
  kDiagonal,
  kShuffled,
};

struct LoadOptions {
  ClusterMode mode = ClusterMode::kOrderKey;
  /// Std-dev (days) of the data-entry lag for kDiagonal. Larger = blurrier
  /// diagonal = more ambivalent buckets.
  double lag_stddev_days = 15.0;
  /// Pages per bucket for the created table (paper §4 tuning knob).
  uint32_t bucket_pages = 1;
  /// Seed for lag/shuffle randomness.
  uint64_t seed = 7;
};

/// Loads LINEITEM with the requested clustering. The rows vector is taken by
/// value because clustering reorders it.
util::Result<storage::Table*> LoadLineItem(storage::Catalog* catalog,
                                           std::vector<LineItemRow> rows,
                                           const LoadOptions& options,
                                           std::string table_name = "lineitem");

/// Loads ORDERS; kShipdateSorted sorts on o_orderdate, kDiagonal lags it.
util::Result<storage::Table*> LoadOrders(storage::Catalog* catalog,
                                         std::vector<OrderRow> rows,
                                         const LoadOptions& options,
                                         std::string table_name = "orders");

util::Result<storage::Table*> LoadCustomers(storage::Catalog* catalog,
                                            const std::vector<CustomerRow>& rows);
util::Result<storage::Table*> LoadParts(storage::Catalog* catalog,
                                        const std::vector<PartRow>& rows);
util::Result<storage::Table*> LoadSuppliers(storage::Catalog* catalog,
                                            const std::vector<SupplierRow>& rows);
util::Result<storage::Table*> LoadPartSupps(storage::Catalog* catalog,
                                            const std::vector<PartSuppRow>& rows);
util::Result<storage::Table*> LoadNations(storage::Catalog* catalog,
                                          const std::vector<NationRow>& rows);
util::Result<storage::Table*> LoadRegions(storage::Catalog* catalog,
                                          const std::vector<RegionRow>& rows);

/// Converts one LineItemRow into a TupleBuffer of LineItemSchema().
storage::TupleBuffer LineItemTuple(const storage::Schema* schema,
                                   const LineItemRow& row);

/// Converts one OrderRow into a TupleBuffer of OrdersSchema().
storage::TupleBuffer OrderTuple(const storage::Schema* schema,
                                const OrderRow& row);

/// Convenience: generate + load a complete clustered LINEITEM in one call.
/// Returns the table; `orders_out`, if non-null, receives the order rows.
util::Result<storage::Table*> GenerateAndLoadLineItem(
    storage::Catalog* catalog, const DbgenOptions& gen_options,
    const LoadOptions& load_options, std::vector<OrderRow>* orders_out = nullptr,
    std::string table_name = "lineitem");

}  // namespace smadb::tpch

#endif  // SMADB_TPCH_LOADER_H_
