// Storage schemas and column ordinals for the eight TPC-D tables.

#ifndef SMADB_TPCH_SCHEMAS_H_
#define SMADB_TPCH_SCHEMAS_H_

#include "storage/schema.h"

namespace smadb::tpch {

/// Column ordinals, matching the Schema factories below.
namespace lineitem {
enum Cols : size_t {
  kOrderKey = 0,
  kPartKey,
  kSuppKey,
  kLineNumber,
  kQuantity,
  kExtendedPrice,
  kDiscount,
  kTax,
  kReturnFlag,
  kLineStatus,
  kShipDate,
  kCommitDate,
  kReceiptDate,
  kShipInstruct,
  kShipMode,
  kComment,
};
}  // namespace lineitem

namespace orders {
enum Cols : size_t {
  kOrderKey = 0,
  kCustKey,
  kOrderStatus,
  kTotalPrice,
  kOrderDate,
  kOrderPriority,
  kClerk,
  kShipPriority,
  kComment,
};
}  // namespace orders

namespace customer {
enum Cols : size_t {
  kCustKey = 0,
  kName,
  kAddress,
  kNationKey,
  kPhone,
  kAcctBal,
  kMktSegment,
  kComment,
};
}  // namespace customer

namespace part {
enum Cols : size_t {
  kPartKey = 0,
  kName,
  kMfgr,
  kBrand,
  kType,
  kSize,
  kContainer,
  kRetailPrice,
  kComment,
};
}  // namespace part

namespace supplier {
enum Cols : size_t {
  kSuppKey = 0,
  kName,
  kAddress,
  kNationKey,
  kPhone,
  kAcctBal,
  kComment,
};
}  // namespace supplier

namespace partsupp {
enum Cols : size_t {
  kPartKey = 0,
  kSuppKey,
  kAvailQty,
  kSupplyCost,
  kComment,
};
}  // namespace partsupp

namespace nation {
enum Cols : size_t { kNationKey = 0, kName, kRegionKey, kComment };
}  // namespace nation

namespace region {
enum Cols : size_t { kRegionKey = 0, kName, kComment };
}  // namespace region

storage::Schema LineItemSchema();
storage::Schema OrdersSchema();
storage::Schema CustomerSchema();
storage::Schema PartSchema();
storage::Schema SupplierSchema();
storage::Schema PartSuppSchema();
storage::Schema NationSchema();
storage::Schema RegionSchema();

}  // namespace smadb::tpch

#endif  // SMADB_TPCH_SCHEMAS_H_
