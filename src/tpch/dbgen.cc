#include "tpch/dbgen.h"

#include <algorithm>
#include <cassert>

#include "tpch/text.h"
#include "util/string_util.h"

namespace smadb::tpch {

using util::Date;
using util::Decimal;
using util::Rng;

namespace {

// Orderdate range: orders must ship within 121 days and still be receipted
// by ENDDATE, so the spec stops orderdates 151 days before ENDDATE.
const Date kLastOrderDate = kEndDate.AddDays(-151);

Decimal RandomMoney(Rng* rng, int64_t lo_cents, int64_t hi_cents) {
  return Decimal(rng->Uniform(lo_cents, hi_cents));
}

}  // namespace

Dbgen::Dbgen(DbgenOptions options) : options_(options) {
  const double sf = options_.scale_factor;
  assert(sf > 0);
  num_orders_ = std::max<int64_t>(1, static_cast<int64_t>(1'500'000 * sf));
  num_customers_ = std::max<int64_t>(1, static_cast<int64_t>(150'000 * sf));
  num_parts_ = std::max<int64_t>(1, static_cast<int64_t>(200'000 * sf));
  num_suppliers_ = std::max<int64_t>(1, static_cast<int64_t>(10'000 * sf));
}

Decimal Dbgen::RetailPrice(int64_t partkey) {
  // Spec 4.2.3: (90000 + ((partkey/10) mod 20001) + 100*(partkey mod 1000))/100
  const int64_t cents =
      90000 + ((partkey / 10) % 20001) + 100 * (partkey % 1000);
  return Decimal(cents);
}

void Dbgen::GenOrdersAndLineItems(std::vector<OrderRow>* orders,
                                  std::vector<LineItemRow>* lineitems) {
  Rng rng(options_.seed ^ 0x0001);
  orders->clear();
  lineitems->clear();
  orders->reserve(static_cast<size_t>(num_orders_));
  lineitems->reserve(static_cast<size_t>(num_orders_) * 4);

  const int32_t max_orderdate_offset = kLastOrderDate - kStartDate;
  for (int64_t o = 1; o <= num_orders_; ++o) {
    OrderRow order;
    // dbgen spreads orderkeys sparsely (8 of every 32); dense keys serve the
    // same workloads and keep joins simple.
    order.orderkey = o;
    order.custkey =
        static_cast<int32_t>(rng.Uniform(1, num_customers_));
    order.orderdate =
        kStartDate.AddDays(static_cast<int32_t>(
            rng.Uniform(0, max_orderdate_offset)));
    order.orderpriority = std::string(Pick(&rng, lists::kPriorities));
    order.clerk = NumberedName(
        "Clerk", rng.Uniform(1, std::max<int64_t>(1, num_orders_ / 1000)));
    order.shippriority = 0;
    order.comment = RandomText(&rng, 19, 78);

    const int num_lines = static_cast<int>(rng.Uniform(1, 7));
    Decimal total(0);
    int f_count = 0;
    for (int l = 1; l <= num_lines; ++l) {
      LineItemRow li;
      li.orderkey = order.orderkey;
      li.partkey = static_cast<int32_t>(rng.Uniform(1, num_parts_));
      // Spec: suppkey = (partkey + (i-1) * (S/4 + (partkey-1)/S)) mod S + 1.
      const int64_t s = num_suppliers_;
      const int64_t i = rng.Uniform(0, 3);
      li.suppkey = static_cast<int32_t>(
          (li.partkey + i * (s / 4 + (li.partkey - 1) / s)) % s + 1);
      li.linenumber = l;
      li.quantity = Decimal(rng.Uniform(1, 50) * 100);
      li.extendedprice =
          Decimal(RetailPrice(li.partkey).cents() *
                  (li.quantity.cents() / 100));
      li.discount = Decimal(rng.Uniform(0, 10));   // 0.00 .. 0.10
      li.tax = Decimal(rng.Uniform(0, 8));         // 0.00 .. 0.08
      li.shipdate = order.orderdate.AddDays(
          static_cast<int32_t>(rng.Uniform(1, 121)));
      li.commitdate = order.orderdate.AddDays(
          static_cast<int32_t>(rng.Uniform(30, 90)));
      li.receiptdate =
          li.shipdate.AddDays(static_cast<int32_t>(rng.Uniform(1, 30)));
      if (li.receiptdate <= kCurrentDate) {
        li.returnflag = rng.NextBool(0.5) ? 'R' : 'A';
      } else {
        li.returnflag = 'N';
      }
      li.linestatus = li.shipdate > kCurrentDate ? 'O' : 'F';
      if (li.linestatus == 'F') ++f_count;
      li.shipinstruct = std::string(Pick(&rng, lists::kInstructions));
      li.shipmode = std::string(Pick(&rng, lists::kModes));
      li.comment = RandomText(&rng, 10, 43);

      // o_totalprice = sum(extendedprice * (1+tax) * (1-discount)).
      const Decimal one(100);
      total += li.extendedprice * (one - li.discount) * (one + li.tax);
      lineitems->push_back(std::move(li));
    }
    order.orderstatus =
        f_count == num_lines ? 'F' : (f_count == 0 ? 'O' : 'P');
    order.totalprice = total;
    orders->push_back(std::move(order));
  }
}

std::vector<CustomerRow> Dbgen::GenCustomers() {
  Rng rng(options_.seed ^ 0x0002);
  std::vector<CustomerRow> out;
  out.reserve(static_cast<size_t>(num_customers_));
  for (int64_t c = 1; c <= num_customers_; ++c) {
    CustomerRow row;
    row.custkey = static_cast<int32_t>(c);
    row.name = NumberedName("Customer", c);
    row.address = RandomAddress(&rng);
    row.nationkey = static_cast<int32_t>(rng.Uniform(0, 24));
    row.phone = RandomPhone(&rng, row.nationkey);
    row.acctbal = RandomMoney(&rng, -99999, 999999);
    row.mktsegment = std::string(Pick(&rng, lists::kSegments));
    row.comment = RandomText(&rng, 29, 116);
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<PartRow> Dbgen::GenParts() {
  Rng rng(options_.seed ^ 0x0003);
  std::vector<PartRow> out;
  out.reserve(static_cast<size_t>(num_parts_));
  for (int64_t p = 1; p <= num_parts_; ++p) {
    PartRow row;
    row.partkey = static_cast<int32_t>(p);
    row.name = RandomPartName(&rng);
    const int m = static_cast<int>(rng.Uniform(1, 5));
    row.mfgr = util::Format("Manufacturer#%d", m);
    row.brand = util::Format("Brand#%d%d", m,
                             static_cast<int>(rng.Uniform(1, 5)));
    row.type = RandomPartType(&rng);
    row.size = static_cast<int32_t>(rng.Uniform(1, 50));
    row.container = RandomContainer(&rng);
    row.retailprice = RetailPrice(p);
    row.comment = RandomText(&rng, 5, 22);
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<SupplierRow> Dbgen::GenSuppliers() {
  Rng rng(options_.seed ^ 0x0004);
  std::vector<SupplierRow> out;
  out.reserve(static_cast<size_t>(num_suppliers_));
  for (int64_t s = 1; s <= num_suppliers_; ++s) {
    SupplierRow row;
    row.suppkey = static_cast<int32_t>(s);
    row.name = NumberedName("Supplier", s);
    row.address = RandomAddress(&rng);
    row.nationkey = static_cast<int32_t>(rng.Uniform(0, 24));
    row.phone = RandomPhone(&rng, row.nationkey);
    row.acctbal = RandomMoney(&rng, -99999, 999999);
    row.comment = RandomText(&rng, 25, 100);
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<PartSuppRow> Dbgen::GenPartSupps() {
  Rng rng(options_.seed ^ 0x0005);
  std::vector<PartSuppRow> out;
  out.reserve(static_cast<size_t>(num_parts_) * 4);
  for (int64_t p = 1; p <= num_parts_; ++p) {
    for (int64_t i = 0; i < 4; ++i) {
      PartSuppRow row;
      row.partkey = static_cast<int32_t>(p);
      const int64_t s = num_suppliers_;
      row.suppkey = static_cast<int32_t>(
          (p + i * (s / 4 + (p - 1) / s)) % s + 1);
      row.availqty = static_cast<int32_t>(rng.Uniform(1, 9999));
      row.supplycost = RandomMoney(&rng, 100, 100000);
      row.comment = RandomText(&rng, 49, 198);
      out.push_back(std::move(row));
    }
  }
  return out;
}

std::vector<NationRow> Dbgen::GenNations() {
  Rng rng(options_.seed ^ 0x0006);
  std::vector<NationRow> out;
  out.reserve(lists::kNations.size());
  for (size_t n = 0; n < lists::kNations.size(); ++n) {
    NationRow row;
    row.nationkey = static_cast<int32_t>(n);
    row.name = std::string(lists::kNations[n]);
    row.regionkey = lists::kNationRegion[n];
    row.comment = RandomText(&rng, 31, 114);
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<RegionRow> Dbgen::GenRegions() {
  Rng rng(options_.seed ^ 0x0007);
  std::vector<RegionRow> out;
  out.reserve(lists::kRegions.size());
  for (size_t r = 0; r < lists::kRegions.size(); ++r) {
    RegionRow row;
    row.regionkey = static_cast<int32_t>(r);
    row.name = std::string(lists::kRegions[r]);
    row.comment = RandomText(&rng, 31, 115);
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace smadb::tpch
