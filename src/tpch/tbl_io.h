// dbgen `.tbl` interchange: read and write the pipe-terminated text format
// the official TPC-D/TPC-H dbgen emits (one line per tuple, every field
// followed by '|'). Lets smadb load data produced by the real dbgen and
// export its own generator's output for cross-checking.

#ifndef SMADB_TPCH_TBL_IO_H_
#define SMADB_TPCH_TBL_IO_H_

#include <string>

#include "storage/catalog.h"

namespace smadb::tpch {

/// Writes all live tuples of `table` to `path` in .tbl format.
/// Dates print as YYYY-MM-DD, decimals with two fraction digits.
util::Status WriteTbl(storage::Table* table, const std::string& path);

/// Creates table `name` with `schema` in `catalog` and loads `path` into
/// it. Fields are parsed per the schema's column types; row arity and
/// value syntax are validated with line numbers in error messages.
util::Result<storage::Table*> LoadTbl(storage::Catalog* catalog,
                                      std::string name,
                                      storage::Schema schema,
                                      const std::string& path,
                                      storage::TableOptions options = {});

/// Parses one .tbl line into `out` (exposed for testing).
util::Status ParseTblLine(const storage::Schema& schema,
                          std::string_view line, storage::TupleBuffer* out);

/// Formats one tuple as a .tbl line, including the trailing '|'
/// (no newline).
std::string FormatTblLine(const storage::TupleRef& tuple);

}  // namespace smadb::tpch

#endif  // SMADB_TPCH_TBL_IO_H_
