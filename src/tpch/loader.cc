#include "tpch/loader.h"

#include <algorithm>
#include <numeric>

#include "util/rng.h"

namespace smadb::tpch {

using storage::Catalog;
using storage::Schema;
using storage::Table;
using storage::TableOptions;
using storage::TupleBuffer;
using util::Result;
using util::Rng;
using util::Status;

storage::TupleBuffer LineItemTuple(const Schema* schema,
                                   const LineItemRow& row) {
  TupleBuffer t(schema);
  t.SetInt64(lineitem::kOrderKey, row.orderkey);
  t.SetInt32(lineitem::kPartKey, row.partkey);
  t.SetInt32(lineitem::kSuppKey, row.suppkey);
  t.SetInt32(lineitem::kLineNumber, row.linenumber);
  t.SetDecimal(lineitem::kQuantity, row.quantity);
  t.SetDecimal(lineitem::kExtendedPrice, row.extendedprice);
  t.SetDecimal(lineitem::kDiscount, row.discount);
  t.SetDecimal(lineitem::kTax, row.tax);
  t.SetString(lineitem::kReturnFlag, std::string_view(&row.returnflag, 1));
  t.SetString(lineitem::kLineStatus, std::string_view(&row.linestatus, 1));
  t.SetDate(lineitem::kShipDate, row.shipdate);
  t.SetDate(lineitem::kCommitDate, row.commitdate);
  t.SetDate(lineitem::kReceiptDate, row.receiptdate);
  t.SetString(lineitem::kShipInstruct, row.shipinstruct);
  t.SetString(lineitem::kShipMode, row.shipmode);
  t.SetString(lineitem::kComment, row.comment);
  return t;
}

storage::TupleBuffer OrderTuple(const Schema* schema, const OrderRow& row) {
  TupleBuffer t(schema);
  t.SetInt64(orders::kOrderKey, row.orderkey);
  t.SetInt32(orders::kCustKey, row.custkey);
  t.SetString(orders::kOrderStatus, std::string_view(&row.orderstatus, 1));
  t.SetDecimal(orders::kTotalPrice, row.totalprice);
  t.SetDate(orders::kOrderDate, row.orderdate);
  t.SetString(orders::kOrderPriority, row.orderpriority);
  t.SetString(orders::kClerk, row.clerk);
  t.SetInt32(orders::kShipPriority, row.shippriority);
  t.SetString(orders::kComment, row.comment);
  return t;
}

namespace {

// Applies the clustering permutation for a date-keyed row type.
// `date_of` extracts the clustering date of a row.
template <typename Row, typename DateOf>
void Cluster(std::vector<Row>* rows, const LoadOptions& options,
             DateOf date_of) {
  switch (options.mode) {
    case ClusterMode::kOrderKey:
      return;  // generation order *is* orderkey order
    case ClusterMode::kShipdateSorted:
      std::stable_sort(rows->begin(), rows->end(),
                       [&](const Row& a, const Row& b) {
                         return date_of(a) < date_of(b);
                       });
      return;
    case ClusterMode::kDiagonal: {
      // Entry date = real date + |N(0, lag)| days; warehouse appends in
      // entry order (paper Fig. 2: all points right of the diagonal).
      Rng rng(options.seed);
      std::vector<std::pair<int64_t, size_t>> keys;
      keys.reserve(rows->size());
      for (size_t i = 0; i < rows->size(); ++i) {
        const double lag =
            std::abs(rng.NextGaussian()) * options.lag_stddev_days;
        keys.emplace_back(
            date_of((*rows)[i]).days() + static_cast<int64_t>(lag), i);
      }
      std::stable_sort(keys.begin(), keys.end());
      std::vector<Row> reordered;
      reordered.reserve(rows->size());
      for (const auto& [day, idx] : keys) {
        reordered.push_back(std::move((*rows)[idx]));
      }
      *rows = std::move(reordered);
      return;
    }
    case ClusterMode::kShuffled: {
      Rng rng(options.seed);
      // Fisher-Yates with our deterministic RNG.
      for (size_t i = rows->size(); i > 1; --i) {
        const size_t j = static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(i) - 1));
        std::swap((*rows)[i - 1], (*rows)[j]);
      }
      return;
    }
  }
}

}  // namespace

Result<Table*> LoadLineItem(Catalog* catalog, std::vector<LineItemRow> rows,
                            const LoadOptions& options,
                            std::string table_name) {
  Cluster(&rows, options,
          [](const LineItemRow& r) { return r.shipdate; });
  SMADB_ASSIGN_OR_RETURN(
      Table * table,
      catalog->CreateTable(std::move(table_name), LineItemSchema(),
                           TableOptions{options.bucket_pages}));
  const Schema* schema = &table->schema();
  for (const LineItemRow& row : rows) {
    SMADB_RETURN_NOT_OK(table->Append(LineItemTuple(schema, row)));
  }
  return table;
}

Result<Table*> LoadOrders(Catalog* catalog, std::vector<OrderRow> rows,
                          const LoadOptions& options,
                          std::string table_name) {
  Cluster(&rows, options, [](const OrderRow& r) { return r.orderdate; });
  SMADB_ASSIGN_OR_RETURN(
      Table * table,
      catalog->CreateTable(std::move(table_name), OrdersSchema(),
                           TableOptions{options.bucket_pages}));
  const Schema* schema = &table->schema();
  for (const OrderRow& row : rows) {
    SMADB_RETURN_NOT_OK(table->Append(OrderTuple(schema, row)));
  }
  return table;
}

Result<Table*> LoadCustomers(Catalog* catalog,
                             const std::vector<CustomerRow>& rows) {
  SMADB_ASSIGN_OR_RETURN(Table * table,
                         catalog->CreateTable("customer", CustomerSchema()));
  const Schema* schema = &table->schema();
  for (const CustomerRow& row : rows) {
    TupleBuffer t(schema);
    t.SetInt32(customer::kCustKey, row.custkey);
    t.SetString(customer::kName, row.name);
    t.SetString(customer::kAddress, row.address);
    t.SetInt32(customer::kNationKey, row.nationkey);
    t.SetString(customer::kPhone, row.phone);
    t.SetDecimal(customer::kAcctBal, row.acctbal);
    t.SetString(customer::kMktSegment, row.mktsegment);
    t.SetString(customer::kComment, row.comment);
    SMADB_RETURN_NOT_OK(table->Append(t));
  }
  return table;
}

Result<Table*> LoadParts(Catalog* catalog, const std::vector<PartRow>& rows) {
  SMADB_ASSIGN_OR_RETURN(Table * table,
                         catalog->CreateTable("part", PartSchema()));
  const Schema* schema = &table->schema();
  for (const PartRow& row : rows) {
    TupleBuffer t(schema);
    t.SetInt32(part::kPartKey, row.partkey);
    t.SetString(part::kName, row.name);
    t.SetString(part::kMfgr, row.mfgr);
    t.SetString(part::kBrand, row.brand);
    t.SetString(part::kType, row.type);
    t.SetInt32(part::kSize, row.size);
    t.SetString(part::kContainer, row.container);
    t.SetDecimal(part::kRetailPrice, row.retailprice);
    t.SetString(part::kComment, row.comment);
    SMADB_RETURN_NOT_OK(table->Append(t));
  }
  return table;
}

Result<Table*> LoadSuppliers(Catalog* catalog,
                             const std::vector<SupplierRow>& rows) {
  SMADB_ASSIGN_OR_RETURN(Table * table,
                         catalog->CreateTable("supplier", SupplierSchema()));
  const Schema* schema = &table->schema();
  for (const SupplierRow& row : rows) {
    TupleBuffer t(schema);
    t.SetInt32(supplier::kSuppKey, row.suppkey);
    t.SetString(supplier::kName, row.name);
    t.SetString(supplier::kAddress, row.address);
    t.SetInt32(supplier::kNationKey, row.nationkey);
    t.SetString(supplier::kPhone, row.phone);
    t.SetDecimal(supplier::kAcctBal, row.acctbal);
    t.SetString(supplier::kComment, row.comment);
    SMADB_RETURN_NOT_OK(table->Append(t));
  }
  return table;
}

Result<Table*> LoadPartSupps(Catalog* catalog,
                             const std::vector<PartSuppRow>& rows) {
  SMADB_ASSIGN_OR_RETURN(Table * table,
                         catalog->CreateTable("partsupp", PartSuppSchema()));
  const Schema* schema = &table->schema();
  for (const PartSuppRow& row : rows) {
    TupleBuffer t(schema);
    t.SetInt32(partsupp::kPartKey, row.partkey);
    t.SetInt32(partsupp::kSuppKey, row.suppkey);
    t.SetInt32(partsupp::kAvailQty, row.availqty);
    t.SetDecimal(partsupp::kSupplyCost, row.supplycost);
    t.SetString(partsupp::kComment, row.comment);
    SMADB_RETURN_NOT_OK(table->Append(t));
  }
  return table;
}

Result<Table*> LoadNations(Catalog* catalog,
                           const std::vector<NationRow>& rows) {
  SMADB_ASSIGN_OR_RETURN(Table * table,
                         catalog->CreateTable("nation", NationSchema()));
  const Schema* schema = &table->schema();
  for (const NationRow& row : rows) {
    TupleBuffer t(schema);
    t.SetInt32(nation::kNationKey, row.nationkey);
    t.SetString(nation::kName, row.name);
    t.SetInt32(nation::kRegionKey, row.regionkey);
    t.SetString(nation::kComment, row.comment);
    SMADB_RETURN_NOT_OK(table->Append(t));
  }
  return table;
}

Result<Table*> LoadRegions(Catalog* catalog,
                           const std::vector<RegionRow>& rows) {
  SMADB_ASSIGN_OR_RETURN(Table * table,
                         catalog->CreateTable("region", RegionSchema()));
  const Schema* schema = &table->schema();
  for (const RegionRow& row : rows) {
    TupleBuffer t(schema);
    t.SetInt32(region::kRegionKey, row.regionkey);
    t.SetString(region::kName, row.name);
    t.SetString(region::kComment, row.comment);
    SMADB_RETURN_NOT_OK(table->Append(t));
  }
  return table;
}

Result<Table*> GenerateAndLoadLineItem(Catalog* catalog,
                                       const DbgenOptions& gen_options,
                                       const LoadOptions& load_options,
                                       std::vector<OrderRow>* orders_out,
                                       std::string table_name) {
  Dbgen gen(gen_options);
  std::vector<OrderRow> orders;
  std::vector<LineItemRow> lineitems;
  gen.GenOrdersAndLineItems(&orders, &lineitems);
  if (orders_out != nullptr) *orders_out = std::move(orders);
  return LoadLineItem(catalog, std::move(lineitems), load_options,
                      std::move(table_name));
}

}  // namespace smadb::tpch
