#!/usr/bin/env bash
# Live smoke test for the telemetry plane (DESIGN.md §16, EXPERIMENTS.md
# X15): boots a real smadb_server, scrapes /metrics + /healthz over HTTP,
# lints the exposition format, probes via smadb_cli --health/--metrics,
# and verifies that `kill query <id>` cancels a long-running scan.
#
# Usage: tools/telemetry_smoke.sh BUILD_DIR [PORT]
#   BUILD_DIR  directory holding examples/smadb_server + examples/smadb_cli
#   PORT       SQL port (default 7878; telemetry is PORT+1)
#
# Exits non-zero on the first failed check. Run from the repo root.
set -u

BUILD_DIR=${1:?usage: tools/telemetry_smoke.sh BUILD_DIR [PORT]}
PORT=${2:-7878}
HTTP_PORT=$((PORT + 1))
SERVER="$BUILD_DIR/examples/smadb_server"
CLI="$BUILD_DIR/examples/smadb_cli"
ROWS=${SMADB_SMOKE_ROWS:-2000000}
TMP=$(mktemp -d /tmp/smadb_smoke.XXXXXX)
SERVER_PID=

fail() { echo "telemetry_smoke: FAIL: $*" >&2; exit 1; }
note() { echo "telemetry_smoke: $*"; }

cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -TERM "$SERVER_PID" 2>/dev/null
    wait "$SERVER_PID" 2>/dev/null
  fi
  rm -rf "$TMP"
}
trap cleanup EXIT

[ -x "$SERVER" ] || fail "no server binary at $SERVER"
[ -x "$CLI" ] || fail "no cli binary at $CLI"

# A statement runner: pipes one or more statements through the CLI shell.
sql() { printf '%s\n' "$@" | "$CLI" "$PORT"; }

# ---- boot ------------------------------------------------------------------
note "starting smadb_server on :$PORT (telemetry :$HTTP_PORT, $ROWS rows)"
"$SERVER" "$PORT" --rows "$ROWS" -q > "$TMP/server.log" 2>&1 &
SERVER_PID=$!

ready=
for _ in $(seq 1 150); do  # seeding $ROWS rows takes a few seconds
  if curl -fsS "http://127.0.0.1:$HTTP_PORT/healthz" >/dev/null 2>&1; then
    ready=1; break
  fi
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.2
done
[ -n "$ready" ] || { cat "$TMP/server.log" >&2; fail "server never became healthy"; }

# ---- scrape + lint ---------------------------------------------------------
# Warm the query plane first so the scrape carries query-path samples too.
sql "select region, sum(amount), count(*) from sales group by region" \
  > /dev/null || fail "warm-up query failed"

curl -fsS "http://127.0.0.1:$HTTP_PORT/metrics" > "$TMP/metrics.txt" \
  || fail "GET /metrics failed"
python3 tools/promlint.py "$TMP/metrics.txt" \
  || fail "live /metrics output failed promlint"
grep -q '^smadb_queries_total [1-9]' "$TMP/metrics.txt" \
  || fail "/metrics does not show the warm-up query"

curl -fsS "http://127.0.0.1:$HTTP_PORT/healthz" > "$TMP/healthz.json" \
  || fail "GET /healthz failed"
grep -q '"status": "ok"' "$TMP/healthz.json" || fail "healthz not ok"

curl -fsS "http://127.0.0.1:$HTTP_PORT/statusz" | grep -q '"knobs"' \
  || fail "statusz missing knob snapshot"
curl -fsS "http://127.0.0.1:$HTTP_PORT/debug/queries" | head -c1 | grep -q '\[' \
  || fail "debug/queries is not a JSON array"
curl -fsS "http://127.0.0.1:$HTTP_PORT/debug/trace" | grep -q '"span"' \
  || fail "debug/trace missing spans"
note "scrape + exposition lint OK"

# ---- cli probe flags -------------------------------------------------------
"$CLI" --health "$HTTP_PORT" > /dev/null || fail "smadb_cli --health exit $?"
"$CLI" --metrics "$HTTP_PORT" > "$TMP/cli_metrics.txt" \
  || fail "smadb_cli --metrics exit $?"
python3 tools/promlint.py "$TMP/cli_metrics.txt" \
  || fail "--metrics body failed promlint"
if "$CLI" --health $((HTTP_PORT + 17)) > /dev/null 2>&1; then
  fail "--health against a dead port must exit non-zero"
fi
note "cli probes OK"

# ---- kill query cancels a long scan ----------------------------------------
# The victim runs a serial row-mode scan over the whole table (seconds at
# $ROWS rows); the killer polls `show queries` for its id and kills it.
# The window is real scheduling, so retry the whole dance a few times —
# but a kill that lands MUST produce a typed cancelled error.
killed=
for attempt in 1 2 3 4 5; do
  sql "set batch_size = 0" \
      "set dop = 1" \
      "select region, sum(amount), count(*) from sales group by region" \
    > "$TMP/victim.out" 2>&1 &
  VICTIM_PID=$!

  for _ in $(seq 1 100); do
    qid=$(sql "show queries" 2>/dev/null \
          | sed -n 's/^\[q\([0-9]*\) .*sql=select.*/\1/p' | head -n1)
    if [ -n "$qid" ]; then
      if sql "kill query $qid" 2>/dev/null | grep -q '^OK$'; then
        break
      fi
    fi
    kill -0 "$VICTIM_PID" 2>/dev/null || break
    sleep 0.05
  done
  wait "$VICTIM_PID"
  if grep -qi 'ERR.*cancel' "$TMP/victim.out"; then
    killed=1
    note "kill query cancelled the scan on attempt $attempt"
    break
  fi
  note "attempt $attempt: scan finished before the kill landed; retrying"
done
[ -n "$killed" ] || { cat "$TMP/victim.out" >&2; \
  fail "kill query never cancelled the scan"; }

# ---- graceful exit ---------------------------------------------------------
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
rc=$?
SERVER_PID=
[ "$rc" -eq 0 ] || { cat "$TMP/server.log" >&2; \
  fail "server exited $rc after SIGTERM"; }
note "PASS"
