#!/usr/bin/env python3
"""Lint Prometheus text exposition format (version 0.0.4).

Usage:
    tools/promlint.py [FILE]            # default: stdin
    curl -s localhost:7879/metrics | tools/promlint.py

Checks the subset of the exposition format smadb emits (the same rules as
the LintPrometheus() helper in tests/observability_test.cc):

  * every non-comment line is `name{labels} value` or `name value`
  * metric and label names match [a-zA-Z_:][a-zA-Z0-9_:]*
  * label values are double-quoted with `\\`, `"`, and newline escaped
  * values parse as floats (Inf/NaN included)
  * every sample is preceded by # HELP and # TYPE lines for its family
  * TYPE is one of counter/gauge/histogram/summary/untyped
  * _total samples belong to counter families, quantile'd ones to summaries
  * no duplicate samples (same name + label set)

Exit code 0 when clean, 1 with one line per violation otherwise.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def parse_labels(raw, errors, lineno):
    """Parses the inside of {...}; returns the canonical label string."""
    labels = []
    i = 0
    while i < len(raw):
        m = re.match(r'([a-zA-Z_][a-zA-Z0-9_]*)="', raw[i:])
        if not m:
            errors.append(f"line {lineno}: bad label syntax at '{raw[i:]}'")
            return None
        name = m.group(1)
        i += m.end()
        value = []
        while i < len(raw):
            c = raw[i]
            if c == "\\":
                if i + 1 >= len(raw) or raw[i + 1] not in ('\\', '"', 'n'):
                    errors.append(
                        f"line {lineno}: invalid escape in label {name}")
                    return None
                value.append(raw[i:i + 2])
                i += 2
            elif c == '"':
                i += 1
                break
            elif c == "\n":
                errors.append(
                    f"line {lineno}: unescaped newline in label {name}")
                return None
            else:
                value.append(c)
                i += 1
        else:
            errors.append(f"line {lineno}: unterminated label value ({name})")
            return None
        labels.append(f'{name}="{"".join(value)}"')
        if i < len(raw):
            if raw[i] != ",":
                errors.append(f"line {lineno}: expected ',' between labels")
                return None
            i += 1
    return ",".join(labels)


def family_of(name):
    """The family a sample belongs to (strips histogram/summary suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def lint(text):
    errors = []
    helped, typed = {}, {}
    seen_samples = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line != line.strip():
            errors.append(f"line {lineno}: leading/trailing whitespace")
            line = line.strip()
        if line.startswith("#"):
            m = re.match(r"^# (HELP|TYPE) ([^ ]+)(?: (.*))?$", line)
            if not m:
                errors.append(f"line {lineno}: malformed comment: {line!r}")
                continue
            kind, name, rest = m.group(1), m.group(2), m.group(3) or ""
            if not NAME_RE.match(name):
                errors.append(f"line {lineno}: bad metric name {name!r}")
            if kind == "HELP":
                if name in helped:
                    errors.append(f"line {lineno}: duplicate HELP for {name}")
                helped[name] = rest
            else:
                if name in typed:
                    errors.append(f"line {lineno}: duplicate TYPE for {name}")
                if rest not in TYPES:
                    errors.append(
                        f"line {lineno}: TYPE {name} {rest!r} not in "
                        f"{sorted(TYPES)}")
                typed[name] = rest
            continue

        # Sample line: name[{labels}] value
        m = re.match(r"^([^{ ]+)(\{(.*)\})? (.+)$", line)
        if not m:
            errors.append(f"line {lineno}: unparsable sample: {line!r}")
            continue
        name, labels_raw, value = m.group(1), m.group(3), m.group(4)
        if not NAME_RE.match(name):
            errors.append(f"line {lineno}: bad metric name {name!r}")
        canon = ""
        if labels_raw is not None:
            canon = parse_labels(labels_raw, errors, lineno)
            if canon is None:
                continue
        try:
            float(value)
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value {value!r}")
        key = (name, canon)
        if key in seen_samples:
            errors.append(f"line {lineno}: duplicate sample {name}{{{canon}}}")
        seen_samples.add(key)

        fam = family_of(name)
        ftype = typed.get(fam) or typed.get(name)
        if ftype is None:
            errors.append(f"line {lineno}: sample {name} has no # TYPE line")
        if (typed.get(fam) or typed.get(name)) is not None and \
                helped.get(fam) is None and helped.get(name) is None:
            errors.append(f"line {lineno}: sample {name} has no # HELP line")
        if name.endswith("_total") and ftype not in (None, "counter"):
            errors.append(
                f"line {lineno}: {name} ends in _total but TYPE is {ftype}")
        if canon and "quantile=" in canon and ftype not in (None, "summary"):
            errors.append(
                f"line {lineno}: {name} has quantile label but TYPE is "
                f"{ftype}")
    return errors


def main():
    if len(sys.argv) > 1 and sys.argv[1] not in ("-", "--"):
        with open(sys.argv[1]) as fp:
            text = fp.read()
    else:
        text = sys.stdin.read()
    if not text.strip():
        print("promlint: empty input", file=sys.stderr)
        return 1
    errors = lint(text)
    for e in errors:
        print(f"promlint: {e}", file=sys.stderr)
    n_samples = sum(
        1 for l in text.splitlines() if l and not l.startswith("#"))
    if errors:
        print(f"promlint: FAILED — {len(errors)} violation(s) in "
              f"{n_samples} samples", file=sys.stderr)
        return 1
    print(f"promlint: OK — {n_samples} samples clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
